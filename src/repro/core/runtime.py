"""The runtime: deploying an assembly onto a node population.

This module wires the paper's Figure 1 into per-node protocol stacks:

    global peer sampling  →  UO1 / UO2  →  core protocol
                                     →  port selection → port connection

:class:`Runtime` is the factory (assembly + configuration + seed);
:class:`Deployment` is one live system: a network, an engine, and the
convergence tracker producing the paper's per-layer metrics. Deployments
support churn provisioning (joining nodes receive full stacks and roles) and
in-place reconfiguration (see :mod:`repro.core.reconfigure`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError, ConvergenceTimeout
from repro.core.assembly import Assembly
from repro.core.convergence import ConvergenceReport, ConvergenceTracker
from repro.core.layers import (
    LAYER_CORE,
    LAYER_PEER_SAMPLING,
    LAYER_PORT_CONNECTION,
    LAYER_PORT_SELECTION,
    LAYER_UO1,
    LAYER_UO2,
)
from repro.core.layers.core_protocol import make_core_protocol
from repro.core.layers.port_connection import PortConnection
from repro.core.layers.port_selection import PortSelection
from repro.core.layers.uo1 import SameComponentOverlay
from repro.core.layers.uo2 import DistantComponentOverlay
from repro.core.profiles import NodeProfile
from repro.core.roles import Role, RoleMap, SPARE_COMPONENT
from repro.gossip.peer_sampling import PeerSampling
from repro.shapes.random_graph import RandomGraph
from repro.sim.config import GossipParams, TransportCosts
from repro.runtime.api import RunnerConfig, make_runner
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport


@dataclass(frozen=True)
class RuntimeConfig:
    """Tuning knobs of the layered runtime.

    The defaults follow the standard values of the gossip literature (view
    sizes 12-16, buffers of half the view); the paper does not publish its
    own parameters, so these are the documented substitution (DESIGN.md §2).
    """

    peer_sampling: GossipParams = field(
        default_factory=lambda: GossipParams(view_size=16, gossip_size=8, healer=1, swapper=7)
    )
    uo1: GossipParams = field(
        default_factory=lambda: GossipParams(view_size=10, gossip_size=5, healer=1, swapper=4)
    )
    core: GossipParams = field(
        default_factory=lambda: GossipParams(view_size=12, gossip_size=6, healer=1, swapper=4)
    )
    uo2_contacts_per_component: int = 2
    uo2_gossip_contacts: int = 8
    binding_ttl: int = 16
    core_flavor: str = "vicinity"
    uo2_scope: str = "all"
    loss_rate: float = 0.0
    costs: TransportCosts = field(default_factory=TransportCosts)

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.core_flavor not in ("vicinity", "tman"):
            raise ConfigurationError(
                f"core_flavor must be 'vicinity' or 'tman', got {self.core_flavor!r}"
            )
        if self.uo2_scope not in ("all", "linked"):
            raise ConfigurationError(
                f"uo2_scope must be 'all' or 'linked', got {self.uo2_scope!r}"
            )
        if self.uo2_contacts_per_component < 1:
            raise ConfigurationError("uo2_contacts_per_component must be >= 1")
        if self.binding_ttl < 2:
            raise ConfigurationError("binding_ttl must be >= 2")


#: The Fig. 4 split. The *baseline* is "the bandwidth needed to realize
#: basic shapes": the per-component core protocols plus the peer-sampling
#: substrate every self-organizing overlay requires (the monolithic
#: elementary baseline runs exactly these two). The *overhead* is what the
#: assembly runtime adds on top — the four sub-procedures of §3.3.
BASELINE_LAYERS = (LAYER_CORE, LAYER_PEER_SAMPLING)
RUNTIME_OVERHEAD_LAYERS = (
    LAYER_UO1,
    LAYER_UO2,
    LAYER_PORT_SELECTION,
    LAYER_PORT_CONNECTION,
)


class Runtime:
    """Factory binding an assembly to a runtime configuration and a seed."""

    def __init__(
        self,
        assembly: Assembly,
        config: Optional[RuntimeConfig] = None,
        seed: int = 0,
    ):
        self.assembly = assembly
        self.config = config or RuntimeConfig()
        self.seed = seed

    def deploy(self, n_nodes: Optional[int] = None) -> "Deployment":
        """Create a network of ``n_nodes`` and install the full stack.

        ``n_nodes`` defaults to the assembly's ``total_nodes`` declaration
        (the DSL's ``nodes N`` clause).
        """
        count = n_nodes if n_nodes is not None else self.assembly.total_nodes
        if count is None:
            raise ConfigurationError(
                "n_nodes not given and the assembly declares no 'nodes N' clause"
            )
        if count < self.assembly.min_nodes():
            raise ConfigurationError(
                f"assembly {self.assembly.name!r} needs at least "
                f"{self.assembly.min_nodes()} nodes, got {count}"
            )
        return Deployment(self, count)


class Deployment:
    """One live deployment of an assembly.

    Attributes
    ----------
    network, engine, transport, streams:
        The simulation substrate.
    role_map:
        The oracle node → role assignment (kept current across churn
        rebalancing and reconfigurations).
    tracker:
        The per-layer convergence tracker attached as an engine observer.
    """

    def __init__(self, runtime: Runtime, n_nodes: int):
        self.runtime = runtime
        self.assembly = runtime.assembly
        self.config = runtime.config
        self.streams = RandomStreams(runtime.seed)
        self.network = Network()
        self.transport = Transport(self.config.costs)
        self.network.create_nodes(n_nodes)
        self.role_map: RoleMap = self.assembly.assign_roles(self.network.node_ids())
        for node in self.network.nodes():
            self._install_stack(node, self.role_map.role(node.node_id))
        self.tracker = ConvergenceTracker(
            assembly_provider=lambda: self.assembly,
            role_map_provider=lambda: self.role_map,
            uo1_view_size=self.config.uo1.view_size,
            uo2_scope=self.config.uo2_scope,
        )
        # Through the unified factory: the runner config is adapted from
        # this runtime's legacy config surface, the hand-built substrate
        # (network/transport/streams) is passed through unchanged.
        self.engine = make_runner(
            RunnerConfig.from_legacy(self.config, n_nodes=n_nodes),
            network=self.network,
            transport=self.transport,
            streams=self.streams,
            observers=(self.tracker,),
        )
        self.faults = None

    def install_faults(self, plane=None):
        """Arm the engine with a fault plane (partitions, degraded links).

        Returns the installed :class:`~repro.faults.plane.FaultPlane` so
        callers can attach controls to it. While the plane has no active
        fault, exchanges take the fast path and runs stay bit-identical to
        a fault-free deployment.
        """
        if plane is None:
            from repro.faults.plane import FaultPlane

            plane = FaultPlane()
        self.faults = plane
        self.engine.faults = plane
        return plane

    # -- stack installation ------------------------------------------------------

    def _shape_for(self, role: Role):
        if role.is_spare:
            # Spares idle in an unstructured pseudo-component until promoted.
            return RandomGraph(min_degree=0)
        return self.assembly.component(role.component).shape

    def _ports_for(self, role: Role):
        if role.is_spare:
            return ()
        return self.assembly.component(role.component).ports

    def _links_for(self, role: Role):
        if role.is_spare:
            return ()
        return tuple(self.assembly.links_of(role.component))

    def _profile_for(self, role: Role) -> NodeProfile:
        shape = self._shape_for(role)
        comp_size = max(1, role.comp_size)
        rank = min(role.rank, comp_size - 1)
        return NodeProfile(
            component=role.component,
            rank=role.rank,
            comp_size=role.comp_size,
            coord=shape.coordinate(rank, comp_size),
        )

    def _install_stack(self, node: Node, role: Role) -> None:
        """Attach the full Figure-1 stack for ``role`` to ``node``."""
        config = self.config
        profile = self._profile_for(role)
        node.attributes["role"] = role

        peer_sampling = PeerSampling(
            node.node_id, config.peer_sampling, layer=LAYER_PEER_SAMPLING
        )
        peer_sampling.bootstrap(
            self.streams.stream("bootstrap", node.node_id), self.network
        )
        node.attach(LAYER_PEER_SAMPLING, peer_sampling)
        node.attach(
            LAYER_UO1,
            SameComponentOverlay(node.node_id, profile, config.uo1, layer=LAYER_UO1),
        )
        node.attach(
            LAYER_UO2,
            DistantComponentOverlay(
                node.node_id,
                profile,
                contacts_per_component=config.uo2_contacts_per_component,
                gossip_contacts=config.uo2_gossip_contacts,
                layer=LAYER_UO2,
            ),
        )
        node.attach(
            LAYER_CORE,
            make_core_protocol(
                node.node_id,
                profile,
                self._shape_for(role),
                config.core,
                layer=LAYER_CORE,
                flavor=config.core_flavor,
            ),
        )
        node.attach(
            LAYER_PORT_SELECTION,
            PortSelection(
                node.node_id,
                profile,
                self._ports_for(role),
                layer=LAYER_PORT_SELECTION,
            ),
        )
        node.attach(
            LAYER_PORT_CONNECTION,
            PortConnection(
                node.node_id,
                profile,
                self._links_for(role),
                layer=LAYER_PORT_CONNECTION,
                binding_ttl=config.binding_ttl,
            ),
        )

    # -- execution ------------------------------------------------------------------

    def run(self, rounds: int) -> int:
        """Run a fixed number of rounds (no early stop)."""
        previous = self.tracker.stop_when_converged
        self.tracker.stop_when_converged = False
        try:
            return self.engine.run(rounds)
        finally:
            self.tracker.stop_when_converged = previous

    def run_until_converged(
        self, max_rounds: int = 120, raise_on_timeout: bool = False
    ) -> ConvergenceReport:
        """Run until every tracked layer converges (or the budget runs out).

        With ``raise_on_timeout``, a budget miss raises
        :class:`~repro.errors.ConvergenceTimeout` naming the slowest
        unconverged layer instead of returning a partial report.
        """
        self.tracker.stop_when_converged = True
        executed = self.engine.run(max_rounds)
        report = self.tracker.report()
        report.executed = executed
        if raise_on_timeout and not report.converged:
            stuck = sorted(
                layer
                for layer, round_index in report.rounds.items()
                if round_index is None
            )
            raise ConvergenceTimeout(", ".join(stuck), max_rounds)
        return report

    # -- churn support ------------------------------------------------------------------

    def provisioner(self):
        """A :data:`~repro.sim.churn.NodeProvisioner` for joining nodes.

        Joining nodes enter as *spares*: they get the full protocol stack
        and start mixing into the peer-sampling substrate, but no component
        role — so a join never reshuffles existing ranks. A later
        :meth:`rebalance` promotes spares into real roles (e.g. to refill a
        component after crashes).
        """

        def provision(network: Network, node: Node) -> None:
            self._install_stack(node, Role(SPARE_COMPONENT, 0, 1))

        return provision

    def rebalance(self) -> None:
        """Re-run the assignment rule over the *live* population.

        Crashed nodes lose their roles, so survivors (and spares) take over
        the vacated ranks — the self-healing reaction to a failure wave.
        """
        self._apply_role_changes(self.assembly.assign_roles(self.network.alive_ids()))

    def _apply_role_changes(
        self,
        new_map: RoleMap,
        fresh_node: Optional[Node] = None,
        old_assembly: Optional[Assembly] = None,
    ) -> None:
        """Point every node at its role under the (possibly new) assembly.

        Nodes whose role is unchanged are normally skipped, but when the
        *assembly* changed around them (``old_assembly`` given), their
        component's declaration may differ even though the role tuple does
        not — a changed shape rebuilds the core protocol, changed ports or
        links refresh just the port layers.
        """
        old_map = self.role_map
        self.role_map = new_map
        for node in self.network.nodes():
            if not new_map.has_role(node.node_id):
                continue  # dead node dropped from the live assignment
            role = new_map.role(node.node_id)
            if fresh_node is not None and node.node_id == fresh_node.node_id:
                self._install_stack(node, role)
                continue
            role_changed = (
                not old_map.has_role(node.node_id)
                or old_map.role(node.node_id) != role
            )
            if role_changed:
                self._adopt_role(node, role)
                continue
            if old_assembly is None or role.is_spare:
                continue
            old_spec = old_assembly.components.get(role.component)
            new_spec = self.assembly.components.get(role.component)
            if old_spec is None or new_spec is None:
                self._adopt_role(node, role)
                continue
            if old_spec.shape != new_spec.shape:
                self._adopt_role(node, role)
                continue
            old_links = tuple(old_assembly.links_of(role.component))
            if old_spec.ports != new_spec.ports or old_links != self._links_for(role):
                profile = self._profile_for(role)
                node.protocol(LAYER_PORT_SELECTION).set_profile(
                    profile, self._ports_for(role)
                )
                node.protocol(LAYER_PORT_CONNECTION).set_profile(
                    profile, self._links_for(role)
                )

    def _adopt_role(self, node: Node, role: Role) -> None:
        """Point an existing stack at a new role (profile update in place)."""
        profile = self._profile_for(role)
        node.attributes["role"] = role
        node.protocol(LAYER_UO1).set_profile(profile)
        node.protocol(LAYER_UO2).set_profile(profile)
        node.replace(
            LAYER_CORE,
            make_core_protocol(
                node.node_id,
                profile,
                self._shape_for(role),
                self.config.core,
                layer=LAYER_CORE,
                flavor=self.config.core_flavor,
            ),
        )
        node.protocol(LAYER_PORT_SELECTION).set_profile(profile, self._ports_for(role))
        node.protocol(LAYER_PORT_CONNECTION).set_profile(profile, self._links_for(role))

    # -- bandwidth accounting ------------------------------------------------------------

    def bandwidth_split(self, rounds: int) -> Dict[str, list]:
        """Per-round byte series: shape-building baseline vs runtime overhead.

        The Fig. 4 decomposition: ``baseline`` is the traffic any
        self-organizing construction of the basic shapes would pay (core
        protocols + peer sampling); ``overhead`` is what the assembly
        runtime adds (UO1, UO2, port selection, port connection).
        """
        baseline = [0] * rounds
        for layer in BASELINE_LAYERS:
            for index, value in enumerate(self.transport.bytes_series(layer, rounds)):
                baseline[index] += value
        overhead = [0] * rounds
        for layer in RUNTIME_OVERHEAD_LAYERS:
            for index, value in enumerate(self.transport.bytes_series(layer, rounds)):
                overhead[index] += value
        return {"baseline": baseline, "overhead": overhead}
