"""Component specifications — the distributed first-class entities.

The paper inverts the classic component-based view: "components [are]
collective distributed entities enforcing a given internal structure (a star,
a tree, a ring) which developers can assemble programmatically". A
:class:`ComponentSpec` is the declaration of one such entity: a name, an
elementary shape, a sizing rule, and the ports it offers to the assembly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import AssemblyError
from repro.core.port import PortSpec
from repro.shapes.base import Shape


@dataclass(frozen=True)
class ComponentSpec:
    """Declaration of one component of an assembly.

    Attributes
    ----------
    name:
        Unique component name within the assembly.
    shape:
        The elementary topology its members self-organize into.
    weight:
        Relative share of the node population under proportional assignment
        (ignored when ``size`` is set).
    size:
        Exact member count; when set, the assignment rule must honour it.
    ports:
        The ports this component exposes, keyed by port name.
    """

    name: str
    shape: Shape
    weight: float = 1.0
    size: Optional[int] = None
    ports: Tuple[PortSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise AssemblyError(
                f"component name must be an identifier, got {self.name!r}"
            )
        if self.size is None and self.weight <= 0:
            raise AssemblyError(
                f"component {self.name!r}: weight must be > 0, got {self.weight}"
            )
        if self.size is not None and self.size < 1:
            raise AssemblyError(
                f"component {self.name!r}: size must be >= 1, got {self.size}"
            )
        seen = set()
        for port in self.ports:
            if port.name in seen:
                raise AssemblyError(
                    f"component {self.name!r}: duplicate port {port.name!r}"
                )
            seen.add(port.name)

    # -- port lookup ---------------------------------------------------------

    def port_map(self) -> Dict[str, PortSpec]:
        return {port.name: port for port in self.ports}

    def port(self, name: str) -> PortSpec:
        for port in self.ports:
            if port.name == name:
                return port
        raise AssemblyError(f"component {self.name!r} has no port {name!r}")

    def has_port(self, name: str) -> bool:
        return any(port.name == name for port in self.ports)

    def with_ports(self, *ports: PortSpec) -> "ComponentSpec":
        """A copy of this spec with additional ports appended."""
        return ComponentSpec(
            name=self.name,
            shape=self.shape,
            weight=self.weight,
            size=self.size,
            ports=self.ports + tuple(ports),
        )
