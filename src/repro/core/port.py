"""Ports: logical points of contact of a component.

The paper: "Ports are logical point of contact for a given component [...]
at runtime, a port is managed by (at least) one node in the corresponding
component", selected by "some rules to decide which node(s) will take in
charge each port". A :class:`PortSelector` is such a rule; the port-selection
overlay runs it as an epidemic aggregation so every member converges to the
same manager.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.errors import AssemblyError

#: A (node_id, rank) pair describing one component member.
Member = Tuple[int, int]


class PortSelector(ABC):
    """A deterministic rule electing a port manager among component members.

    Two faces of the same rule:

    - :meth:`choose` — the *oracle* outcome given full membership (used by
      convergence detectors and by centralized baselines);
    - :meth:`proposes` / :meth:`better` — the *epidemic* form: each member
      may propose itself, and beliefs are merged pairwise with ``better``
      until all members agree. For the rule to converge to the oracle
      outcome, ``choose`` must equal the ``better``-maximum over proposals.
    """

    name: str = ""

    @abstractmethod
    def choose(self, members: Sequence[Member]) -> Optional[int]:
        """The elected node id given the full membership, or ``None``."""

    @abstractmethod
    def proposes(self, node_id: int, rank: int) -> bool:
        """Whether this member starts out proposing itself as manager."""

    @abstractmethod
    def better(self, a: Member, b: Member) -> Member:
        """The preferred of two proposals (total order; used in gossip merge)."""

    def spec(self) -> str:
        """The DSL surface syntax for this selector."""
        return self.name

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortSelector):
            return NotImplemented
        return self.spec() == other.spec()

    def __hash__(self) -> int:
        return hash(self.spec())

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class LowestIdSelector(PortSelector):
    """Elect the member with the lowest node id (a classic leader rule)."""

    name = "lowest_id"

    def choose(self, members: Sequence[Member]) -> Optional[int]:
        return min((m[0] for m in members), default=None)

    def proposes(self, node_id: int, rank: int) -> bool:
        return True

    def better(self, a: Member, b: Member) -> Member:
        return a if a[0] <= b[0] else b


class HighestIdSelector(PortSelector):
    """Elect the member with the highest node id."""

    name = "highest_id"

    def choose(self, members: Sequence[Member]) -> Optional[int]:
        return max((m[0] for m in members), default=None)

    def proposes(self, node_id: int, rank: int) -> bool:
        return True

    def better(self, a: Member, b: Member) -> Member:
        return a if a[0] >= b[0] else b


class RankSelector(PortSelector):
    """Elect the member holding a specific shape rank.

    ``rank(0)`` is the natural choice for shapes with a distinguished
    position — the hub of a star, the root of a tree — and is also exposed
    under the alias ``hub``.
    """

    def __init__(self, rank: int, alias: Optional[str] = None):
        if rank < 0:
            raise AssemblyError(f"port selector rank must be >= 0, got {rank}")
        self.rank = rank
        self.alias = alias

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.alias or f"rank({self.rank})"

    def choose(self, members: Sequence[Member]) -> Optional[int]:
        for node_id, rank in members:
            if rank == self.rank:
                return node_id
        return None

    def proposes(self, node_id: int, rank: int) -> bool:
        return rank == self.rank

    def better(self, a: Member, b: Member) -> Member:
        # Both proposals claim the target rank; prefer the lower node id so
        # the merge stays a total order even under transient rank conflicts
        # (e.g. mid-reconfiguration).
        target_a = a[1] == self.rank
        target_b = b[1] == self.rank
        if target_a != target_b:
            return a if target_a else b
        return a if a[0] <= b[0] else b

    def spec(self) -> str:
        return f"rank({self.rank})"

    def __repr__(self) -> str:
        return f"RankSelector({self.rank})"


_RANK_RE = re.compile(r"^rank\(\s*(\d+)\s*\)$")


def make_selector(spec: str) -> PortSelector:
    """Parse a selector rule from its DSL surface syntax.

    Accepted forms: ``lowest_id``, ``highest_id``, ``hub`` (alias of
    ``rank(0)``) and ``rank(K)``.
    """
    spec = spec.strip()
    if spec == "lowest_id":
        return LowestIdSelector()
    if spec == "highest_id":
        return HighestIdSelector()
    if spec == "hub":
        return RankSelector(0, alias="hub")
    match = _RANK_RE.match(spec)
    if match:
        return RankSelector(int(match.group(1)))
    raise AssemblyError(
        f"unknown port selector {spec!r} "
        "(expected lowest_id, highest_id, hub, or rank(K))"
    )


@dataclass(frozen=True)
class PortSpec:
    """A declared port: a name and the rule electing its manager."""

    name: str
    selector: PortSelector = field(default_factory=LowestIdSelector)

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise AssemblyError(f"port name must be an identifier, got {self.name!r}")
