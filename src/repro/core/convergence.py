"""Structural convergence detectors for every runtime layer.

The paper's figures report "# of rounds to converge" per sub-procedure
(Elementary/core, UO1, UO2, Port Selection, Port Connection). Convergence is
a *structural* predicate evaluated by an omniscient observer — exactly what a
PeerSim observer does — against the oracle role map:

- **core** — every component's realized core-overlay adjacency covers its
  shape's target edges;
- **uo1** — every node's UO1 view holds as many live same-component peers as
  it can (``min(view_size, |component| - 1)``);
- **uo2** — every node has at least one live contact in every other
  component (or every *linked* component, when scoped);
- **port_selection** — all members of each component agree on the oracle
  manager for each of its ports;
- **port_connection** — for every link, the two oracle port managers hold
  fresh bindings for each other's ports.

:class:`ConvergenceTracker` is an engine observer recording, per layer, the
first round at which its predicate holds — the quantity plotted in Figures 2
and 3 — and can stop a run once all tracked layers have converged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.core.layers import (
    LAYER_CORE,
    LAYER_PORT_CONNECTION,
    LAYER_PORT_SELECTION,
    LAYER_UO1,
    LAYER_UO2,
)
from repro.core.link import PortRef
from repro.core.roles import RoleMap
from repro.obs.instrument import Instrument
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.assembly import Assembly


def _live_members(network: Network, role_map: RoleMap, component: str):
    """Live ``(node_id, rank)`` members of one component."""
    return [
        (node_id, rank)
        for node_id, rank in role_map.members(component)
        if network.is_alive(node_id)
    ]


def core_converged(
    network: Network, role_map: RoleMap, assembly: "Assembly"
) -> bool:
    """Every component's core overlay realizes its shape's target edges."""
    return core_score(network, role_map, assembly) >= 1.0


def core_score(
    network: Network, role_map: RoleMap, assembly: "Assembly"
) -> float:
    """Fraction of directed target adjacencies realized across components.

    1.0 means fully converged; under churn this is the self-healing health
    metric (how much of the shape survives / has been rebuilt).
    """
    wanted = 0
    realized = 0
    for name, spec in assembly.components.items():
        members = role_map.members(name)
        if not members:
            continue
        size = len(members)
        rank_of = {node_id: rank for node_id, rank in members}
        adjacency: Dict[int, List[int]] = {}
        for node_id, rank in members:
            if not network.is_alive(node_id):
                continue
            protocol = network.node(node_id).protocol(LAYER_CORE)
            adjacency[rank] = [
                rank_of[other]
                for other in protocol.neighbors()
                if other in rank_of
            ]
        for node_id, rank in members:
            if not network.is_alive(node_id):
                continue
            targets = spec.shape.target_neighbors(rank, size)
            for other in targets:
                other_id = members[other][0] if other < len(members) else None
                # Only count adjacencies with both endpoints alive.
                if other_id is None or not network.is_alive(other_id):
                    continue
                wanted += 1
                if other in adjacency.get(rank, ()):
                    realized += 1
        # Unstructured shapes (random graph) have no target edges; fall back
        # to the shape's own converged() predicate through a sentinel.
        if not spec.shape.target_edges(size):
            wanted += 1
            if spec.shape.converged(adjacency, size):
                realized += 1
    if wanted == 0:
        return 1.0
    return realized / wanted


def uo1_converged(
    network: Network, role_map: RoleMap, assembly: "Assembly", view_size: int
) -> bool:
    """Every live node's UO1 view is saturated with live same-component peers."""
    for name in assembly.components:
        members = _live_members(network, role_map, name)
        member_ids = {node_id for node_id, _ in members}
        needed = min(view_size, len(members) - 1)
        if needed <= 0:
            continue
        for node_id, _ in members:
            protocol = network.node(node_id).protocol(LAYER_UO1)
            known = sum(1 for other in protocol.neighbors() if other in member_ids)
            if known < needed:
                return False
    return True


def uo2_converged(
    network: Network,
    role_map: RoleMap,
    assembly: "Assembly",
    scope: str = "all",
) -> bool:
    """Every live node has a live contact in every other (or linked) component."""
    populated = {
        name
        for name in assembly.components
        if _live_members(network, role_map, name)
    }
    # Order-insensitive all-quantifier: every component must pass, and no
    # state is touched, so hash order cannot leak into a decision.
    for name in populated:  # repro-lint: disable=DET004
        if scope == "linked":
            wanted = assembly.linked_components(name) & populated
        else:
            wanted = populated - {name}
        if not wanted:
            continue
        for node_id, _ in _live_members(network, role_map, name):
            protocol = network.node(node_id).protocol(LAYER_UO2)
            for target in wanted:
                contacts = protocol.contacts(target)
                if not any(network.is_alive(d.node_id) for d in contacts):
                    return False
    return True


def _oracle_managers(
    network: Network, role_map: RoleMap, assembly: "Assembly"
) -> Dict[PortRef, Optional[int]]:
    """The selector-oracle manager of every declared port, over live members."""
    managers: Dict[PortRef, Optional[int]] = {}
    for name, spec in assembly.components.items():
        members = _live_members(network, role_map, name)
        for port in spec.ports:
            managers[PortRef(name, port.name)] = port.selector.choose(members)
    return managers


def port_selection_converged(
    network: Network, role_map: RoleMap, assembly: "Assembly"
) -> bool:
    """All live members agree on the oracle manager of each of their ports."""
    oracle = _oracle_managers(network, role_map, assembly)
    for name, spec in assembly.components.items():
        if not spec.ports:
            continue
        members = _live_members(network, role_map, name)
        for node_id, _ in members:
            protocol = network.node(node_id).protocol(LAYER_PORT_SELECTION)
            for port in spec.ports:
                expected = oracle[PortRef(name, port.name)]
                if expected is None:
                    continue  # no live member can hold the port right now
                if protocol.manager_of(port.name) != expected:
                    return False
    return True


def port_connection_converged(
    network: Network, role_map: RoleMap, assembly: "Assembly"
) -> bool:
    """Every link is realized between its two oracle port managers."""
    oracle = _oracle_managers(network, role_map, assembly)
    for link in assembly.links:
        manager_a = oracle.get(link.a)
        manager_b = oracle.get(link.b)
        if manager_a is None or manager_b is None:
            continue  # a side has no live eligible manager; nothing to check
        protocol_a = network.node(manager_a).protocol(LAYER_PORT_CONNECTION)
        protocol_b = network.node(manager_b).protocol(LAYER_PORT_CONNECTION)
        if protocol_a.binding_for(link.b) != manager_b:
            return False
        if protocol_b.binding_for(link.a) != manager_a:
            return False
    return True


@dataclass
class ConvergenceReport:
    """Outcome of a convergence run: per-layer first-convergence rounds.

    ``rounds[layer]`` is the 1-based round index at which the layer's
    predicate first held, or ``None`` if it never did within the budget.
    """

    rounds: Dict[str, Optional[int]] = field(default_factory=dict)
    executed: int = 0

    @property
    def converged(self) -> bool:
        return bool(self.rounds) and all(
            round_index is not None for round_index in self.rounds.values()
        )

    def round_of(self, layer: str) -> Optional[int]:
        return self.rounds.get(layer)

    @property
    def slowest(self) -> Optional[int]:
        """The last layer's convergence round (the whole topology's)."""
        if not self.converged:
            return None
        return max(round_index for round_index in self.rounds.values())


class ConvergenceTracker(Instrument):
    """Engine observer recording per-layer first convergence.

    Parameters
    ----------
    assembly_provider, role_map_provider:
        Callables returning the *current* assembly and role map (they change
        on reconfiguration and churn rebalancing).
    uo1_view_size:
        The deployed UO1 view capacity (saturation threshold).
    uo2_scope:
        ``"all"`` (paper default — contacts in every component) or
        ``"linked"`` (only components connected by links).
    layers:
        Which layers to track; defaults to all five.
    stop_when_converged:
        Ask the engine to stop once every tracked layer has converged.
    """

    ALL_LAYERS = (
        LAYER_CORE,
        LAYER_UO1,
        LAYER_UO2,
        LAYER_PORT_SELECTION,
        LAYER_PORT_CONNECTION,
    )

    def __init__(
        self,
        assembly_provider: Callable[[], "Assembly"],
        role_map_provider: Callable[[], RoleMap],
        uo1_view_size: int,
        uo2_scope: str = "all",
        layers: Optional[List[str]] = None,
        stop_when_converged: bool = True,
    ):
        self._assembly = assembly_provider
        self._role_map = role_map_provider
        self.uo1_view_size = uo1_view_size
        self.uo2_scope = uo2_scope
        self.layers = list(layers) if layers is not None else list(self.ALL_LAYERS)
        self.stop_when_converged = stop_when_converged
        self.first_converged: Dict[str, Optional[int]] = {
            layer: None for layer in self.layers
        }
        self.core_scores: List[float] = []
        self.observed_rounds = 0

    def reset(self) -> None:
        """Restart tracking (called on reconfiguration)."""
        self.first_converged = {layer: None for layer in self.layers}
        self.core_scores = []
        self.observed_rounds = 0

    def _predicate(self, layer: str, network: Network) -> bool:
        assembly = self._assembly()
        role_map = self._role_map()
        if layer == LAYER_CORE:
            return core_converged(network, role_map, assembly)
        if layer == LAYER_UO1:
            return uo1_converged(network, role_map, assembly, self.uo1_view_size)
        if layer == LAYER_UO2:
            return uo2_converged(network, role_map, assembly, self.uo2_scope)
        if layer == LAYER_PORT_SELECTION:
            return port_selection_converged(network, role_map, assembly)
        if layer == LAYER_PORT_CONNECTION:
            return port_connection_converged(network, role_map, assembly)
        raise ValueError(f"unknown layer {layer!r}")

    def observe(self, network: Network, round_index: int) -> bool:
        self.observed_rounds += 1
        if LAYER_CORE in self.layers:
            self.core_scores.append(
                core_score(network, self._role_map(), self._assembly())
            )
        for layer in self.layers:
            if self.first_converged[layer] is None and self._predicate(layer, network):
                # 1-based and relative to the last reset, so a measurement
                # started mid-run (e.g. after a reconfiguration) reports
                # rounds *since the change*, exactly as the paper plots.
                self.first_converged[layer] = self.observed_rounds
        done = all(value is not None for value in self.first_converged.values())
        return done and self.stop_when_converged

    def report(self) -> ConvergenceReport:
        return ConvergenceReport(
            rounds=dict(self.first_converged), executed=self.observed_rounds
        )
