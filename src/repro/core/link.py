"""Links: logical connections between two component ports.

The paper: "links are logical connections between two components (through
ports) [...] at the node level, a link is a connection between two nodes
from two different components".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AssemblyError


@dataclass(frozen=True)
class PortRef:
    """A fully-qualified port reference, ``component.port``."""

    component: str
    port: str

    def __post_init__(self) -> None:
        if not self.component or not self.port:
            raise AssemblyError(f"incomplete port reference {self!r}")

    def __str__(self) -> str:
        return f"{self.component}.{self.port}"

    @classmethod
    def parse(cls, text: str) -> "PortRef":
        """Parse ``component.port`` surface syntax."""
        parts = text.strip().split(".")
        if len(parts) != 2 or not all(parts):
            raise AssemblyError(
                f"port reference must be 'component.port', got {text!r}"
            )
        return cls(parts[0], parts[1])


@dataclass(frozen=True)
class LinkSpec:
    """An undirected link between two ports.

    Links are stored in canonical order (sorted endpoints) so that the same
    logical connection declared in either direction compares equal.
    """

    a: PortRef
    b: PortRef

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise AssemblyError(f"link endpoints must differ, got {self.a} twice")
        # Canonicalize: frozen dataclass, so go through object.__setattr__.
        if (self.b.component, self.b.port) < (self.a.component, self.a.port):
            a, b = self.b, self.a
            object.__setattr__(self, "a", a)
            object.__setattr__(self, "b", b)

    def endpoints(self) -> tuple:
        return (self.a, self.b)

    def other(self, ref: PortRef) -> PortRef:
        """The opposite endpoint of ``ref``."""
        if ref == self.a:
            return self.b
        if ref == self.b:
            return self.a
        raise AssemblyError(f"{ref} is not an endpoint of {self}")

    def touches(self, component: str) -> bool:
        return component in (self.a.component, self.b.component)

    def __str__(self) -> str:
        return f"{self.a} -- {self.b}"
