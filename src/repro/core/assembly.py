"""The assembly IR: a validated description of a complete target topology.

An :class:`Assembly` is what the DSL compiles to and what the runtime
deploys: the "superposition of [the] three elements (components, ports for
each component, links between ports) [that] completely defines a target
topology" (paper §3.2).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import AssemblyError
from repro.core.component import ComponentSpec
from repro.core.link import LinkSpec, PortRef
from repro.core.roles import AssignmentRule, ProportionalAssignment, RoleMap


class Assembly:
    """A named, validated set of components and links.

    Parameters
    ----------
    name:
        Assembly (topology) name.
    components:
        The component declarations; order is preserved (assignment rules
        deal node slices in declaration order).
    links:
        Undirected links between declared ports.
    assignment:
        The node-assignment rule; defaults to the proportional split.
    total_nodes:
        Optional deployment-size hint (the DSL's ``nodes N`` clause); the
        runtime can override it at :meth:`deploy` time.
    """

    def __init__(
        self,
        name: str,
        components: Sequence[ComponentSpec],
        links: Iterable[LinkSpec] = (),
        assignment: Optional[AssignmentRule] = None,
        total_nodes: Optional[int] = None,
    ):
        if not name or not name.isidentifier():
            raise AssemblyError(f"assembly name must be an identifier, got {name!r}")
        self.name = name
        self.components: Dict[str, ComponentSpec] = {}
        for spec in components:
            if spec.name in self.components:
                raise AssemblyError(f"duplicate component {spec.name!r}")
            self.components[spec.name] = spec
        self.links: List[LinkSpec] = []
        seen_links: Set[LinkSpec] = set()
        for link in links:
            if link in seen_links:
                raise AssemblyError(f"duplicate link {link}")
            seen_links.add(link)
            self.links.append(link)
        self.assignment = assignment or ProportionalAssignment()
        self.total_nodes = total_nodes
        self.validate()

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        """Check global consistency; raises :class:`AssemblyError`."""
        if not self.components:
            raise AssemblyError(f"assembly {self.name!r} declares no components")
        for link in self.links:
            for ref in link.endpoints():
                spec = self.components.get(ref.component)
                if spec is None:
                    raise AssemblyError(
                        f"link {link} references unknown component {ref.component!r}"
                    )
                if not spec.has_port(ref.port):
                    raise AssemblyError(
                        f"link {link} references unknown port {ref!s}"
                    )
        if self.total_nodes is not None:
            minimum = self.min_nodes()
            if self.total_nodes < minimum:
                raise AssemblyError(
                    f"assembly {self.name!r} needs at least {minimum} nodes, "
                    f"got total_nodes={self.total_nodes}"
                )

    def min_nodes(self) -> int:
        """The smallest population this assembly can be deployed on."""
        return sum(spec.size or 1 for spec in self.components.values())

    # -- lookup ------------------------------------------------------------------

    def component(self, name: str) -> ComponentSpec:
        try:
            return self.components[name]
        except KeyError:
            raise AssemblyError(
                f"assembly {self.name!r} has no component {name!r}"
            ) from None

    def component_names(self) -> List[str]:
        return list(self.components)

    def port(self, ref: PortRef):
        return self.component(ref.component).port(ref.port)

    def links_of(self, component: str) -> List[LinkSpec]:
        return [link for link in self.links if link.touches(component)]

    def linked_components(self, component: str) -> Set[str]:
        """Names of components connected to ``component`` by at least one link."""
        neighbors: Set[str] = set()
        for link in self.links_of(component):
            for ref in link.endpoints():
                if ref.component != component:
                    neighbors.add(ref.component)
        return neighbors

    def ports_of(self, component: str) -> List[Tuple[str, PortRef]]:
        """``(port_name, ref)`` pairs for every declared port of a component."""
        spec = self.component(component)
        return [(port.name, PortRef(component, port.name)) for port in spec.ports]

    # -- deployment helpers ----------------------------------------------------------

    def assign_roles(self, node_ids: Sequence[int]) -> RoleMap:
        """Run the assignment rule over a concrete population."""
        return self.assignment.assign(node_ids, self)

    def __repr__(self) -> str:
        return (
            f"Assembly({self.name!r}, components={list(self.components)}, "
            f"links={[str(link) for link in self.links]})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Assembly):
            return NotImplemented
        return (
            self.name == other.name
            and self.components == other.components
            and sorted(map(str, self.links)) == sorted(map(str, other.links))
            and self.assignment == other.assignment
            and self.total_nodes == other.total_nodes
        )
