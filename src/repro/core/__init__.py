"""The paper's core contribution: assemblies of components realized by a
layered self-organizing runtime.

- :mod:`~repro.core.component` / :mod:`~repro.core.port` /
  :mod:`~repro.core.link` / :mod:`~repro.core.assembly` — the intermediate
  representation of a target topology: components (collective entities with
  an elementary shape), their ports, and links between ports;
- :mod:`~repro.core.roles` — node-assignment rules ("which node will be
  assigned to which component");
- :mod:`~repro.core.layers` — the runtime's gossip sub-procedures from the
  paper's Figure 1: UO1 (same-component), UO2 (distant-component), port
  selection, port connection, and the per-component core protocol;
- :mod:`~repro.core.runtime` — wires the layers into per-node protocol
  stacks and drives deployments;
- :mod:`~repro.core.convergence` — the per-layer structural convergence
  detectors behind the paper's figures;
- :mod:`~repro.core.reconfigure` — dynamic reconfiguration (paper §4.iii).
"""

from repro.core.assembly import Assembly
from repro.core.component import ComponentSpec
from repro.core.convergence import ConvergenceReport, ConvergenceTracker
from repro.core.link import LinkSpec, PortRef
from repro.core.port import PortSpec, make_selector
from repro.core.profiles import NodeProfile
from repro.core.roles import (
    HashAssignment,
    ProportionalAssignment,
    Role,
    RoleMap,
)
from repro.core.runtime import Deployment, Runtime, RuntimeConfig

__all__ = [
    "Assembly",
    "ComponentSpec",
    "ConvergenceReport",
    "ConvergenceTracker",
    "Deployment",
    "HashAssignment",
    "LinkSpec",
    "NodeProfile",
    "PortRef",
    "PortSpec",
    "ProportionalAssignment",
    "Role",
    "RoleMap",
    "Runtime",
    "RuntimeConfig",
    "make_selector",
]
