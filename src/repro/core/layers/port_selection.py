"""Port selection — mapping logical ports to concrete nodes.

Paper §3.3: one overlay "handle[s] the mapping between logical ports and
actual nodes (port selection)". Implemented as an epidemic extremum
aggregation per port: every member that the port's selector rule allows to
propose starts by proposing itself, and members repeatedly merge belief
tables pairwise with the selector's total order. After O(log n) exchanges
every member of the component agrees on the same manager — the selector's
oracle outcome over the full membership.

Self-stabilization: beliefs naming dead or reassigned nodes are discarded as
soon as they are detected, re-opening the election; this is what re-elects a
port manager after a crash or a reconfiguration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.port import PortSpec
from repro.core.profiles import NodeProfile
from repro.sim.engine import RoundContext
from repro.sim.protocol import Protocol
from repro.sim.transport import ExchangeRequest

#: A belief: the (node_id, rank) currently thought to manage a port.
Belief = Tuple[int, int]


class PortSelection(Protocol):
    """One node's port-selection instance for its component's ports.

    Parameters
    ----------
    node_id, profile:
        Identity and current role of the hosting node.
    ports:
        The port declarations of the node's component.
    layer:
        Attachment/accounting label (``port_selection``).
    partner_layers:
        Same-node layers whose neighbour lists supply same-component gossip
        partners (UO1 first, then the core protocol).
    """

    def __init__(
        self,
        node_id: int,
        profile: NodeProfile,
        ports: Tuple[PortSpec, ...],
        layer: str = "port_selection",
        partner_layers: Tuple[str, ...] = ("uo1", "core"),
    ):
        self.node_id = node_id
        self.profile = profile
        self.ports = tuple(ports)
        self.layer = layer
        self.partner_layers = tuple(partner_layers)
        self.beliefs: Dict[str, Belief] = {}
        self._propose()

    # -- identity -----------------------------------------------------------------

    def set_profile(self, profile: NodeProfile, ports: Tuple[PortSpec, ...]) -> None:
        """Adopt a new role (reconfiguration): reset and re-propose."""
        self.profile = profile
        self.ports = tuple(ports)
        self.beliefs = {}
        self._propose()

    def _propose(self) -> None:
        """Enter (or re-enter) the election without clobbering better beliefs.

        A self-proposal is merged through the selector's total order, so a
        node that already knows a better manager keeps it; the proposal only
        matters when the node has no belief (bootstrap, post-validation) or
        actually is the best candidate.
        """
        for port in self.ports:
            if port.selector.proposes(self.node_id, self.profile.rank):
                candidate = (self.node_id, self.profile.rank)
                mine = self.beliefs.get(port.name)
                self.beliefs[port.name] = (
                    candidate if mine is None else port.selector.better(mine, candidate)
                )

    # -- queries ---------------------------------------------------------------------

    def manager_of(self, port_name: str) -> Optional[int]:
        """The node id currently believed to manage ``port_name``."""
        belief = self.beliefs.get(port_name)
        return belief[0] if belief else None

    def is_manager_of(self, port_name: str) -> bool:
        return self.manager_of(port_name) == self.node_id

    def neighbors(self) -> List[int]:
        return sorted({belief[0] for belief in self.beliefs.values()})

    def forget(self, node_id: int) -> None:
        doomed = [name for name, belief in self.beliefs.items() if belief[0] == node_id]
        for name in doomed:
            del self.beliefs[name]
        self._propose()

    # -- protocol -----------------------------------------------------------------------

    def step(self, ctx: RoundContext) -> None:
        self._validate_beliefs(ctx)
        self._propose()
        if not self.ports:
            return
        if not ctx.exchange_ok():
            return  # this round's exchange was lost
        partner_id = self._choose_partner(ctx)
        if partner_id is None:
            return
        if not ctx.transport.deliverable(ctx, partner_id, self.layer):
            return  # partner unreachable (partition / degraded link)
        outgoing = dict(self.beliefs)
        incoming = ctx.transport.exchange(
            ctx, partner_id, ExchangeRequest(self.layer, self.node_id, outgoing)
        )
        if incoming is None:
            return  # sent but never answered (real-network timeout)
        ctx.transport.record_exchange(self.layer, len(outgoing), len(incoming))
        if ctx.obs is not None:
            ctx.obs.count("exchanges", layer=self.layer)
            ctx.obs.count("descriptors_sent", len(outgoing), layer=self.layer)
            ctx.obs.count("descriptors_received", len(incoming), layer=self.layer)
        self._merge(ctx, incoming)

    def on_gossip(
        self, ctx: RoundContext, received: Dict[str, Belief]
    ) -> Dict[str, Belief]:
        reply = dict(self.beliefs)
        if ctx.obs is not None:
            ctx.obs.count("descriptors_sent", len(reply), layer=self.layer)
            ctx.obs.count("descriptors_received", len(received), layer=self.layer)
        self._merge(ctx, received)
        return reply

    def on_request(
        self, ctx: RoundContext, request: ExchangeRequest
    ) -> Dict[str, Belief]:
        """Transport-seam entry point: delegate to :meth:`on_gossip`."""
        return self.on_gossip(ctx, request.payload)

    # -- internals ----------------------------------------------------------------------

    def _validate_beliefs(self, ctx: RoundContext) -> None:
        """Drop beliefs naming dead or reassigned nodes (failure detection)."""
        port_map = {port.name: port for port in self.ports}
        doomed = []
        for name, (manager_id, rank) in self.beliefs.items():
            if name not in port_map:
                doomed.append(name)
                continue
            if manager_id == self.node_id:
                if not port_map[name].selector.proposes(self.node_id, self.profile.rank):
                    doomed.append(name)
                continue
            if not ctx.network.is_alive(manager_id):
                doomed.append(name)
                continue
            peer = ctx.network.node(manager_id)
            if not peer.has_protocol(self.layer):
                doomed.append(name)
                continue
            peer_protocol = peer.protocol(self.layer)
            assert isinstance(peer_protocol, PortSelection)
            profile = peer_protocol.profile
            if profile.component != self.profile.component or profile.rank != rank:
                doomed.append(name)
        for name in doomed:
            del self.beliefs[name]

    def _choose_partner(self, ctx: RoundContext) -> Optional[int]:
        """A random live same-component node drawn from the helper layers."""
        candidates: List[int] = []
        for layer in self.partner_layers:
            if not ctx.node.has_protocol(layer):
                continue
            for node_id in ctx.node.protocol(layer).neighbors():
                if node_id == self.node_id or not ctx.network.is_alive(node_id):
                    continue
                peer = ctx.network.node(node_id)
                if not peer.has_protocol(self.layer):
                    continue
                peer_protocol = peer.protocol(self.layer)
                assert isinstance(peer_protocol, PortSelection)
                if peer_protocol.profile.component == self.profile.component:
                    candidates.append(node_id)
            if candidates:
                break
        if not candidates:
            return None
        return ctx.rng().choice(candidates)

    def _merge(self, ctx: RoundContext, received: Dict[str, Belief]) -> None:
        """Merge a received belief table through the selectors' total orders.

        Beliefs naming dead nodes are rejected *on receipt* — without this,
        a crashed manager survives as a zombie: each node drops it during
        validation only to re-adopt it from the next gossip exchange.
        """
        port_map = {port.name: port for port in self.ports}
        for name, belief in received.items():
            port = port_map.get(name)
            if port is None:
                continue
            if not ctx.network.is_alive(belief[0]):
                continue
            mine = self.beliefs.get(name)
            if mine is None:
                self.beliefs[name] = belief
            else:
                self.beliefs[name] = port.selector.better(mine, belief)
