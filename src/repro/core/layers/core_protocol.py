"""The per-component core protocol — a Vicinity instance building the shape.

Paper §3.1: "one self organizing overlay per component (known as the
component's core protocol) realizes the component's actual shape". We
instantiate :class:`~repro.gossip.vicinity.Vicinity` with a proximity
function scoped to the component: descriptors of other components are
ineligible, and distances are the component shape's metric over shape
coordinates. UO1 feeds the candidate pool, so the core protocol converges
within the membership UO1 gathers.
"""

from __future__ import annotations

from typing import Optional

from repro.core.profiles import NodeProfile
from repro.gossip.selection import Proximity
from repro.gossip.tman import TMan
from repro.gossip.vicinity import Vicinity
from repro.shapes.base import Shape
from repro.sim.config import GossipParams
from repro.sim.protocol import Protocol


class ComponentShapeProximity(Proximity):
    """Shape distance within one component; other components are ineligible."""

    def __init__(self, component: str, shape: Shape, comp_size: int):
        self.component = component
        self.shape = shape
        self.comp_size = comp_size
        self._metric = shape.metric(comp_size)

    def distance(self, a: NodeProfile, b: NodeProfile) -> float:
        return self._metric(a.coord, b.coord)

    def eligible(self, a: NodeProfile, b: NodeProfile) -> bool:
        return (
            isinstance(b, NodeProfile)
            and b.component == self.component
            and b.comp_size == self.comp_size
        )


def make_core_protocol(
    node_id: int,
    profile: NodeProfile,
    shape: Shape,
    params: Optional[GossipParams] = None,
    layer: str = "core",
    random_layer: str = "peer_sampling",
    uo1_layer: str = "uo1",
    flavor: str = "vicinity",
) -> Protocol:
    """Build the core-protocol instance for one node.

    Parameters
    ----------
    flavor:
        ``"vicinity"`` (the paper's choice) or ``"tman"`` (ablation A4).

    The Vicinity view is sized by the shape (a star hub must hold every
    leaf), and :meth:`neighbors` exposes exactly the node's target degree, so
    the realized graph the convergence detector sees is the overlay's best
    current guess at the shape.
    """
    params = params or GossipParams()
    proximity = ComponentShapeProximity(
        profile.component, shape, profile.comp_size
    )
    view_size = shape.view_size(profile.comp_size, params.view_size)
    gossip_size = min(params.gossip_size, view_size + 1)
    sized = GossipParams(
        view_size=view_size,
        gossip_size=gossip_size,
        healer=min(params.healer, view_size),
        swapper=min(params.swapper, max(0, view_size - min(params.healer, view_size))),
        backend=params.backend,
    )
    degree = shape.rank_degree(profile.rank, profile.comp_size)
    if degree == 0:
        # Shapes with no rank-specific targets (e.g. the random graph) still
        # demand a minimum connectivity, captured by their overall degree.
        degree = shape.degree(profile.comp_size)
    target_degree = max(1, degree)
    if flavor == "vicinity":
        return Vicinity(
            node_id,
            profile=profile,
            proximity=proximity,
            params=sized,
            layer=layer,
            random_layer=random_layer,
            candidate_layers=[uo1_layer],
            target_degree=target_degree,
        )
    if flavor == "tman":
        return TMan(
            node_id,
            profile=profile,
            proximity=proximity,
            params=sized,
            layer=layer,
            random_layer=random_layer,
            target_degree=target_degree,
        )
    raise ValueError(f"unknown core-protocol flavor {flavor!r}")
