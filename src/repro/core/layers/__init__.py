"""The runtime's gossip sub-procedures (paper Figure 1).

Layer names used for protocol attachment and bandwidth accounting:

- ``peer_sampling`` — global peer sampling (:mod:`repro.gossip.peer_sampling`);
- ``uo1`` — same-component utility overlay (:class:`~repro.core.layers.uo1.SameComponentOverlay`);
- ``uo2`` — distant-component utility overlay (:class:`~repro.core.layers.uo2.DistantComponentOverlay`);
- ``port_selection`` — logical port → node mapping (:class:`~repro.core.layers.port_selection.PortSelection`);
- ``port_connection`` — link realization between ports (:class:`~repro.core.layers.port_connection.PortConnection`);
- ``core`` — the component's shape-building core protocol (:func:`~repro.core.layers.core_protocol.make_core_protocol`).
"""

from repro.core.layers.core_protocol import ComponentShapeProximity, make_core_protocol
from repro.core.layers.port_connection import PortConnection
from repro.core.layers.port_selection import PortSelection
from repro.core.layers.uo1 import SameComponentOverlay
from repro.core.layers.uo2 import DistantComponentOverlay

LAYER_PEER_SAMPLING = "peer_sampling"
LAYER_UO1 = "uo1"
LAYER_UO2 = "uo2"
LAYER_PORT_SELECTION = "port_selection"
LAYER_PORT_CONNECTION = "port_connection"
LAYER_CORE = "core"

#: The runtime layers, in stack (execution) order.
RUNTIME_LAYERS = (
    LAYER_PEER_SAMPLING,
    LAYER_UO1,
    LAYER_UO2,
    LAYER_CORE,
    LAYER_PORT_SELECTION,
    LAYER_PORT_CONNECTION,
)

__all__ = [
    "ComponentShapeProximity",
    "DistantComponentOverlay",
    "LAYER_CORE",
    "LAYER_PEER_SAMPLING",
    "LAYER_PORT_CONNECTION",
    "LAYER_PORT_SELECTION",
    "LAYER_UO1",
    "LAYER_UO2",
    "PortConnection",
    "PortSelection",
    "RUNTIME_LAYERS",
    "SameComponentOverlay",
    "make_core_protocol",
]
