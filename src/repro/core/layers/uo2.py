"""UO2 — the distant-component utility overlay.

Paper §3.3: the second utility overlay maintains "'long distance' connections
between nodes from different components (for performance issues)". Each node
keeps a small bucket of contacts *per foreign component*; the buckets are
filled by harvesting the global random view and by gossiping contact tables
with both same-component neighbours (spreading knowledge inside the
component) and foreign contacts (bridging components).

These long-distance contacts are what the port-connection layer routes over
to realize links, and what applications can use for inter-component traffic.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from repro.core.profiles import NodeProfile
from repro.gossip.descriptors import Descriptor
from repro.gossip.views import PartialView, make_view
from repro.sim.config import GossipParams
from repro.sim.engine import RoundContext
from repro.sim.protocol import Protocol
from repro.sim.transport import ExchangeRequest


class DistantComponentOverlay(Protocol):
    """One node's UO2 instance.

    Parameters
    ----------
    node_id, profile:
        Identity and current role of the hosting node.
    contacts_per_component:
        Bucket capacity per foreign component.
    gossip_contacts:
        Maximum descriptors shipped per gossip message.
    layer, random_layer, uo1_layer:
        Attachment labels of this protocol, the global peer sampling, and
        the same-component overlay used to pick intra-component partners.
    """

    def __init__(
        self,
        node_id: int,
        profile: NodeProfile,
        contacts_per_component: int = 2,
        gossip_contacts: int = 8,
        layer: str = "uo2",
        random_layer: str = "peer_sampling",
        uo1_layer: str = "uo1",
        backend: str = "object",
    ):
        self.node_id = node_id
        self.profile = profile
        self.capacity = max(1, contacts_per_component)
        self.gossip_contacts = max(1, gossip_contacts)
        # Buckets are tiny fixed-capacity views; the backend knob mirrors
        # GossipParams.backend so a columnar deployment is columnar end to end.
        self._view_params = GossipParams(
            view_size=self.capacity, gossip_size=1, healer=0, swapper=0,
            backend=backend,
        )
        self.layer = layer
        self.random_layer = random_layer
        self.uo1_layer = uo1_layer
        self.buckets: Dict[str, PartialView] = {}
        self._self_descriptor = Descriptor(node_id, age=0, profile=profile)
        # Pre-resolved (name, layer) counter keys for Instrument.count_key.
        self._k_exchanges = ("exchanges", layer)
        self._k_sent = ("descriptors_sent", layer)
        self._k_received = ("descriptors_received", layer)
        self._k_churn = ("descriptor_churn", layer)

    # -- identity -----------------------------------------------------------------

    def self_descriptor(self) -> Descriptor:
        return self._self_descriptor

    def set_profile(self, profile: NodeProfile) -> None:
        """Adopt a new role; the old component's bucket becomes foreign and a
        bucket for the new own component is dropped."""
        self.profile = profile
        self._self_descriptor = Descriptor(self.node_id, age=0, profile=profile)
        self.buckets.pop(profile.component, None)

    # -- queries -------------------------------------------------------------------

    def contacts(self, component: str) -> List[Descriptor]:
        """Known live-ish contacts in ``component`` (youngest first)."""
        bucket = self.buckets.get(component)
        if bucket is None:
            return []
        return sorted(bucket.descriptors(), key=lambda d: (d.age, d.node_id))

    def known_components(self) -> List[str]:
        return sorted(name for name, bucket in self.buckets.items() if len(bucket))

    def neighbors(self) -> List[int]:
        ids: List[int] = []
        for bucket in self.buckets.values():
            ids.extend(bucket.ids())
        return ids

    def forget(self, node_id: int) -> None:
        for bucket in self.buckets.values():
            bucket.remove(node_id)

    # -- protocol ---------------------------------------------------------------------

    def step(self, ctx: RoundContext) -> None:
        for bucket in self.buckets.values():
            bucket.increase_age()
        self._harvest(ctx)
        if not ctx.exchange_ok():
            return  # this round's exchange was lost
        partner_id = self._choose_partner(ctx)
        if partner_id is None:
            return
        if not ctx.transport.deliverable(ctx, partner_id, self.layer):
            # Unreachable contact: drop it from every bucket so the next
            # round picks a partner on this side of the cut.
            self.forget(partner_id)
            return
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        buffer = self._make_buffer(ctx, flow)
        reply = ctx.transport.exchange(
            ctx, partner_id, ExchangeRequest(self.layer, self.node_id, buffer)
        )
        if reply is None:
            self.forget(partner_id)
            return
        ctx.transport.record_exchange(self.layer, len(buffer), len(reply))
        if obs is not None:
            obs.count_key(self._k_exchanges)
            obs.count_key(self._k_sent, len(buffer))
            obs.count_key(self._k_received, len(reply))
            if flow is not None:
                reply = flow.on_received(
                    self.layer, ctx.round, self.node_id, partner_id, reply
                )
        self._merge(ctx, reply)

    def on_gossip(
        self, ctx: RoundContext, received: List[Descriptor]
    ) -> List[Descriptor]:
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        reply = self._make_buffer(ctx, flow)
        if obs is not None:
            obs.count_key(self._k_sent, len(reply))
            obs.count_key(self._k_received, len(received))
            if flow is not None:
                # ctx belongs to the active requester — the sender.
                received = flow.on_received(
                    self.layer, ctx.round, self.node_id, ctx.node.node_id, received
                )
        self._merge(ctx, received)
        return reply

    def on_request(
        self, ctx: RoundContext, request: ExchangeRequest
    ) -> List[Descriptor]:
        """Transport-seam entry point: delegate to :meth:`on_gossip`."""
        return self.on_gossip(ctx, request.payload)

    # -- internals -----------------------------------------------------------------------

    def _insert(self, descriptor: Descriptor) -> bool:
        """Adopt a foreign-component contact; returns whether a bucket changed."""
        profile = descriptor.profile
        if not isinstance(profile, NodeProfile):
            return False
        if descriptor.node_id == self.node_id:
            return False
        if profile.component == self.profile.component:
            return False  # own component is UO1's job
        bucket = self.buckets.get(profile.component)
        if bucket is None:
            bucket = make_view(self._view_params, self.capacity)
            self.buckets[profile.component] = bucket
        return bucket.insert(descriptor)

    def _harvest(self, ctx: RoundContext) -> None:
        """Adopt foreign-component peers from the global random view."""
        if not ctx.node.has_protocol(self.random_layer):
            return
        for node_id in ctx.node.protocol(self.random_layer).neighbors():
            if node_id == self.node_id or not ctx.network.is_alive(node_id):
                continue
            if not ctx.transport.reachable(ctx, node_id):
                continue  # harvesting across the cut would leak state
            peer = ctx.network.node(node_id)
            if not peer.has_protocol(self.layer):
                continue
            peer_protocol = peer.protocol(self.layer)
            assert isinstance(peer_protocol, DistantComponentOverlay)
            self._insert(peer_protocol.self_descriptor())

    def _choose_partner(self, ctx: RoundContext) -> Optional[int]:
        """Alternate between a same-component partner (spread foreign contact
        knowledge inside the component) and a foreign contact (refresh and
        extend cross-component knowledge)."""
        rng = ctx.rng()
        candidates: List[int] = []
        if ctx.round % 2 == 0 and ctx.node.has_protocol(self.uo1_layer):
            candidates = [
                node_id
                for node_id in ctx.node.protocol(self.uo1_layer).neighbors()
                if ctx.network.is_alive(node_id)
            ]
        if not candidates:
            candidates = [
                descriptor.node_id
                for bucket in self.buckets.values()
                for descriptor in bucket
                if ctx.network.is_alive(descriptor.node_id)
            ]
        candidates = [
            node_id
            for node_id in candidates
            if ctx.network.node(node_id).has_protocol(self.layer)
        ]
        if not candidates:
            return None
        return rng.choice(candidates)

    def _bucket_heads(self, component: str, limit: int) -> List[Descriptor]:
        """The ``limit`` youngest contacts of one bucket, in contacts() order.

        nsmallest == sorted[:k] (same key, same ties) in O(n log k); the
        round-robin below never consumes more than ``limit`` entries from a
        single bucket, so the tail of the full ranking is never needed.
        """
        bucket = self.buckets.get(component)
        if bucket is None:
            return []
        return heapq.nsmallest(
            limit, bucket.descriptors(), key=lambda d: (d.age, d.node_id)
        )

    def _make_buffer(self, ctx: RoundContext, flow=None) -> List[Descriptor]:
        """Self plus the youngest contact of each known component, round-robin
        until the message budget is reached."""
        advert = self.self_descriptor()
        if flow is not None:
            advert = flow.advertise(advert, self.node_id, ctx.round)
        buffer = [advert]
        limit = self.gossip_contacts - 1
        per_component = [
            self._bucket_heads(name, limit) for name in self.known_components()
        ]
        depth = 0
        while len(buffer) < self.gossip_contacts:
            added = False
            for contacts in per_component:
                if depth < len(contacts) and len(buffer) < self.gossip_contacts:
                    buffer.append(contacts[depth])
                    added = True
            if not added:
                break
            depth += 1
        return buffer

    def _merge(self, ctx: RoundContext, received: List[Descriptor]) -> None:
        adopted = 0
        for descriptor in received:
            # One hop in transit: stale contacts of dead nodes age out of
            # the buckets instead of bouncing at age 0 (see Vicinity).
            adopted += self._insert(descriptor.aged())
        if ctx.obs is not None and adopted:
            ctx.obs.count_key(self._k_churn, adopted)
