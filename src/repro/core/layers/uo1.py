"""UO1 — the same-component utility overlay.

Paper §3.3: the utility overlays are "in charge of assigning nodes to each
component [and] gather nodes from the same component". UO1 is, per component,
a clustered peer-sampling service: each node maintains a small, continuously
mixed random sample *restricted to members of its own component*.

Discovery works in two channels:

- *harvesting*: each round the node scans its global peer-sampling view and
  adopts any same-component peers found there (profiles piggyback on
  peer-sampling descriptors, so this costs no extra messages in the byte
  model — see DESIGN.md);
- *gossip*: a push-pull exchange of view samples with one same-component
  contact, mixing membership knowledge inside the component.

The view doubles as the candidate source of the component's core protocol.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional

from repro.core.profiles import NodeProfile
from repro.gossip.descriptors import Descriptor
from repro.gossip.views import make_view
from repro.sim.config import GossipParams
from repro.sim.engine import RoundContext
from repro.sim.network import Network
from repro.sim.protocol import Protocol
from repro.sim.transport import ExchangeRequest


class SameComponentOverlay(Protocol):
    """One node's UO1 instance.

    Parameters
    ----------
    node_id, profile:
        Identity and current role of the hosting node.
    params:
        View size and gossip buffer size.
    layer:
        Attachment/accounting label (``uo1``).
    random_layer:
        The global peer-sampling layer harvested for same-component peers.
    """

    def __init__(
        self,
        node_id: int,
        profile: NodeProfile,
        params: Optional[GossipParams] = None,
        layer: str = "uo1",
        random_layer: str = "peer_sampling",
        descriptor_ttl: Optional[int] = None,
    ):
        self.node_id = node_id
        self.profile = profile
        self.params = params or GossipParams()
        self.layer = layer
        self.random_layer = random_layer
        # Staleness hygiene: entries a dead member can no longer refresh
        # must age out instead of circulating (see Vicinity.descriptor_ttl).
        self.descriptor_ttl = descriptor_ttl or max(24, 2 * self.params.view_size)
        self.view = make_view(self.params)
        self._self_descriptor = Descriptor(node_id, age=0, profile=profile)
        # Pre-resolved (name, layer) counter keys for Instrument.count_key.
        self._k_exchanges = ("exchanges", layer)
        self._k_sent = ("descriptors_sent", layer)
        self._k_received = ("descriptors_received", layer)
        self._k_dead = ("dead_purged", layer)
        self._k_replacements = ("view_replacements", layer)
        self._k_churn = ("descriptor_churn", layer)

    # -- identity ---------------------------------------------------------------

    def self_descriptor(self) -> Descriptor:
        return self._self_descriptor

    def set_profile(self, profile: NodeProfile) -> None:
        """Adopt a new role; stale other-component entries are dropped."""
        self.profile = profile
        self._self_descriptor = Descriptor(self.node_id, age=0, profile=profile)
        self.view.discard_where(lambda d: not self._accepts(d))

    def _accepts(self, descriptor: Descriptor) -> bool:
        return (
            isinstance(descriptor.profile, NodeProfile)
            and descriptor.profile.component == self.profile.component
        )

    # -- protocol interface --------------------------------------------------------

    def neighbors(self) -> List[int]:
        return self.view.ids()

    def forget(self, node_id: int) -> None:
        self.view.remove(node_id)

    def reweight(
        self, healer: Optional[int] = None, swapper: Optional[int] = None
    ) -> GossipParams:
        """Adjust the healer/swapper split of the merge policy in place.

        Same contract as :meth:`repro.gossip.peer_sampling.PeerSampling.reweight`:
        values are clamped so ``healer + swapper <= view_size`` holds and
        the adjusted parameters re-validate on construction.
        """
        params = self.params
        new_healer = params.healer if healer is None else healer
        new_healer = min(max(0, new_healer), params.view_size)
        new_swapper = params.swapper if swapper is None else swapper
        new_swapper = min(max(0, new_swapper), params.view_size - new_healer)
        self.params = GossipParams(
            view_size=params.view_size,
            gossip_size=params.gossip_size,
            healer=new_healer,
            swapper=new_swapper,
            backend=params.backend,
        )
        return self.params

    def step(self, ctx: RoundContext) -> None:
        self.view.increase_age()
        self._harvest(ctx)
        if not ctx.exchange_ok():
            return  # this round's exchange was lost
        partner = self._choose_partner(ctx)
        if partner is None:
            return
        if not ctx.transport.deliverable(ctx, partner.node_id, self.layer):
            # Unreachable, not dead: drop without a tombstone.
            self.view.remove(partner.node_id)
            return
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        buffer = self._make_buffer(ctx, flow)
        reply = ctx.transport.exchange(
            ctx, partner.node_id, ExchangeRequest(self.layer, self.node_id, buffer)
        )
        if reply is None:
            self.view.remove(partner.node_id)
            return
        ctx.transport.record_exchange(self.layer, len(buffer), len(reply))
        if obs is not None:
            obs.count_key(self._k_exchanges)
            obs.count_key(self._k_sent, len(buffer))
            obs.count_key(self._k_received, len(reply))
            if flow is not None:
                reply = flow.on_received(
                    self.layer, ctx.round, self.node_id, partner.node_id, reply
                )
        self._merge(ctx, sent=buffer, received=reply)

    def on_gossip(
        self, ctx: RoundContext, received: List[Descriptor]
    ) -> List[Descriptor]:
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        reply = self._make_buffer(ctx, flow)
        if obs is not None:
            obs.count_key(self._k_sent, len(reply))
            obs.count_key(self._k_received, len(received))
            if flow is not None:
                # ctx belongs to the active requester — the sender.
                received = flow.on_received(
                    self.layer, ctx.round, self.node_id, ctx.node.node_id, received
                )
        self._merge(ctx, sent=reply, received=received)
        return reply

    def on_request(
        self, ctx: RoundContext, request: ExchangeRequest
    ) -> List[Descriptor]:
        """Transport-seam entry point: delegate to :meth:`on_gossip`."""
        return self.on_gossip(ctx, request.payload)

    # -- internals -------------------------------------------------------------------

    def _harvest(self, ctx: RoundContext) -> None:
        """Adopt same-component peers appearing in the global random view."""
        if not ctx.node.has_protocol(self.random_layer):
            return
        for node_id in ctx.node.protocol(self.random_layer).neighbors():
            if node_id == self.node_id or not ctx.network.is_alive(node_id):
                continue
            if not ctx.transport.reachable(ctx, node_id):
                continue  # harvesting across the cut would leak state
            peer = ctx.network.node(node_id)
            if not peer.has_protocol(self.layer):
                continue
            peer_protocol = peer.protocol(self.layer)
            assert isinstance(peer_protocol, SameComponentOverlay)
            descriptor = peer_protocol.self_descriptor()
            if self._accepts(descriptor):
                self.view.insert(descriptor)

    def _choose_partner(self, ctx: RoundContext) -> Optional[Descriptor]:
        while len(self.view):
            candidate = self.view.oldest()
            if candidate is None:
                break
            if ctx.network.is_alive(candidate.node_id) and self._partner_valid(
                ctx.network, candidate.node_id
            ):
                return candidate
            if ctx.network.is_alive(candidate.node_id):
                # Reassigned to another component — invalid partner, but not
                # dead; no tombstone (it may rejoin this component later).
                self.view.remove(candidate.node_id)
            else:
                # Dead: tombstone against stale resurrection.
                self.view.purge(candidate.node_id)
                if ctx.obs is not None:
                    ctx.obs.count_key(self._k_dead)
        return None

    def _partner_valid(self, network: Network, node_id: int) -> bool:
        """A partner must still run UO1 *for the same component* (it may have
        been reassigned by a reconfiguration since we learned about it)."""
        peer = network.node(node_id)
        if not peer.has_protocol(self.layer):
            return False
        peer_protocol = peer.protocol(self.layer)
        assert isinstance(peer_protocol, SameComponentOverlay)
        return peer_protocol.profile.component == self.profile.component

    def _make_buffer(self, ctx: RoundContext, flow=None) -> List[Descriptor]:
        advert = self.self_descriptor()
        if flow is not None:
            advert = flow.advertise(advert, self.node_id, ctx.round)
        buffer = [advert]
        buffer.extend(self.view.sample(ctx.rng(), self.params.gossip_size - 1))
        return buffer

    def _merge(
        self,
        ctx: RoundContext,
        sent: List[Descriptor],
        received: List[Descriptor],
    ) -> None:
        """Peer-sampling style select: merge, then heal/swap/trim to size."""
        params = self.params
        pool = {
            d.node_id: d for d in self.view if d.age <= self.descriptor_ttl
        }
        for incoming in received:
            if incoming.node_id == self.node_id or not self._accepts(incoming):
                continue
            descriptor = incoming.aged()  # one hop in transit (TTL hygiene)
            if descriptor.age > self.descriptor_ttl:
                continue
            current = pool.get(descriptor.node_id)
            if current is None or descriptor.age < current.age:
                pool[descriptor.node_id] = descriptor

        def excess() -> int:
            return len(pool) - params.view_size

        if excess() > 0 and params.healer > 0:
            # nsmallest == sorted[:k] (same key, same ties) in O(n log k);
            # the healer wave only ever needs the H oldest entries.
            doomed = heapq.nsmallest(
                min(params.healer, excess()),
                pool.values(),
                key=lambda d: (-d.age, d.node_id),
            )
            for descriptor in doomed:
                del pool[descriptor.node_id]
        if excess() > 0 and params.swapper > 0:
            swaps = min(params.swapper, excess())
            for descriptor in sent:
                if swaps <= 0:
                    break
                if descriptor.node_id == self.node_id:
                    continue
                if pool.pop(descriptor.node_id, None) is not None:
                    swaps -= 1
        rng = ctx.rng()
        while excess() > 0:
            victim = rng.choice(list(pool.keys()))
            del pool[victim]
        if ctx.obs is not None:
            entering = len(pool.keys() - self.view.id_set())
            ctx.obs.count_key(self._k_replacements)
            ctx.obs.count_key(self._k_churn, entering)
        self.view.replace(pool.values())
