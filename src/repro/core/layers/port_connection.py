"""Port connection — realizing the links between ports.

Paper §3.3: the last overlay handles "the connection between different ports
according to the links specified in the target topology". Nodes gossip a
table of *port bindings* — records ``(component, port) → (manager, age)`` —
in two directions:

- with same-component neighbours (via UO1), spreading knowledge of both the
  local ports' managers and whatever remote bindings are known;
- with UO2's long-distance contacts in *linked* components, which is how a
  binding first crosses the component boundary.

A link ``A.p -- B.q`` is *realized* once the manager of ``A.p`` holds a
fresh binding for ``B.q`` and vice versa: at the node level those two
managers are connected, which is exactly the paper's definition of a link
("a connection between two nodes from two different components").

Bindings age every round and expire, so a manager crash or a reconfiguration
heals: the stale binding dies out while port selection elects a replacement
whose fresh binding then propagates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.link import LinkSpec, PortRef
from repro.core.profiles import NodeProfile
from repro.sim.engine import RoundContext
from repro.sim.protocol import Protocol
from repro.sim.transport import ExchangeRequest

#: A binding: who manages a port, and how stale that knowledge is.
Binding = Tuple[int, int]  # (manager_id, age)

#: Bindings older than this many rounds are discarded (failure healing).
DEFAULT_BINDING_TTL = 16


class PortConnection(Protocol):
    """One node's port-connection instance.

    Parameters
    ----------
    node_id, profile:
        Identity and current role of the hosting node.
    links:
        Every link of the assembly that touches the node's component.
    layer, selection_layer, uo1_layer, uo2_layer:
        Attachment labels of this protocol and its helper layers.
    binding_ttl:
        Rounds before an unrefreshed binding is dropped.
    """

    def __init__(
        self,
        node_id: int,
        profile: NodeProfile,
        links: Tuple[LinkSpec, ...],
        layer: str = "port_connection",
        selection_layer: str = "port_selection",
        uo1_layer: str = "uo1",
        uo2_layer: str = "uo2",
        binding_ttl: int = DEFAULT_BINDING_TTL,
    ):
        self.node_id = node_id
        self.profile = profile
        self.links = tuple(links)
        self.layer = layer
        self.selection_layer = selection_layer
        self.uo1_layer = uo1_layer
        self.uo2_layer = uo2_layer
        self.binding_ttl = binding_ttl
        self.bindings: Dict[PortRef, Binding] = {}
        self._relevant = self._relevant_refs()

    def _relevant_refs(self) -> frozenset:
        """The only port refs this node needs bindings for: the endpoints of
        its component's links. Bounding the table here bounds the gossip
        message size by the node's link degree, not the whole assembly."""
        return frozenset(
            ref for link in self.links for ref in link.endpoints()
        )

    # -- identity ------------------------------------------------------------------

    def set_profile(self, profile: NodeProfile, links: Tuple[LinkSpec, ...]) -> None:
        """Adopt a new role (reconfiguration): stale bindings are flushed."""
        self.profile = profile
        self.links = tuple(links)
        self.bindings = {}
        self._relevant = self._relevant_refs()

    # -- queries ---------------------------------------------------------------------

    def binding_for(self, ref: PortRef) -> Optional[int]:
        """The manager currently bound to ``ref``, if known and fresh."""
        binding = self.bindings.get(ref)
        return binding[0] if binding else None

    def realized_links(self) -> List[Tuple[LinkSpec, int, int]]:
        """Links this node can currently resolve end-to-end.

        Returns ``(link, local_manager, remote_manager)`` for every link of
        the component whose both endpoint bindings are known here.
        """
        resolved = []
        for link in self.links:
            local_ref, remote_ref = self._orient(link)
            if local_ref is None:
                continue
            local_manager = self.binding_for(local_ref)
            remote_manager = self.binding_for(remote_ref)
            if local_manager is not None and remote_manager is not None:
                resolved.append((link, local_manager, remote_manager))
        return resolved

    def neighbors(self) -> List[int]:
        """Remote managers this node is linked to, where it manages a port."""
        out = set()
        for _link, local_manager, remote_manager in self.realized_links():
            if local_manager == self.node_id:
                out.add(remote_manager)
        return sorted(out)

    def forget(self, node_id: int) -> None:
        doomed = [ref for ref, (mgr, _) in self.bindings.items() if mgr == node_id]
        for ref in doomed:
            del self.bindings[ref]

    # -- protocol ---------------------------------------------------------------------

    def step(self, ctx: RoundContext) -> None:
        self._age_and_expire()
        self._refresh_local_bindings(ctx)
        if not self.links:
            return
        if not ctx.exchange_ok():
            return  # this round's exchange was lost
        partner_id = self._choose_partner(ctx)
        if partner_id is None:
            return
        if not ctx.transport.deliverable(ctx, partner_id, self.layer):
            return  # partner unreachable (partition / degraded link)
        outgoing = dict(self.bindings)
        incoming = ctx.transport.exchange(
            ctx, partner_id, ExchangeRequest(self.layer, self.node_id, outgoing)
        )
        if incoming is None:
            return  # sent but never answered (real-network timeout)
        ctx.transport.record_exchange(self.layer, len(outgoing), len(incoming))
        if ctx.obs is not None:
            ctx.obs.count("exchanges", layer=self.layer)
            ctx.obs.count("descriptors_sent", len(outgoing), layer=self.layer)
            ctx.obs.count("descriptors_received", len(incoming), layer=self.layer)
        self._merge(ctx, incoming)

    def on_gossip(
        self, ctx: RoundContext, received: Dict[PortRef, Binding]
    ) -> Dict[PortRef, Binding]:
        reply = dict(self.bindings)
        if ctx.obs is not None:
            ctx.obs.count("descriptors_sent", len(reply), layer=self.layer)
            ctx.obs.count("descriptors_received", len(received), layer=self.layer)
        self._merge(ctx, received)
        return reply

    def on_request(
        self, ctx: RoundContext, request: ExchangeRequest
    ) -> Dict[PortRef, Binding]:
        """Transport-seam entry point: delegate to :meth:`on_gossip`."""
        return self.on_gossip(ctx, request.payload)

    # -- internals ----------------------------------------------------------------------

    def _orient(self, link: LinkSpec):
        """Split a link into (my component's endpoint, the other endpoint)."""
        if link.a.component == self.profile.component:
            return link.a, link.b
        if link.b.component == self.profile.component:
            return link.b, link.a
        return None, None

    def _age_and_expire(self) -> None:
        aged: Dict[PortRef, Binding] = {}
        for ref, (manager_id, age) in self.bindings.items():
            if age + 1 <= self.binding_ttl:
                aged[ref] = (manager_id, age + 1)
        self.bindings = aged

    def _refresh_local_bindings(self, ctx: RoundContext) -> None:
        """Re-publish the managers of this component's ports from the local
        port-selection beliefs (age 0: authoritative at the source)."""
        if not ctx.node.has_protocol(self.selection_layer):
            return
        selection = ctx.node.protocol(self.selection_layer)
        for link in self.links:
            local_ref, _ = self._orient(link)
            if local_ref is None:
                continue
            manager_id = selection.manager_of(local_ref.port)
            if manager_id is not None:
                self.bindings[local_ref] = (manager_id, 0)

    def _choose_partner(self, ctx: RoundContext) -> Optional[int]:
        """Prefer a long-distance contact in a linked component (odd rounds),
        otherwise a same-component neighbour (even rounds)."""
        rng = ctx.rng()
        linked = {
            ref.component
            for link in self.links
            for ref in link.endpoints()
            if ref.component != self.profile.component
        }
        foreign: List[int] = []
        if ctx.node.has_protocol(self.uo2_layer):
            uo2 = ctx.node.protocol(self.uo2_layer)
            # Sorted: set iteration order depends on the per-process string
            # hash seed, and candidate order feeds rng.choice — without the
            # sort, runs would differ across processes despite fixed seeds.
            for component in sorted(linked):
                for descriptor in uo2.contacts(component):
                    if ctx.network.is_alive(descriptor.node_id):
                        foreign.append(descriptor.node_id)
        local: List[int] = []
        if ctx.node.has_protocol(self.uo1_layer):
            local = [
                node_id
                for node_id in ctx.node.protocol(self.uo1_layer).neighbors()
                if ctx.network.is_alive(node_id)
            ]
        pools = [foreign, local] if ctx.round % 2 else [local, foreign]
        for pool in pools:
            candidates = [
                node_id
                for node_id in pool
                if ctx.network.node(node_id).has_protocol(self.layer)
            ]
            if candidates:
                return rng.choice(candidates)
        return None

    def _merge(self, ctx: RoundContext, received: Dict[PortRef, Binding]) -> None:
        """Keep the freshest binding per port; drop dead managers on sight.

        Only bindings for this component's link endpoints are retained —
        everything else is another part of the assembly's business and
        would bloat the table (and every future message) linearly in the
        total number of ports.
        """
        for ref, (manager_id, age) in received.items():
            if ref not in self._relevant:
                continue
            if age > self.binding_ttl:
                continue
            if not ctx.network.is_alive(manager_id):
                continue
            mine = self.bindings.get(ref)
            if mine is None or age < mine[1]:
                self.bindings[ref] = (manager_id, age)
