"""The layer profile nodes advertise once they hold a role in an assembly."""

from __future__ import annotations

from typing import Any, NamedTuple


class NodeProfile(NamedTuple):
    """What a node's gossip descriptors say about its place in the assembly.

    Attributes
    ----------
    component:
        Name of the component the node belongs to.
    rank:
        The node's rank within its component (``0 .. comp_size - 1``); the
    comp_size:
        Size of the component at assignment time — together with ``rank``
        this pins the node's coordinate in the component's shape.
    coord:
        The shape coordinate derived from the rank (what the component's
        core-protocol metric ranks on).
    """

    component: str
    rank: int
    comp_size: int
    coord: Any

    def same_component(self, other: "NodeProfile") -> bool:
        return self.component == other.component
