"""Node-assignment rules and the resulting role map.

The DSL's first element group is "a list of the basic shapes [...] and some
rules to decide which node will be assigned to which component". An
:class:`AssignmentRule` is such a rule: given the node population and the
assembly's component declarations, it produces a :class:`RoleMap` giving each
node a component and a rank within it.

Rules are deterministic functions of the node-id set, so every node could
recompute its own role locally from the membership information the gossip
layers give it — the property that keeps the mapping "transparent to
developers" as the paper demands.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.errors import AssemblyError, TopologyError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.assembly import Assembly


#: Pseudo-component for nodes beyond the assembly's fixed quotas: they idle
#: with a minimal profile until a rebalance promotes them into a real
#: component (e.g. to replace a crashed member).
SPARE_COMPONENT = "_spare"


class Role(NamedTuple):
    """One node's place in the assembly."""

    component: str
    rank: int
    comp_size: int

    @property
    def is_spare(self) -> bool:
        return self.component == SPARE_COMPONENT


class RoleMap:
    """The assignment of every node to a (component, rank) role."""

    def __init__(self, roles: Dict[int, Role]):
        self._roles = dict(roles)
        self._members: Dict[str, List[Tuple[int, int]]] = {}
        for node_id, role in sorted(self._roles.items()):
            self._members.setdefault(role.component, []).append((node_id, role.rank))
        for members in self._members.values():
            members.sort(key=lambda pair: pair[1])

    def role(self, node_id: int) -> Role:
        try:
            return self._roles[node_id]
        except KeyError:
            raise TopologyError(f"node {node_id} has no role") from None

    def has_role(self, node_id: int) -> bool:
        return node_id in self._roles

    def members(self, component: str) -> List[Tuple[int, int]]:
        """``(node_id, rank)`` pairs of a component, ordered by rank."""
        return list(self._members.get(component, []))

    def member_ids(self, component: str) -> List[int]:
        return [node_id for node_id, _ in self._members.get(component, [])]

    def component_size(self, component: str) -> int:
        return len(self._members.get(component, []))

    def components(self) -> List[str]:
        return sorted(self._members)

    def node_ids(self) -> List[int]:
        return sorted(self._roles)

    def __len__(self) -> int:
        return len(self._roles)

    def __repr__(self) -> str:
        sizes = {name: len(members) for name, members in self._members.items()}
        return f"RoleMap({sizes})"


class AssignmentRule(ABC):
    """A deterministic node → (component, rank) mapping rule."""

    name: str = ""

    @abstractmethod
    def assign(self, node_ids: Sequence[int], assembly: "Assembly") -> RoleMap:
        """Compute the role map for ``node_ids`` under ``assembly``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AssignmentRule):
            return NotImplemented
        return type(self) is type(other)

    def __hash__(self) -> int:
        return hash(type(self).__name__)


def _apportion(total: int, weights: Dict[str, float]) -> Dict[str, int]:
    """Largest-remainder apportionment of ``total`` across ``weights``.

    Every key receives at least one unit; requires ``total >= len(weights)``.
    """
    if total < len(weights):
        raise AssemblyError(
            f"cannot apportion {total} node(s) across {len(weights)} component(s)"
        )
    total_weight = sum(weights.values())
    shares = [(name, total * weight / total_weight) for name, weight in weights.items()]
    floors = {name: max(1, int(share)) for name, share in shares}
    leftover = total - sum(floors.values())
    if leftover < 0:
        # The max(1, ...) floors overshot; shave the largest quotas first.
        for name, _ in sorted(shares, key=lambda s: -s[1]):
            while leftover < 0 and floors[name] > 1:
                floors[name] -= 1
                leftover += 1
    remainders = sorted(shares, key=lambda s: (s[1] - int(s[1]), s[0]), reverse=True)
    index = 0
    while leftover > 0 and remainders:
        name = remainders[index % len(remainders)][0]
        floors[name] += 1
        leftover -= 1
        index += 1
    return floors


def _component_quotas(
    node_count: int, assembly: "Assembly"
) -> Dict[str, int]:
    """Split ``node_count`` nodes across components.

    Components with a fixed ``size`` get exactly that many nodes; the rest
    of the population goes to weighted components by largest-remainder
    apportionment. Every component receives at least one node.

    Graceful degradation: when the (live) population cannot satisfy the
    fixed sizes — e.g. after a failure wave — the fixed sizes are treated as
    relative targets and scaled down proportionally, so the assembly shrinks
    instead of dying. Surplus nodes of an all-fixed assembly become spares
    (handled by the callers).
    """
    specs = list(assembly.components.values())
    if node_count < len(specs):
        raise AssemblyError(
            f"{node_count} node(s) cannot populate {len(specs)} component(s)"
        )
    fixed = {spec.name: spec.size for spec in specs if spec.size is not None}
    fixed_total = sum(fixed.values())
    weighted = [spec for spec in specs if spec.size is None]
    remaining = node_count - fixed_total
    if remaining < len(weighted):
        # Degraded mode: not enough nodes for the declared sizes. Treat
        # every declaration as a relative weight and shrink proportionally.
        targets: Dict[str, float] = dict(fixed)
        if weighted:
            mean_fixed = (fixed_total / len(fixed)) if fixed else 8.0
            for spec in weighted:
                targets[spec.name] = mean_fixed * spec.weight
        quotas = _apportion(node_count, targets)
    else:
        quotas = dict(fixed)
        if weighted:
            quotas.update(
                _apportion(remaining, {spec.name: spec.weight for spec in weighted})
            )
    for spec in specs:
        spec.shape.validate_size(quotas[spec.name])
    return quotas


def _assign_spares(roles: Dict[int, Role], leftover: Sequence[int]) -> None:
    """Give every unassigned node a spare role (see :data:`SPARE_COMPONENT`)."""
    for index, node_id in enumerate(leftover):
        roles[node_id] = Role(SPARE_COMPONENT, index, len(leftover))


class ProportionalAssignment(AssignmentRule):
    """Contiguous split of the sorted node ids, proportional to weights.

    The simplest deterministic rule: sort the population by id and deal
    consecutive slices to components (fixed-size components first, in
    declaration order). Ranks follow id order within each slice.
    """

    name = "proportional"

    def assign(self, node_ids: Sequence[int], assembly: "Assembly") -> RoleMap:
        ordered = sorted(set(node_ids))
        quotas = _component_quotas(len(ordered), assembly)
        roles: Dict[int, Role] = {}
        cursor = 0
        for spec in assembly.components.values():
            quota = quotas[spec.name]
            for rank in range(quota):
                roles[ordered[cursor]] = Role(spec.name, rank, quota)
                cursor += 1
        _assign_spares(roles, ordered[cursor:])
        return RoleMap(roles)


class HashAssignment(AssignmentRule):
    """Pseudo-random assignment by hashing node ids into weighted buckets.

    More realistic under churn than the contiguous split: a joining node
    lands in a component independent of its id's position in the global
    order, so existing ranks are not reshuffled. Quotas are still respected
    exactly — the hash orders the population, then quotas cut it — and ranks
    follow the hash order.
    """

    name = "hash"

    def __init__(self, salt: int = 0):
        self.salt = salt

    def _key(self, node_id: int) -> int:
        material = f"{self.salt}:{node_id}".encode("utf-8")
        return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")

    def assign(self, node_ids: Sequence[int], assembly: "Assembly") -> RoleMap:
        ordered = sorted(set(node_ids), key=lambda nid: (self._key(nid), nid))
        quotas = _component_quotas(len(ordered), assembly)
        roles: Dict[int, Role] = {}
        cursor = 0
        for spec in assembly.components.values():
            quota = quotas[spec.name]
            for rank in range(quota):
                roles[ordered[cursor]] = Role(spec.name, rank, quota)
                cursor += 1
        _assign_spares(roles, ordered[cursor:])
        return RoleMap(roles)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashAssignment):
            return NotImplemented
        return self.salt == other.salt

    def __hash__(self) -> int:
        return hash(("hash", self.salt))


_RULES = {
    "proportional": ProportionalAssignment,
    "hash": HashAssignment,
}


def make_assignment(name: str) -> AssignmentRule:
    """Instantiate an assignment rule from its DSL surface name."""
    try:
        return _RULES[name]()
    except KeyError:
        known = ", ".join(sorted(_RULES))
        raise AssemblyError(
            f"unknown assignment rule {name!r} (known: {known})"
        ) from None
