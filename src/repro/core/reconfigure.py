"""Dynamic reconfiguration — rewriting a live deployment's target topology.

The paper's experiment (iii) demonstrates the "ability to dynamically
reconfigure in presence of evolving needs": the assembly is rewritten while
the system runs, and the self-organizing layers converge to the new target
without restarting any node.

Mechanics: the new assembly's assignment rule is run over the live
population; every node whose role changes adopts a new profile — UO1/UO2
flush entries the new role invalidates, the core protocol is rebuilt for the
(possibly different) shape, ports re-propose and links re-bind. Global state
that stays valid (the peer-sampling views, same-component contacts that
remain same-component) is *kept*, which is why re-convergence is faster than
a cold start.
"""

from __future__ import annotations

from typing import Dict

from repro.core.assembly import Assembly
from repro.core.convergence import ConvergenceReport
from repro.core.runtime import Deployment


def reconfigure(deployment: Deployment, new_assembly: Assembly) -> None:
    """Switch ``deployment`` to ``new_assembly`` in place.

    The convergence tracker is reset, so a subsequent
    :meth:`~repro.core.runtime.Deployment.run_until_converged` measures
    re-convergence from the moment of the switch.
    """
    new_assembly.validate()
    # Compute the new role map before touching the deployment, so a failing
    # assignment (e.g. more components than live nodes) leaves it intact.
    new_map = new_assembly.assign_roles(deployment.network.alive_ids())
    old_assembly = deployment.assembly
    deployment.assembly = new_assembly
    deployment.runtime.assembly = new_assembly
    # Passing the old assembly lets unchanged-role nodes detect that their
    # component's declaration (shape, ports, links) changed around them.
    deployment._apply_role_changes(new_map, old_assembly=old_assembly)
    deployment.tracker.reset()


def reconfigure_and_measure(
    deployment: Deployment, new_assembly: Assembly, max_rounds: int = 120
) -> ConvergenceReport:
    """Apply :func:`reconfigure` and run until the new target is reached."""
    reconfigure(deployment, new_assembly)
    return deployment.run_until_converged(max_rounds)


def elastic_rebalance(deployment: Deployment) -> Dict[str, int]:
    """Re-run the role assignment over the live population, reporting moves.

    The elastic replica adjustment behind the churn-spike remediation: the
    same reaction as :meth:`~repro.core.runtime.Deployment.rebalance`
    (crashed nodes lose their roles; survivors and spares absorb the
    vacated ranks), but instrumentable — it returns how much of the
    assignment actually moved, so a remediation engine can tell a
    no-op rebalance (assignment already matches the live population)
    from a real elastic adjustment. Safe under repeated invocation: a
    second call over an unchanged population moves zero roles.
    """
    old_map = deployment.role_map
    live = deployment.network.alive_ids()
    new_map = deployment.assembly.assign_roles(live)
    moved = sum(
        1
        for node_id in live
        if new_map.has_role(node_id)
        and (
            not old_map.has_role(node_id)
            or old_map.role(node_id) != new_map.role(node_id)
        )
    )
    deployment._apply_role_changes(new_map)
    return {"population": len(live), "roles_moved": moved}
