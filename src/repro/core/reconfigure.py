"""Dynamic reconfiguration — rewriting a live deployment's target topology.

The paper's experiment (iii) demonstrates the "ability to dynamically
reconfigure in presence of evolving needs": the assembly is rewritten while
the system runs, and the self-organizing layers converge to the new target
without restarting any node.

Mechanics: the new assembly's assignment rule is run over the live
population; every node whose role changes adopts a new profile — UO1/UO2
flush entries the new role invalidates, the core protocol is rebuilt for the
(possibly different) shape, ports re-propose and links re-bind. Global state
that stays valid (the peer-sampling views, same-component contacts that
remain same-component) is *kept*, which is why re-convergence is faster than
a cold start.
"""

from __future__ import annotations

from repro.core.assembly import Assembly
from repro.core.convergence import ConvergenceReport
from repro.core.runtime import Deployment


def reconfigure(deployment: Deployment, new_assembly: Assembly) -> None:
    """Switch ``deployment`` to ``new_assembly`` in place.

    The convergence tracker is reset, so a subsequent
    :meth:`~repro.core.runtime.Deployment.run_until_converged` measures
    re-convergence from the moment of the switch.
    """
    new_assembly.validate()
    # Compute the new role map before touching the deployment, so a failing
    # assignment (e.g. more components than live nodes) leaves it intact.
    new_map = new_assembly.assign_roles(deployment.network.alive_ids())
    old_assembly = deployment.assembly
    deployment.assembly = new_assembly
    deployment.runtime.assembly = new_assembly
    # Passing the old assembly lets unchanged-role nodes detect that their
    # component's declaration (shape, ports, links) changed around them.
    deployment._apply_role_changes(new_map, old_assembly=old_assembly)
    deployment.tracker.reset()


def reconfigure_and_measure(
    deployment: Deployment, new_assembly: Assembly, max_rounds: int = 120
) -> ConvergenceReport:
    """Apply :func:`reconfigure` and run until the new target is reached."""
    reconfigure(deployment, new_assembly)
    return deployment.run_until_converged(max_rounds)
