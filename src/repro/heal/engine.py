"""The remediation engine — observe → decide → act, closed per round.

:class:`RemediationEngine` is the autonomic controller pairing the health
monitor (observe/decide) with the action library (act):

- it **subscribes** to :class:`~repro.obs.health.HealthMonitor` alert
  transitions: a firing alert opens an :class:`Incident`, a clearing alert
  closes it as recovered;
- it **acts** in the engine's act phase (it is a
  :class:`~repro.sim.controls.Actuator`, running after every observer of
  the same round), applying the action mapped to each open incident's rule
  under that action's :class:`~repro.heal.policy.BackoffPolicy` — bounded
  attempts, deterministic jittered backoff, per-incident budget;
- it **escalates** when a level's policy is exhausted: local action
  (level 0) → component re-seed (level 1) → ``unrecoverable`` verdict
  (level 2), the ladder's terminal rung.

Every decision lands in three places: typed events on the collector
(``remediation`` / ``remediation_escalated`` / ``incident_recovered`` /
``incident_unrecoverable``), a JSONL-able :meth:`timeline`, and the
:meth:`summary`/:meth:`verdict` the heal scenarios embed in their results.

Determinism: the engine draws only from one ``streams.fork("heal")``
stream handed in at construction; with the monitor evaluating rules over
deterministic telemetry, a managed run is a pure function of its seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.heal.actions import (
    ComponentReseed,
    RemediationAction,
    default_actions,
)
from repro.heal.policy import DEFAULT_POLICY
from repro.obs import events as _events
from repro.sim.controls import Actuator
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Deployment
    from repro.obs.health import Alert, HealthMonitor

#: The terminal escalation level: an incident reaching it is unrecoverable.
UNRECOVERABLE_LEVEL = 2


@dataclass
class Incident:
    """One alert's remediation lifecycle, across escalation levels."""

    rule: str
    severity: str
    opened_round: int
    level: int = 0
    attempts: int = 0
    actions_applied: int = 0
    next_round: int = 0
    status: str = "open"  # open | recovered | unrecoverable
    closed_round: Optional[int] = None
    reopened: bool = False
    alert: Optional["Alert"] = field(default=None, repr=False, compare=False)

    @property
    def open(self) -> bool:
        return self.status == "open"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "opened_round": self.opened_round,
            "closed_round": self.closed_round,
            "status": self.status,
            "level": self.level,
            "attempts": self.attempts,
            "actions_applied": self.actions_applied,
            "reopened": self.reopened,
        }


class RemediationEngine(Actuator):
    """Closed-loop remediation over one deployment.

    Parameters
    ----------
    deployment:
        The live deployment to repair (actions mutate its network, views,
        and role map).
    monitor:
        The health monitor to subscribe to; its collector also receives
        the engine's typed events.
    rng:
        The seeded stream for backoff jitter and every action's draws —
        fork ``"heal"`` off the deployment's streams (which
        :meth:`for_deployment` does).
    actions:
        Rule-name → action mapping (defaults to
        :func:`~repro.heal.actions.default_actions`).
    escalation:
        The level-1 action (defaults to
        :class:`~repro.heal.actions.ComponentReseed`).
    """

    def __init__(
        self,
        deployment: "Deployment",
        monitor: "HealthMonitor",
        rng: random.Random,
        actions: Optional[Dict[str, RemediationAction]] = None,
        escalation: Optional[RemediationAction] = None,
    ):
        self.deployment = deployment
        self.monitor = monitor
        self.collector = monitor.collector
        self.rng = rng
        self.actions = dict(actions) if actions is not None else default_actions()
        self.escalation = escalation if escalation is not None else ComponentReseed()
        #: Full incident history, in opening order (closed ones stay).
        self.incidents: List[Incident] = []
        self._active: Dict[str, Incident] = {}
        #: rule -> (closed_round, level) for cooldown hysteresis on re-fire.
        self._last_closed: Dict[str, Tuple[int, int]] = {}
        self._timeline: List[Dict[str, Any]] = []
        self.actions_run = 0
        self.escalations = 0
        monitor.subscribe(self._on_alert)

    @classmethod
    def for_deployment(
        cls,
        deployment: "Deployment",
        monitor: "HealthMonitor",
        actions: Optional[Dict[str, RemediationAction]] = None,
        escalation: Optional[RemediationAction] = None,
    ) -> "RemediationEngine":
        """Build, wire, and register an engine on ``deployment``.

        Subscribes to the monitor, registers the engine as an actuator of
        the deployment's simulation engine, derives the heal RNG from the
        deployment's seed space (``streams.fork("heal")``), and exposes
        the engine as ``deployment.heal``.
        """
        rng = deployment.streams.fork("heal").stream("engine")
        engine = cls(
            deployment, monitor, rng, actions=actions, escalation=escalation
        )
        deployment.engine.add_actuator(engine)
        deployment.heal = engine  # type: ignore[attr-defined]
        return engine

    # -- decide: alert transitions --------------------------------------------

    def _policy_for(self, rule: str):
        action = self.actions.get(rule)
        return action.policy if action is not None else DEFAULT_POLICY

    def _on_alert(self, alert: "Alert", fired: bool, round_index: int) -> None:
        if fired:
            if alert.rule in self._active:
                return  # already tracked (monitor alerts are edge-triggered)
            level = 0
            reopened = False
            last = self._last_closed.get(alert.rule)
            if (
                last is not None
                and round_index - last[0] <= self._policy_for(alert.rule).cooldown
            ):
                # Hysteresis: a flap within the cooldown resumes the old
                # incident's escalation level instead of restarting at 0.
                level = last[1]
                reopened = True
            incident = Incident(
                rule=alert.rule,
                severity=alert.severity,
                opened_round=round_index,
                level=level,
                next_round=round_index,
                reopened=reopened,
                alert=alert,
            )
            self._active[alert.rule] = incident
            self.incidents.append(incident)
            self._record(
                round_index,
                "incident_opened",
                incident,
                detail={"reopened": reopened},
            )
            return
        incident = self._active.pop(alert.rule, None)
        if incident is None:
            return
        incident.closed_round = round_index
        self._last_closed[alert.rule] = (round_index, incident.level)
        if incident.status == "open":
            incident.status = "recovered"
            self.collector.emit(
                _events.EVENT_INCIDENT_RECOVERED,
                rule=incident.rule,
                level=incident.level,
                actions_applied=incident.actions_applied,
                rounds_open=round_index - incident.opened_round,
            )
        self._record(round_index, "incident_closed", incident)

    # -- act: the engine's act phase ------------------------------------------

    def _action_for(self, incident: Incident) -> Optional[RemediationAction]:
        if incident.level == 0:
            return self.actions.get(incident.rule)
        if incident.level == 1:
            return self.escalation
        return None

    def act(self, network: Network, round_index: int) -> None:
        for rule in sorted(self._active):
            incident = self._active[rule]
            if not incident.open or round_index < incident.next_round:
                continue
            action = self._action_for(incident)
            if action is None:
                # No mapping for this rule: nothing to do but wait for the
                # alert to clear on its own.
                incident.next_round = round_index + DEFAULT_POLICY.cooldown
                continue
            result = action.apply(
                self.deployment, incident.alert, round_index, self.rng
            )
            outcome = str(result.get("outcome", "applied"))
            self.actions_run += 1
            detail = {
                key: value for key, value in result.items() if key != "outcome"
            }
            self.collector.emit(
                _events.EVENT_REMEDIATION,
                rule=rule,
                action=action.name,
                level=incident.level,
                outcome=outcome,
            )
            self._record(
                round_index,
                "remediation",
                incident,
                action=action.name,
                outcome=outcome,
                detail=detail,
            )
            if outcome == "deferred":
                # Free retry: acting now was futile (e.g. an active cut),
                # not wrong — check again next round.
                incident.next_round = round_index + 1
                continue
            incident.attempts += 1
            if outcome == "applied":
                incident.actions_applied += 1
            incident.next_round = round_index + action.policy.delay(
                incident.attempts, self.rng
            )
            if action.policy.exhausted(incident.attempts) or (
                incident.actions_applied >= action.policy.budget
            ):
                self._escalate(incident, round_index)

    def _escalate(self, incident: Incident, round_index: int) -> None:
        incident.level += 1
        incident.attempts = 0
        self.escalations += 1
        if incident.level >= UNRECOVERABLE_LEVEL:
            incident.status = "unrecoverable"
            self.collector.emit(
                _events.EVENT_INCIDENT_UNRECOVERABLE,
                rule=incident.rule,
                actions_applied=incident.actions_applied,
                rounds_open=round_index - incident.opened_round,
            )
            self._record(round_index, "incident_unrecoverable", incident)
            return
        self.collector.emit(
            _events.EVENT_REMEDIATION_ESCALATED,
            rule=incident.rule,
            level=incident.level,
        )
        self._record(round_index, "escalated", incident)

    # -- reporting -------------------------------------------------------------

    def _record(
        self,
        round_index: int,
        kind: str,
        incident: Incident,
        action: str = "",
        outcome: str = "",
        detail: Optional[Dict[str, Any]] = None,
    ) -> None:
        entry: Dict[str, Any] = {
            "round": round_index,
            "kind": kind,
            "rule": incident.rule,
            "level": incident.level,
            "attempt": incident.attempts,
            "status": incident.status,
        }
        if action:
            entry["action"] = action
        if outcome:
            entry["outcome"] = outcome
        if detail:
            entry["detail"] = dict(detail)
        self._timeline.append(entry)

    def timeline(self) -> List[Dict[str, Any]]:
        """The remediation timeline as JSONL-ready plain dicts."""
        return [dict(entry) for entry in self._timeline]

    def active_incidents(self) -> List[Incident]:
        """Incidents whose alert is still firing, sorted by rule name."""
        return [self._active[rule] for rule in sorted(self._active)]

    def verdict(self) -> str:
        """``idle`` (nothing ever fired), ``active``, ``recovered``, or
        ``unrecoverable`` (some incident exhausted the ladder)."""
        if any(i.status == "unrecoverable" for i in self.incidents):
            return "unrecoverable"
        if self._active:
            return "active"
        if self.incidents:
            return "recovered"
        return "idle"

    def summary(self) -> Dict[str, Any]:
        """Plain-data view (scenario results / CLI reports)."""
        return {
            "verdict": self.verdict(),
            "incidents_total": len(self.incidents),
            "incidents_active": len(self._active),
            "actions_run": self.actions_run,
            "escalations": self.escalations,
            "incidents": [incident.to_dict() for incident in self.incidents],
        }
