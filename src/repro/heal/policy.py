"""Remediation policies: bounded, deterministic retry discipline.

Every remediation action is governed by a :class:`BackoffPolicy` — the
contract that keeps the closed loop from thrashing a degraded system:

- **bounded retries**: at most ``max_attempts`` applied actions per
  escalation level, and a hard per-incident ``budget`` across all levels;
- **deterministic jittered backoff**: the wait between attempts grows
  geometrically (``base_delay * factor**(attempt-1)``, capped at
  ``max_delay``) plus a jitter drawn from the *passed-in* seeded stream —
  simulated time is the round counter and every draw flows from
  :mod:`repro.sim.rng`, so two runs with the same seed retry at the same
  rounds (DET001/DET003 apply to this package);
- **cooldown hysteresis**: an alert re-firing within ``cooldown`` rounds of
  its incident's recovery is treated as the *same* degradation — the new
  incident resumes at the old escalation level instead of restarting the
  ladder from scratch (a flapping rule cannot buy itself infinite local
  retries).

Policies are frozen dataclasses: an engine shares one instance across
incidents without aliasing hazards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BackoffPolicy:
    """Retry/backoff parameters of one remediation action.

    Parameters
    ----------
    max_attempts:
        Applied actions allowed per escalation level before the incident
        climbs one rung.
    base_delay, factor, max_delay:
        Rounds to wait after the n-th applied attempt:
        ``min(max_delay, base_delay * factor**(n-1))``, rounded to an int.
    jitter:
        Upper bound (inclusive) of the uniform integer jitter added to
        each delay; 0 disables jitter.
    cooldown:
        Hysteresis window in rounds — see the module docstring — and the
        quiet period scheduled after a ``noop`` outcome.
    budget:
        Hard cap on applied actions per incident across *all* escalation
        levels; exhausting it escalates immediately.
    """

    max_attempts: int = 3
    base_delay: int = 2
    factor: float = 2.0
    max_delay: int = 16
    jitter: int = 1
    cooldown: int = 8
    budget: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 1:
            raise ConfigurationError(
                f"base_delay must be >= 1, got {self.base_delay}"
            )
        if self.factor < 1.0:
            raise ConfigurationError(f"factor must be >= 1.0, got {self.factor}")
        if self.max_delay < self.base_delay:
            raise ConfigurationError(
                f"max_delay ({self.max_delay}) must be >= base_delay "
                f"({self.base_delay})"
            )
        if self.jitter < 0:
            raise ConfigurationError(f"jitter must be >= 0, got {self.jitter}")
        if self.cooldown < 0:
            raise ConfigurationError(f"cooldown must be >= 0, got {self.cooldown}")
        if self.budget < self.max_attempts:
            raise ConfigurationError(
                f"budget ({self.budget}) must be >= max_attempts "
                f"({self.max_attempts})"
            )

    def delay(self, attempt: int, rng: random.Random) -> int:
        """Rounds to wait after the ``attempt``-th applied action (1-based).

        Deterministic given the rng state: the geometric schedule is pure
        arithmetic and the jitter is one bounded draw from the caller's
        seeded stream.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt is 1-based, got {attempt}")
        base = min(
            float(self.max_delay), self.base_delay * self.factor ** (attempt - 1)
        )
        jitter = rng.randint(0, self.jitter) if self.jitter else 0
        return int(base) + jitter

    def exhausted(self, attempts: int) -> bool:
        """Whether ``attempts`` applied actions exhaust this level."""
        return attempts >= self.max_attempts


#: Defaults used by the engine when an action declares no policy of its own.
DEFAULT_POLICY = BackoffPolicy()

#: Escalation actions are last resorts: one shot per level, long cooldown.
ESCALATION_POLICY = BackoffPolicy(
    max_attempts=2, base_delay=6, factor=2.0, max_delay=24, cooldown=12, budget=4
)
