"""Closed-loop recovery scenarios: managed vs unmanaged, by corruption mode.

Each scenario deploys the shared ring-of-rings substrate
(:func:`~repro.faults.scenarios.standard_deployment`), converges it
cleanly, injects one corruption mode from :mod:`repro.heal.harness`, and
measures **time-to-stabilize**: the convergence tracker is reset at the
moment of corruption, so the report's slowest layer round is exactly the
rounds the system needed to fully re-converge (``None`` when the budget
ran out first).

Every scenario runs in two flavors:

- **managed** — a :class:`~repro.heal.engine.RemediationEngine` closes the
  observe → decide → act loop; the result embeds its remediation timeline
  and verdict next to the health summary;
- **unmanaged** — same telemetry, no actuator: the differential baseline
  showing what the self-organizing layers can (and cannot) repair alone.

``run_heal_matrix`` pairs both flavors across every corruption mode;
``run_partition_churn`` is the compound end-to-end scenario (a real cut
plus a kill wave, with the built-in rendezvous disabled so only the
remediation engine can re-join the overlays); ``write_heal_bench`` lands
the stabilization numbers in ``BENCH_heal.json`` alongside the gossip
trajectory.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.faults.controls import Partition
from repro.faults.scenarios import standard_deployment
from repro.heal.engine import RemediationEngine
from repro.heal.harness import CORRUPTIONS, corruption_modes
from repro.obs import events as _events
from repro.obs.collector import Collector
from repro.obs.hooks import attach_health
from repro.obs.recovery import RecoveryObserver

#: Default corruption severity per mode (tuned so the unmanaged baseline
#: visibly fails or lags while staying within CI budgets).
DEFAULT_DEGREES: Dict[str, float] = {
    "segregated": 1.0,
    "poisoned": 1.0,
    "stale": 1.0,
}

#: Extra rounds run after re-convergence so firing alerts can clear and
#: open incidents can close before the verdict is read.
GRACE_ROUNDS = 6


@dataclass
class HealScenarioResult:
    """Outcome of one corruption scenario run (one flavor)."""

    mode: str
    degree: float
    managed: bool
    n_nodes: int
    seed: int
    deploy_rounds: Optional[int]
    corruption: Dict[str, Any]
    #: Rounds from corruption to full re-convergence (None: never, within
    #: the budget).
    stabilize_rounds: Optional[int]
    budget: int
    health: Dict[str, Any]
    #: Remediation engine summary (managed runs only).
    remediation: Optional[Dict[str, Any]] = None
    #: Remediation timeline, JSONL-ready (empty on unmanaged runs).
    timeline: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def converged(self) -> bool:
        return self.stabilize_rounds is not None

    @property
    def verdict(self) -> str:
        """``recovered``, ``degraded`` (budget ran out), or
        ``unrecoverable`` (the engine exhausted its escalation ladder)."""
        if (
            self.remediation is not None
            and self.remediation["verdict"] == "unrecoverable"
        ):
            return "unrecoverable"
        return "recovered" if self.converged else "degraded"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "degree": self.degree,
            "managed": self.managed,
            "nodes": self.n_nodes,
            "seed": self.seed,
            "deploy_rounds": self.deploy_rounds,
            "corruption": dict(self.corruption),
            "stabilize_rounds": self.stabilize_rounds,
            "budget": self.budget,
            "verdict": self.verdict,
            "alerts_fired": self.health.get("alerts_total", 0),
            "remediation": self.remediation,
        }


def _arm(deployment, collector: Collector):
    """Recovery observer + health monitor over an (inactive) fault plane.

    The plane stays fault-free unless the scenario installs controls, so
    arming it never perturbs the run; the recovery observer is what feeds
    the ``layers_converged`` and ``dead_descriptor_fraction`` gauges the
    health rules (and therefore the remediation engine) decide on.
    """
    plane = deployment.faults or deployment.install_faults()
    observer = RecoveryObserver.for_deployment(
        deployment, plane, instrument=collector
    )
    deployment.engine.add_observer(observer)
    deployment.recovery = observer  # type: ignore[attr-defined]
    monitor = attach_health(deployment, collector)
    return plane, observer, monitor


def run_heal_scenario(
    mode: str,
    n_nodes: int = 64,
    seed: int = 7,
    degree: Optional[float] = None,
    budget: int = 80,
    managed: bool = True,
    converge_rounds: int = 120,
    collector: Optional[Collector] = None,
) -> HealScenarioResult:
    """Converge, corrupt with ``mode``, and measure time-to-stabilize."""
    if mode not in CORRUPTIONS:
        raise ConfigurationError(
            f"unknown corruption mode {mode!r}; pick one of "
            f"{', '.join(corruption_modes())}"
        )
    if degree is None:
        degree = DEFAULT_DEGREES[mode]
    if collector is None:
        collector = Collector()
    deployment = standard_deployment(n_nodes, seed, collector=collector)
    deploy_rounds = deployment.run_until_converged(converge_rounds).slowest
    plane, _, monitor = _arm(deployment, collector)
    engine = (
        RemediationEngine.for_deployment(deployment, monitor) if managed else None
    )
    rng = deployment.streams.fork("heal").stream("corruption", mode)
    info = CORRUPTIONS[mode](deployment, rng, degree)
    plane.record_event(
        deployment.engine.round, "corruption", f"mode={mode} degree={degree}"
    )
    collector.emit(
        _events.EVENT_CORRUPTION,
        **{key: value for key, value in info.items() if key != "mode"},
        mode=mode,
        flavor="managed" if managed else "unmanaged",
    )
    deployment.tracker.reset()
    report = deployment.run_until_converged(budget)
    if report.converged:
        deployment.run(GRACE_ROUNDS)
    return HealScenarioResult(
        mode=mode,
        degree=degree,
        managed=managed,
        n_nodes=n_nodes,
        seed=seed,
        deploy_rounds=deploy_rounds,
        corruption=info,
        stabilize_rounds=report.slowest,
        budget=budget,
        health=monitor.summary(),
        remediation=engine.summary() if engine is not None else None,
        timeline=engine.timeline() if engine is not None else [],
    )


def run_partition_churn(
    n_nodes: int = 64,
    seed: int = 7,
    window: int = 12,
    kills: int = 8,
    budget: int = 100,
    collector: Optional[Collector] = None,
) -> HealScenarioResult:
    """The compound end-to-end scenario: a real cut plus a kill wave.

    The partition control runs with ``rendezvous=0`` — the built-in heal
    path clears the cut but deliberately re-seeds nothing, so the two
    segregated overlays can only be re-joined by the remediation engine
    (whose rendezvous re-seed *defers* while the cut is active, then
    applies once it clears). The mid-cut kill wave adds a churn spike and
    dead-descriptor debris on top. Always managed.
    """
    if collector is None:
        collector = Collector()
    deployment = standard_deployment(n_nodes, seed, collector=collector)
    deploy_rounds = deployment.run_until_converged(120).slowest
    plane, _, monitor = _arm(deployment, collector)
    engine = RemediationEngine.for_deployment(deployment, monitor)
    start = deployment.engine.round
    deployment.engine.add_control(
        Partition(
            plane,
            at_round=start,
            heal_round=start + window,
            islands=2,
            rng=deployment.streams.fork("faults").stream("partition"),
            rendezvous=0,
        )
    )
    deployment.tracker.reset()
    deployment.run(2)
    rng = deployment.streams.fork("heal").stream("churn-wave")
    alive = deployment.network.alive_ids()
    victims = sorted(rng.sample(alive, min(kills, max(0, len(alive) - 8))))
    for victim in victims:
        deployment.network.kill(victim)
    plane.record_event(
        deployment.engine.round, "catastrophe", f"killed={len(victims)}"
    )
    deployment.run(max(0, window - 2))
    report = deployment.run_until_converged(budget)
    if report.converged:
        deployment.run(GRACE_ROUNDS)
    return HealScenarioResult(
        mode="partition-churn",
        degree=1.0,
        managed=True,
        n_nodes=n_nodes,
        seed=seed,
        deploy_rounds=deploy_rounds,
        corruption={
            "mode": "partition-churn",
            "window": window,
            "killed": len(victims),
        },
        stabilize_rounds=report.slowest,
        budget=budget,
        health=monitor.summary(),
        remediation=engine.summary(),
        timeline=engine.timeline(),
    )


def run_heal_matrix(
    n_nodes: int = 64,
    seed: int = 7,
    budget: int = 80,
    degrees: Optional[Dict[str, float]] = None,
) -> List[Dict[str, Any]]:
    """Managed vs unmanaged across every corruption mode.

    Returns one entry per mode: ``{"mode", "degree", "managed",
    "unmanaged"}`` with both :class:`HealScenarioResult` flavors. Each run
    gets a fresh collector — health-rule state is windowed and must not
    leak across runs.
    """
    entries: List[Dict[str, Any]] = []
    for mode in corruption_modes():
        degree = (degrees or {}).get(mode, DEFAULT_DEGREES[mode])
        entries.append(
            {
                "mode": mode,
                "degree": degree,
                "managed": run_heal_scenario(
                    mode, n_nodes=n_nodes, seed=seed, degree=degree,
                    budget=budget, managed=True,
                ),
                "unmanaged": run_heal_scenario(
                    mode, n_nodes=n_nodes, seed=seed, degree=degree,
                    budget=budget, managed=False,
                ),
            }
        )
    return entries


def run_degree_sweep(
    mode: str,
    degrees: Optional[List[float]] = None,
    n_nodes: int = 64,
    seed: int = 7,
    budget: int = 80,
) -> List[HealScenarioResult]:
    """Time-to-stabilize vs corruption degree (managed runs)."""
    if degrees is None:
        degrees = [0.25, 0.5, 0.75, 1.0]
    return [
        run_heal_scenario(
            mode, n_nodes=n_nodes, seed=seed, degree=degree, budget=budget
        )
        for degree in degrees
    ]


def write_heal_bench(
    entries: List[Dict[str, Any]], json_path: str = "BENCH_heal.json"
) -> str:
    """Write the matrix stabilization numbers as JSON; returns the path.

    Lands alongside ``BENCH_gossip.json``: the gossip trajectory answers
    "how fast is a round", this file answers "how fast does a corrupted
    system come back".
    """
    payload = {
        "benchmark": "heal",
        "entries": [
            {
                "mode": entry["mode"],
                "degree": entry["degree"],
                "nodes": entry["managed"].n_nodes,
                "seed": entry["managed"].seed,
                "budget": entry["managed"].budget,
                "managed": entry["managed"].to_dict(),
                "unmanaged": entry["unmanaged"].to_dict(),
            }
            for entry in entries
        ],
    }
    path = pathlib.Path(json_path)
    if path.parent != pathlib.Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return str(path)


def format_heal_scenario(result: HealScenarioResult) -> str:
    """Human-readable report for one scenario run."""
    flavor = "managed" if result.managed else "unmanaged"
    out = [
        f"heal {result.mode} ({flavor}): nodes={result.n_nodes} "
        f"seed={result.seed} degree={result.degree} "
        f"(deployed in {result.deploy_rounds} rounds)",
        "time-to-stabilize: "
        + (
            f"{result.stabilize_rounds} rounds"
            if result.stabilize_rounds is not None
            else f"NOT STABILIZED within {result.budget} rounds"
        ),
    ]
    alerts = result.health.get("alerts", [])
    if alerts:
        fired = ", ".join(
            f"{alert['rule']}@r{alert['round_fired']}"
            + (
                ""
                if alert["round_cleared"] is None
                else f" (cleared r{alert['round_cleared']})"
            )
            for alert in alerts
        )
        out.append(f"alerts: {fired}")
    if result.remediation is not None:
        summary = result.remediation
        out.append(
            f"remediation: {summary['verdict']} "
            f"({summary['incidents_total']} incident(s), "
            f"{summary['actions_run']} action(s), "
            f"{summary['escalations']} escalation(s))"
        )
        for entry in result.timeline:
            if entry["kind"] != "remediation":
                continue
            detail = entry.get("detail", {})
            rendered = " ".join(
                f"{key}={detail[key]}" for key in sorted(detail)
            )
            out.append(
                f"  r{entry['round']}: {entry['rule']} -> {entry['action']} "
                f"[L{entry['level']} a{entry['attempt']}] {entry['outcome']}"
                + (f" ({rendered})" if rendered else "")
            )
    out.append(f"verdict: {result.verdict}")
    return "\n".join(out)


def format_heal_matrix(entries: List[Dict[str, Any]]) -> str:
    """Side-by-side managed/unmanaged stabilization table."""
    out = ["mode        degree  managed     unmanaged   speedup"]
    for entry in entries:
        managed = entry["managed"]
        unmanaged = entry["unmanaged"]

        def cell(result: HealScenarioResult) -> str:
            if result.stabilize_rounds is None:
                return f">{result.budget}"
            return str(result.stabilize_rounds)

        if managed.stabilize_rounds is None:
            speedup = "-"
        elif unmanaged.stabilize_rounds is None:
            speedup = f">{unmanaged.budget / max(1, managed.stabilize_rounds):.1f}x"
        else:
            speedup = (
                f"{unmanaged.stabilize_rounds / max(1, managed.stabilize_rounds):.1f}x"
            )
        out.append(
            f"{entry['mode']:<11} {entry['degree']:<7} "
            f"{cell(managed):<11} {cell(unmanaged):<11} {speedup}"
        )
    return "\n".join(out)
