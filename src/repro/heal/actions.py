"""The remediation action library — the *act* side of the closed loop.

Each :class:`RemediationAction` maps one class of health alert to a concrete
repair over a live :class:`~repro.core.runtime.Deployment`:

==========================  ===================================================
action                      repairs
==========================  ===================================================
:class:`RendezvousReseed`   overlay segregation — detects the weakly-connected
                            components of the peer-sampling knowledge graph
                            and injects cross-group rendezvous contacts
                            (the same primitive :class:`~repro.faults.controls.
                            Partition` uses at heal time)
:class:`SelectorReweight`   degree skew — raises the healer share of the
                            gossip selection policy and runs one targeted
                            healer wave (drop the oldest entry) on the
                            skewed layer
:class:`ElasticAdjust`      churn spikes — re-runs the role assignment over
                            the live population (elastic replica adjustment)
                            and re-bootstraps starved peer-sampling views
:class:`TombstonePurge`     dead-descriptor buildup — purges every view entry
                            pointing at a dead or forged node (leaving
                            tombstones against resurrection), then re-seeds
                            the views it starved
:class:`ComponentReseed`    everything else — the escalation rung: global
                            peer-sampling re-bootstrap plus a purge and an
                            elastic rebalance (component-level re-seed)
==========================  ===================================================

Every action returns a JSON-able result dict whose ``outcome`` obeys a
three-way protocol the engine's retry accounting relies on:

- ``"applied"`` — state was changed; burns a retry attempt and counts
  against the incident's action budget;
- ``"noop"`` — the action found nothing to repair (e.g. the overlay graph
  is already connected); burns an attempt (so an incident whose mapped
  action cannot help still escalates in bounded time) but not budget;
- ``"deferred"`` — repairing now is futile (e.g. re-seeding across a still
  active partition cut); free — the engine retries next round.

Actions draw randomness only from the rng handed in by the engine (a
``streams.fork("heal")`` stream), never from module state, and iterate in
sorted id order — this package is under the DET linter's ordering rules.

The module also exposes the pure view-level primitives the actions are
built from (:func:`purge_dead`, :func:`seed_view`,
:func:`overlay_components`); the property-based tests drive these directly
to show every remediation preserves the :class:`~repro.gossip.views.
PartialView` invariants.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.core.reconfigure import elastic_rebalance
from repro.faults.controls import rendezvous_reseed
from repro.gossip.descriptors import Descriptor
from repro.gossip.views import PartialView
from repro.heal.policy import BackoffPolicy, DEFAULT_POLICY, ESCALATION_POLICY
from repro.metrics.recovery import DEFAULT_VIEW_LAYERS, dead_view_ids
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Deployment
    from repro.obs.health import Alert

#: The three legal ``outcome`` values of an action result.
OUTCOMES = ("applied", "noop", "deferred")


# -- pure view-level primitives -------------------------------------------------


def purge_dead(view: PartialView, dead_ids: Sequence[int]) -> int:
    """Purge ``dead_ids`` from ``view``, leaving tombstones; returns count.

    Pure and idempotent: purging an absent id still records the tombstone
    but changes no live entry, and re-purging is a no-op. Never violates a
    view invariant (capacity, uniqueness) — it only removes.
    """
    purged = 0
    for dead in sorted(set(dead_ids)):
        if view.get(dead) is not None:
            purged += 1
        view.purge(dead)
    return purged


def seed_view(view: PartialView, contact_ids: Sequence[int]) -> int:
    """Insert fresh (age 0) descriptors for ``contact_ids``; returns count.

    Age-0 insertion lifts tombstones by design (a fresh descriptor is
    first-hand evidence of life) and respects capacity — a full view
    evicts to make room rather than overflowing. ``insert`` alone rejects
    age ties (a full view of age-0 entries would refuse an age-0 contact),
    but seeded contacts are first-hand evidence while resident entries are
    hearsay, so the tie goes to the contact: evict the oldest non-contact
    bystander (ties broken by highest id) and insert anyway. Contacts only
    ever displace bystanders — once the view is all contacts, the
    remainder are dropped.
    """
    seeded = 0
    contact_set = set(contact_ids)
    for contact in contact_ids:
        if view.insert(Descriptor(contact, age=0, profile=None)):
            seeded += 1
            continue
        if contact in view or not view.is_full():
            continue
        bystanders = [
            d for d in view.descriptors() if d.node_id not in contact_set
        ]
        if not bystanders:
            continue
        victim = max(bystanders, key=lambda d: (d.age, d.node_id))
        view.remove(victim.node_id)
        if view.insert(Descriptor(contact, age=0, profile=None)):
            seeded += 1
    return seeded


def overlay_components(
    network: Network, layer: str = "peer_sampling"
) -> List[List[int]]:
    """Weakly-connected components of ``layer``'s union knowledge graph.

    Nodes are the live population running ``layer``; an (undirected) edge
    joins a node to every live peer its view references. More than one
    component means the overlay is segregated: gossip alone can never
    bridge disjoint knowledge graphs, which is exactly the condition
    :class:`RendezvousReseed` repairs. Traversal is over sorted ids, so
    the component list is deterministic.
    """
    adjacency: Dict[int, set] = {}
    for node_id in network.alive_ids():
        node = network.node(node_id)
        if not node.has_protocol(layer):
            continue
        adjacency.setdefault(node_id, set())
        for peer_id in node.protocol(layer).neighbors():
            if peer_id == node_id or not network.is_alive(peer_id):
                continue
            adjacency[node_id].add(peer_id)
            adjacency.setdefault(peer_id, set()).add(node_id)
    components: List[List[int]] = []
    visited: set = set()
    for start in sorted(adjacency):
        if start in visited:
            continue
        stack = [start]
        visited.add(start)
        members: List[int] = []
        while stack:
            current = stack.pop()
            members.append(current)
            for neighbor in sorted(adjacency[current]):
                if neighbor not in visited:
                    visited.add(neighbor)
                    stack.append(neighbor)
        components.append(sorted(members))
    return components


def _view_of(node, layer: str) -> Optional[PartialView]:
    """The protocol's PartialView when it has one (UO2 keeps buckets)."""
    if not node.has_protocol(layer):
        return None
    view = getattr(node.protocol(layer), "view", None)
    return view if isinstance(view, PartialView) else None


# -- action protocol ------------------------------------------------------------


class RemediationAction:
    """Base of every remediation action.

    Subclasses implement :meth:`apply`, mutating the deployment and
    returning a result dict with an ``outcome`` key (see the module
    docstring for the protocol). ``policy`` governs the engine's retry
    accounting for incidents this action serves.
    """

    name = "remediation_action"
    policy: BackoffPolicy = DEFAULT_POLICY

    def apply(
        self,
        deployment: "Deployment",
        alert: Optional["Alert"],
        round_index: int,
        rng: random.Random,
    ) -> Dict[str, Any]:
        raise NotImplementedError


class RendezvousReseed(RemediationAction):
    """Re-join a segregated overlay via cross-group rendezvous contacts.

    Detects the weakly-connected components of the peer-sampling knowledge
    graph; with two or more, injects ``per_group`` fresh cross-group
    contacts per component through the shared
    :func:`~repro.faults.controls.rendezvous_reseed` primitive (the same
    heal path the partition control uses, so repeated invocation is safe).
    Defers while a partition cut is still active — seeding across a cut is
    futile because the plane drops the resulting exchanges.
    """

    name = "rendezvous_reseed"
    policy = BackoffPolicy(
        max_attempts=3, base_delay=4, factor=2.0, max_delay=16, cooldown=8, budget=8
    )

    def __init__(self, per_group: int = 4, layer: str = "peer_sampling"):
        self.per_group = per_group
        self.layer = layer

    def apply(self, deployment, alert, round_index, rng):
        plane = deployment.faults
        if plane is not None and plane.partition_active:
            return {"outcome": "deferred", "reason": "partition cut still active"}
        groups = overlay_components(deployment.network, self.layer)
        if len(groups) < 2:
            return {"outcome": "noop", "components": len(groups)}
        seeded = rendezvous_reseed(
            deployment.network,
            groups,
            rng,
            per_group=self.per_group,
            layer=self.layer,
        )
        return {
            "outcome": "applied",
            "components": len(groups),
            "seeded": seeded,
        }


class SelectorReweight(RemediationAction):
    """Counter degree skew: raise the healer share, run one healer wave.

    A larger healer *H* makes every select step discard its oldest entries
    first — old entries are both the likely-dead ones and the ones that
    concentrate onto hubs. The one-shot healer wave (drop the oldest entry
    of the skewed layer's view on every node) gives the re-weighted policy
    a head start.
    """

    name = "selector_reweight"
    policy = BackoffPolicy(
        max_attempts=2, base_delay=6, factor=2.0, max_delay=16, cooldown=10, budget=4
    )

    def __init__(self, healer_bump: int = 3):
        self.healer_bump = healer_bump

    def apply(self, deployment, alert, round_index, rng):
        skewed_layer = ""
        if alert is not None:
            skewed_layer = str(alert.evidence.get("layer", ""))
        network = deployment.network
        adjusted = 0
        waved = 0
        for node_id in network.alive_ids():
            node = network.node(node_id)
            for layer in ("peer_sampling", "uo1"):
                if not node.has_protocol(layer):
                    continue
                protocol = node.protocol(layer)
                reweight = getattr(protocol, "reweight", None)
                if reweight is None:
                    continue
                before = protocol.params
                after = reweight(healer=before.healer + self.healer_bump)
                if after != before:
                    adjusted += 1
            view = _view_of(node, skewed_layer)
            if view is not None and len(view) > 1:
                view.drop_oldest(1)
                waved += 1
        if adjusted == 0 and waved == 0:
            return {"outcome": "noop"}
        return {
            "outcome": "applied",
            "protocols_reweighted": adjusted,
            "healer_wave": waved,
        }


class ElasticAdjust(RemediationAction):
    """Absorb a churn spike: elastic role rebalance + view re-bootstrap.

    Re-runs the assignment rule over the live population (crashed nodes
    lose their roles; survivors and spares absorb the vacated ranks) via
    :func:`~repro.core.reconfigure.elastic_rebalance`, then re-bootstraps
    any peer-sampling view the failure wave left starved below half
    capacity.
    """

    name = "elastic_adjust"
    policy = BackoffPolicy(
        max_attempts=3, base_delay=3, factor=2.0, max_delay=12, cooldown=8, budget=6
    )

    def apply(self, deployment, alert, round_index, rng):
        moves = elastic_rebalance(deployment)
        network = deployment.network
        reseeded = 0
        for node_id in network.alive_ids():
            node = network.node(node_id)
            if not node.has_protocol("peer_sampling"):
                continue
            protocol = node.protocol("peer_sampling")
            if len(protocol.view) < protocol.params.view_size // 2:
                protocol.bootstrap(rng, network, protocol.params.gossip_size)
                reseeded += 1
        if moves["roles_moved"] == 0 and reseeded == 0:
            return {"outcome": "noop", "population": moves["population"]}
        return {
            "outcome": "applied",
            "population": moves["population"],
            "roles_moved": moves["roles_moved"],
            "views_reseeded": reseeded,
        }


class TombstonePurge(RemediationAction):
    """Flush dead knowledge in one act: purge offenders, re-seed survivors.

    Uses :func:`~repro.metrics.recovery.dead_view_ids` as the targeting
    map — every live node's view entries pointing at dead (or unknown,
    i.e. forged) nodes — purges them with tombstones so stale third-party
    copies cannot resurrect them, then re-seeds any view the purge left
    starved below half capacity with fresh live contacts.
    """

    name = "tombstone_purge"
    policy = BackoffPolicy(
        max_attempts=3, base_delay=3, factor=2.0, max_delay=12, cooldown=6, budget=8
    )

    def __init__(self, layers: Sequence[str] = DEFAULT_VIEW_LAYERS):
        self.layers = tuple(layers)

    def apply(self, deployment, alert, round_index, rng):
        network = deployment.network
        stale = dead_view_ids(network, self.layers)
        purged = 0
        reseeded = 0
        for node_id in sorted(stale):
            node = network.node(node_id)
            for layer in self.layers:
                view = _view_of(node, layer)
                if view is None:
                    continue
                purged += purge_dead(view, stale[node_id])
                protocol = node.protocol(layer)
                capacity = getattr(
                    getattr(protocol, "params", None), "view_size", view.capacity
                )
                if layer == "peer_sampling" and len(view) < capacity // 2:
                    protocol.bootstrap(rng, network, protocol.params.gossip_size)
                    reseeded += 1
        if purged == 0:
            return {"outcome": "noop"}
        return {
            "outcome": "applied",
            "nodes_affected": len(stale),
            "entries_purged": purged,
            "views_reseeded": reseeded,
        }


class ComponentReseed(RemediationAction):
    """The escalation rung: component-level re-seed of the whole substrate.

    When a local action cannot close its incident, re-seed globally:
    purge every dead view entry, re-bootstrap every live node's
    peer-sampling view through the membership oracle, and re-run the role
    assignment. Expensive and disruptive by design — the engine only
    reaches for it after a local action exhausts its retry policy.
    """

    name = "component_reseed"
    policy = ESCALATION_POLICY

    def apply(self, deployment, alert, round_index, rng):
        network = deployment.network
        stale = dead_view_ids(network)
        purged = 0
        for node_id in sorted(stale):
            node = network.node(node_id)
            for layer in DEFAULT_VIEW_LAYERS:
                view = _view_of(node, layer)
                if view is not None:
                    purged += purge_dead(view, stale[node_id])
        bootstrapped = 0
        for node_id in network.alive_ids():
            node = network.node(node_id)
            if not node.has_protocol("peer_sampling"):
                continue
            node.protocol("peer_sampling").bootstrap(rng, network)
            bootstrapped += 1
        moves = elastic_rebalance(deployment)
        return {
            "outcome": "applied",
            "entries_purged": purged,
            "views_bootstrapped": bootstrapped,
            "roles_moved": moves["roles_moved"],
        }


def default_actions() -> Dict[str, RemediationAction]:
    """The standard alert-rule → action mapping of the remediation engine.

    Both partition suspicion and stalled convergence map to the rendezvous
    re-seed: a pure view segregation (no physical cut) starves convergence
    without starving UO2's buckets, so the stall rule is the detector that
    actually fires on corrupted-state starts.
    """
    reseed = RendezvousReseed()
    return {
        "partition_suspicion": reseed,
        "stalled_convergence": reseed,
        "degree_skew": SelectorReweight(),
        "churn_spike": ElasticAdjust(),
        "dead_descriptor_buildup": TombstonePurge(),
    }
