"""repro.heal — autonomic self-healing: observe → decide → act, closed.

The observability subsystem watches (collector, health rules); this package
*acts*: a :class:`~repro.heal.engine.RemediationEngine` subscribes to
health-alert transitions, maps each typed alert to a remediation action
under a bounded, deterministic retry policy, and escalates — local action →
component re-seed → ``unrecoverable`` — when local repair cannot close the
incident. The adversarial harness and scenario matrix quantify the loop:
corrupted-state starts, managed vs unmanaged, time-to-stabilize vs
corruption degree.

Everything here obeys the determinism discipline (the DET linter covers
``heal/``): no wall clock, no module-level RNG — every draw flows from the
deployment's ``streams.fork("heal")`` seed space.
"""

from typing import TYPE_CHECKING

# Heavy imports stay lazy (PEP 562) so `import repro.heal` costs nothing
# until a symbol is touched — same idiom as repro.obs.
_EXPORTS = {
    "BackoffPolicy": "repro.heal.policy",
    "DEFAULT_POLICY": "repro.heal.policy",
    "RemediationAction": "repro.heal.actions",
    "RendezvousReseed": "repro.heal.actions",
    "SelectorReweight": "repro.heal.actions",
    "ElasticAdjust": "repro.heal.actions",
    "TombstonePurge": "repro.heal.actions",
    "ComponentReseed": "repro.heal.actions",
    "default_actions": "repro.heal.actions",
    "overlay_components": "repro.heal.actions",
    "purge_dead": "repro.heal.actions",
    "seed_view": "repro.heal.actions",
    "Incident": "repro.heal.engine",
    "RemediationEngine": "repro.heal.engine",
    "CORRUPTIONS": "repro.heal.harness",
    "corruption_modes": "repro.heal.harness",
    "corrupt_segregated": "repro.heal.harness",
    "corrupt_poisoned": "repro.heal.harness",
    "corrupt_stale": "repro.heal.harness",
    "HealScenarioResult": "repro.heal.scenarios",
    "run_heal_scenario": "repro.heal.scenarios",
    "run_heal_matrix": "repro.heal.scenarios",
    "run_partition_churn": "repro.heal.scenarios",
    "run_degree_sweep": "repro.heal.scenarios",
    "write_heal_bench": "repro.heal.scenarios",
    "format_heal_scenario": "repro.heal.scenarios",
    "format_heal_matrix": "repro.heal.scenarios",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from repro.heal.actions import (  # noqa: F401
        ComponentReseed,
        ElasticAdjust,
        RemediationAction,
        RendezvousReseed,
        SelectorReweight,
        TombstonePurge,
        default_actions,
        overlay_components,
        purge_dead,
        seed_view,
    )
    from repro.heal.engine import Incident, RemediationEngine  # noqa: F401
    from repro.heal.harness import (  # noqa: F401
        CORRUPTIONS,
        corrupt_poisoned,
        corrupt_segregated,
        corrupt_stale,
        corruption_modes,
    )
    from repro.heal.policy import BackoffPolicy, DEFAULT_POLICY  # noqa: F401
    from repro.heal.scenarios import (  # noqa: F401
        HealScenarioResult,
        format_heal_matrix,
        format_heal_scenario,
        run_degree_sweep,
        run_heal_matrix,
        run_heal_scenario,
        run_partition_churn,
        write_heal_bench,
    )


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.heal' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value  # cache for the next access
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
