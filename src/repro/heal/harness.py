"""Adversarial-state generators: start the overlay from corrupted views.

The fault matrix (:mod:`repro.faults.scenarios`) injects *environmental*
failures — cuts, kills, pauses — and the self-organizing layers absorb
those well: gossip hygiene (tombstones, oldest-first purging, oracle
re-bootstrap on empty views) flushes localized damage in a handful of
rounds without help. What unmanaged gossip **cannot** repair is damage to
the knowledge graph's connectivity: two overlays whose views reference
disjoint node sets have no epidemic path back to each other, ever. The
generators here therefore model the corrupted-state starts a long-lived
system actually needs intervention for — each disconnects the overlay a
different way and leaves different debris for the health rules to see:

- :func:`corrupt_segregated` — every cross-group view entry is dropped
  with probability ``degree``: at 1.0 the knowledge graph splits into two
  fully disjoint overlays (a replay/restore bug; there is no physical cut
  — the network is fine, only the views are wrong). Thin views, no junk:
  only the convergence stall gives it away.
- :func:`corrupt_poisoned` — the eclipse attack: cross-group entries in
  the gossip substrates are *replaced* by forged sybil descriptors (nodes
  that do not exist), planted fresh at age 0, plus a side helping of
  in-group junk. Views stay full — of poison. Fires the dead-descriptor
  buildup on top of the stall; repair needs a purge *and* a re-join.
- :func:`corrupt_stale` — the stale-backup restore: a correlated kill
  wave, the corpses re-advertised at age 0 into the survivors' views, and
  the surviving views rolled back to a pre-merge epoch in which the two
  halves of the system did not yet know each other. Fires the churn
  spike, the buildup, and the stall; repair composes the elastic
  rebalance, the purge, and the re-join.

Each generator mutates a converged deployment in place, drawing only from
the passed-in seeded stream (iteration is in sorted id order, so the
corruption is a pure function of (deployment, seed, degree)), and returns
a JSON-able description of what it injected. ``degree`` scales corruption
severity in ``[0, 1]``; the scenario runner sweeps it to chart
time-to-stabilize against corruption severity.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Set, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.gossip.descriptors import Descriptor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Deployment

#: Forged node ids start here — far above any real population, so
#: ``network.is_alive`` is False and every consumer's liveness guard holds.
FORGED_ID_BASE = 10_000_000

#: View-bearing layers the generators corrupt (UO2 keeps per-component
#: buckets instead of one view and is handled separately).
_VIEW_LAYERS = ("peer_sampling", "uo1", "core")


def _check_degree(degree: float) -> None:
    if not 0.0 <= degree <= 1.0:
        raise ConfigurationError(f"degree must be in [0, 1], got {degree}")


def _split_groups(rng: random.Random, live: List[int]) -> Set[int]:
    """One random half of ``live`` — the segregation boundary."""
    shuffled = rng.sample(live, len(live))
    return set(shuffled[: len(shuffled) // 2])


def _cross_predicate(
    group_a: Set[int], member: bool, rng: random.Random, degree: float
) -> Callable[[Descriptor], bool]:
    """True (with probability ``degree``) for entries crossing the split."""

    def predicate(descriptor: Descriptor) -> bool:
        if (descriptor.node_id in group_a) == member:
            return False  # same side of the split
        return rng.random() < degree

    return predicate


def _drop_cross(
    deployment: "Deployment",
    live: List[int],
    group_a: Set[int],
    rng: random.Random,
    degree: float,
    layers: tuple = _VIEW_LAYERS,
    buckets: bool = True,
) -> int:
    """Drop cross-group entries from views (and UO2 buckets); returns count."""
    network = deployment.network
    dropped = 0
    for node_id in live:
        node = network.node(node_id)
        member = node_id in group_a
        for layer in layers:
            if node.has_protocol(layer):
                dropped += node.protocol(layer).view.discard_where(
                    _cross_predicate(group_a, member, rng, degree)
                )
        if buckets and node.has_protocol("uo2"):
            table = node.protocol("uo2").buckets
            for component in sorted(table):
                dropped += table[component].discard_where(
                    _cross_predicate(group_a, member, rng, degree)
                )
    return dropped


def corrupt_segregated(
    deployment: "Deployment", rng: random.Random, degree: float = 1.0
) -> Dict[str, Any]:
    """Split the overlay's knowledge into two groups, dropping cross links.

    The population is cut into two random halves; every view entry (and
    UO2 bucket entry) crossing the halves is dropped with probability
    ``degree``. At 1.0 the two knowledge graphs are fully disjoint: no
    discovery channel (gossip, harvesting) can cross, and — because every
    node still holds live same-group entries — the empty-view oracle
    re-bootstrap never triggers either. An unmanaged overlay stays
    segregated forever; re-joining requires the rendezvous re-seed of the
    remediation engine.
    """
    _check_degree(degree)
    live = deployment.network.alive_ids()
    group_a = _split_groups(rng, live)
    dropped = _drop_cross(deployment, live, group_a, rng, degree)
    return {
        "mode": "segregated",
        "degree": degree,
        "groups": [len(group_a), len(live) - len(group_a)],
        "entries_dropped": dropped,
    }


def corrupt_poisoned(
    deployment: "Deployment", rng: random.Random, degree: float = 1.0
) -> Dict[str, Any]:
    """Eclipse the overlay: cross-group entries become forged sybils.

    In the gossip substrates (peer sampling, UO1) every cross-group entry
    is *replaced* — with probability ``degree`` — by a forged descriptor
    of a node that does not exist, planted at age 0 so the oldest-first
    hygiene flushes it last. The structural layers (core, UO2) lose their
    cross-group entries outright. Only cross entries are touched: each
    view keeps its live in-group stock, so no view ever purges down to
    empty and the membership-oracle re-bootstrap (a node's last-resort
    rejoin path) never fires — which is exactly what makes the eclipse
    stick. Views stay full — of poison: at 1.0 every real path between
    the halves is gone and roughly half of each gossip view points at
    phantoms.
    """
    _check_degree(degree)
    network = deployment.network
    live = network.alive_ids()
    group_a = _split_groups(rng, live)
    forged = 0
    for node_id in live:
        node = network.node(node_id)
        member = node_id in group_a
        for layer in ("peer_sampling", "uo1"):
            if not node.has_protocol(layer):
                continue
            protocol = node.protocol(layer)
            view = protocol.view
            profile = getattr(protocol, "profile", None)
            cross = _cross_predicate(group_a, member, rng, degree)
            victims = [
                descriptor.node_id
                for descriptor in view.descriptors()
                if cross(descriptor)
            ]
            for victim in victims:
                view.remove(victim)
                view.insert(
                    Descriptor(FORGED_ID_BASE + forged, age=0, profile=profile)
                )
                forged += 1
    dropped = _drop_cross(
        deployment, live, group_a, rng, degree, layers=("core",), buckets=True
    )
    return {
        "mode": "poisoned",
        "degree": degree,
        "groups": [len(group_a), len(live) - len(group_a)],
        "forged": forged,
        "entries_dropped": dropped,
    }


def corrupt_stale(
    deployment: "Deployment", rng: random.Random, degree: float = 1.0
) -> Dict[str, Any]:
    """Restore from a stale backup: corpses look fresh, the merge is undone.

    Three correlated injuries, all scaled by ``degree``:

    - a kill wave takes out ``0.3 * degree`` of the live population;
    - the corpses are re-advertised at age 0 into the survivors'
      peer-sampling views (dead knowledge presented as brand new);
    - the survivors' views are rolled back to a pre-merge epoch: entries
      crossing a random halving of the survivors are dropped, as if the
      restored state predates the two halves ever meeting.

    Unmanaged, the corpses flush but the halves stay strangers and the
    vacated roles stay vacant; the managed loop composes all three
    repairs (purge, elastic rebalance, rendezvous re-seed).
    """
    _check_degree(degree)
    network = deployment.network
    live = network.alive_ids()
    n_kill = min(int(len(live) * 0.3 * degree), max(0, len(live) - 8))
    victims = sorted(rng.sample(live, n_kill))
    for victim in victims:
        network.kill(victim)
    survivors = network.alive_ids()
    flooded = 0
    if victims:
        for node_id in survivors:
            node = network.node(node_id)
            if not node.has_protocol("peer_sampling"):
                continue
            protocol = node.protocol("peer_sampling")
            corpses = rng.sample(
                victims, min(protocol.params.gossip_size, len(victims))
            )
            for corpse in corpses:
                if protocol.view.insert(Descriptor(corpse, age=0, profile=None)):
                    flooded += 1
    group_a = _split_groups(rng, survivors)
    dropped = _drop_cross(deployment, survivors, group_a, rng, degree)
    # A survivor whose restored view holds no live entry at all would,
    # once hygiene purges the corpses, empty out and be rescued for free
    # by the membership oracle's re-bootstrap. A real stale backup still
    # knows *some* live same-side peer; anchor one so the islands stay
    # islands and the re-join is the engine's to make.
    anchors = 0
    group_b = set(survivors) - group_a
    for node_id in survivors:
        node = network.node(node_id)
        if not node.has_protocol("peer_sampling"):
            continue
        view = node.protocol("peer_sampling").view
        if any(network.is_alive(d.node_id) for d in view.descriptors()):
            continue
        mates = sorted(
            (group_a if node_id in group_a else group_b) - {node_id}
        )
        if not mates:
            continue
        if len(view) >= view.capacity:
            view.remove(max(view.ids()))  # make room: drop one corpse
        if view.insert(Descriptor(rng.choice(mates), age=0, profile=None)):
            anchors += 1
    return {
        "mode": "stale",
        "degree": degree,
        "killed": len(victims),
        "corpses_flooded": flooded,
        "groups": [len(group_a), len(survivors) - len(group_a)],
        "entries_dropped": dropped,
        "anchors_seeded": anchors,
    }


#: Corruption registry: mode name -> generator(deployment, rng, degree).
CORRUPTIONS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "segregated": corrupt_segregated,
    "poisoned": corrupt_poisoned,
    "stale": corrupt_stale,
}


def corruption_modes() -> List[str]:
    """Every corruption mode, sorted (CLI choices / matrix order)."""
    return sorted(CORRUPTIONS)
