"""Measurement utilities: statistics over seeds, bandwidth series, tables.

The paper averages every measure over 25 runs and computes 90% confidence
intervals; :mod:`~repro.metrics.stats` provides exactly that aggregation.
:mod:`~repro.metrics.bandwidth` extracts the Fig. 4 byte series from a
deployment's transport, :mod:`~repro.metrics.report` renders the ASCII
tables the benchmark harness prints, and :mod:`~repro.metrics.recovery`
measures fault-recovery hygiene (residual dead descriptors, partition
locality) for the fault-injection subsystem.
:class:`~repro.metrics.registry.MetricsRegistry` is the facade over all of
them — the single aggregation path the CLI's ``report`` and ``obs``
commands consume.
"""

from repro.metrics.bandwidth import per_node_series, total_split
from repro.metrics.recovery import cross_island_fraction, dead_descriptor_fraction
from repro.metrics.registry import MetricsRegistry
from repro.metrics.report import render_series, render_table
from repro.metrics.stats import Stats, mean, std, summarize

__all__ = [
    "MetricsRegistry",
    "Stats",
    "cross_island_fraction",
    "dead_descriptor_fraction",
    "mean",
    "per_node_series",
    "render_series",
    "render_table",
    "std",
    "summarize",
    "total_split",
]
