"""ASCII plotting for benchmark outputs.

The benches archive numeric tables; these helpers add a rough visual of the
same series — enough to eyeball the rise-then-plateau of Figure 4 or the
growth trends of Figures 2/3 in a terminal or a results file, without any
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Glyphs per series, assigned in declaration order.
_GLYPHS = "*o+x#@%&"


def ascii_chart(
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render one or more numeric series as an ASCII scatter chart.

    All series share the y-scale (0 .. max over all values) and are sampled
    onto ``width`` columns. Overlapping points keep the first series' glyph.
    """
    named = [(name, list(values)) for name, values in series.items() if values]
    if not named or height < 2 or width < 2:
        return "(no data)"
    y_max = max(max(values) for _, values in named) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for index, (_, values) in enumerate(named):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        n = len(values)
        for column in range(width):
            # Sample the series position for this column.
            position = column * (n - 1) / (width - 1) if width > 1 else 0
            value = values[min(n - 1, round(position))]
            row = height - 1 - round((value / y_max) * (height - 1))
            row = min(height - 1, max(0, row))
            if grid[row][column] == " ":
                grid[row][column] = glyph

    lines: List[str] = []
    top_label = f"{y_max:g}"
    lines.append(f"{top_label:>8} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{0:>8} ┴" + "".join(grid[-1]))
    if x_label:
        lines.append(" " * 10 + x_label)
    legend = "   ".join(
        f"{_GLYPHS[index % len(_GLYPHS)]} {name}"
        for index, (name, _) in enumerate(named)
    )
    lines.append(" " * 10 + legend)
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line bar sketch of a series (eight levels)."""
    blocks = "▁▂▃▄▅▆▇█"
    values = list(values)
    if not values:
        return ""
    top = max(values) or 1.0
    return "".join(
        blocks[min(7, int((value / top) * 7.999))] for value in values
    )
