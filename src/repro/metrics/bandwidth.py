"""Bandwidth extraction — the Fig. 4 measurement.

Fig. 4 plots, per round, "bandwidth consumption (in bytes) between the core
protocol and our runtime's sub-procedures" for a fixed system — i.e. the
average bytes a node spends per round on (a) the shape-building core
protocols (the *baseline*: what realizing the elementary shapes costs by
itself) and (b) everything the assembly runtime adds (the *overhead*).
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.runtime import BASELINE_LAYERS, RUNTIME_OVERHEAD_LAYERS
from repro.core.layers import LAYER_CORE
from repro.sim.transport import Transport


def per_node_series(
    transport: Transport, layer: str, rounds: int, n_nodes: int
) -> List[float]:
    """Average bytes per node per round for one layer."""
    if n_nodes <= 0:
        return [0.0] * rounds
    return [value / n_nodes for value in transport.bytes_series(layer, rounds)]


def total_split(
    transport: Transport, rounds: int, n_nodes: int
) -> Dict[str, List[float]]:
    """The Fig. 4 decomposition: per-node byte series, baseline vs overhead.

    Baseline = core protocols + peer sampling (what a monolithic
    construction of the basic shapes would also pay); overhead = the four
    assembly sub-procedures (UO1, UO2, port selection, port connection).
    """
    baseline = [0.0] * rounds
    for layer in BASELINE_LAYERS:
        for index, value in enumerate(
            per_node_series(transport, layer, rounds, n_nodes)
        ):
            baseline[index] += value
    overhead = [0.0] * rounds
    for layer in RUNTIME_OVERHEAD_LAYERS:
        for index, value in enumerate(
            per_node_series(transport, layer, rounds, n_nodes)
        ):
            overhead[index] += value
    return {"baseline": baseline, "overhead": overhead}


def layer_breakdown(
    transport: Transport, rounds: int, n_nodes: int
) -> Dict[str, List[float]]:
    """Per-layer per-node byte series for all runtime layers (diagnostics)."""
    layers = tuple(BASELINE_LAYERS) + tuple(RUNTIME_OVERHEAD_LAYERS)
    return {
        layer: per_node_series(transport, layer, rounds, n_nodes)
        for layer in layers
    }
