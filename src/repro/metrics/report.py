"""Plain-text table rendering for the benchmark harness.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[index]) for index, cell in enumerate(cells))

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in materialized)
    return "\n".join(out)


def render_series(
    name: str, xs: Sequence[object], ys: Sequence[object], x_label: str = "x"
) -> str:
    """Render one (x, y) series as a two-column table."""
    return render_table([x_label, name], zip(xs, ys))
