"""MetricsRegistry — the one aggregation path behind the CLI reports.

Before this facade existed, every command assembled its own ad-hoc mix of
:mod:`~repro.metrics.stats`, :mod:`~repro.metrics.bandwidth`, and
:mod:`~repro.metrics.report` calls. The registry consolidates them: feeders
turn a convergence report, a deployment's transport, a telemetry
:class:`~repro.obs.collector.Collector`, or a JSONL event stream into named
table *sections*, and one renderer prints them all. ``repro report`` and
``repro obs`` differ only in which feeders they call — the aggregation and
formatting are shared, so the two commands can never drift apart.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.metrics.bandwidth import total_split
from repro.metrics.report import render_table

#: One section: (title, headers, rows of primitives).
Section = Tuple[str, Tuple[str, ...], List[Tuple[Any, ...]]]


class MetricsRegistry:
    """Named table sections with a single renderer and plain-data export."""

    def __init__(self):
        self._sections: List[Section] = []

    # -- generic access --------------------------------------------------------

    def add_section(
        self,
        title: str,
        headers: Sequence[str],
        rows: Iterable[Sequence[Any]],
    ) -> None:
        self._sections.append(
            (title, tuple(headers), [tuple(row) for row in rows])
        )

    def section(self, title: str) -> Optional[Section]:
        for candidate in self._sections:
            if candidate[0] == title:
                return candidate
        return None

    def titles(self) -> List[str]:
        return [title for title, _headers, _rows in self._sections]

    def render(self) -> str:
        """Every section as an aligned ASCII table, blank-line separated."""
        blocks = [
            render_table(headers, rows, title=title)
            for title, headers, rows in self._sections
            if rows
        ]
        return "\n\n".join(blocks)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data export (JSON-friendly) of every section."""
        return {
            title: {"headers": list(headers), "rows": [list(row) for row in rows]}
            for title, headers, rows in self._sections
        }

    # -- feeders ----------------------------------------------------------------

    def add_convergence(self, report) -> None:
        """Per-layer rounds-to-converge from a deployment's run report."""
        rows = [
            (layer, "n/a" if rounds is None else rounds)
            for layer, rounds in sorted(report.rounds.items())
        ]
        rows.append(("(executed)", report.executed))
        self.add_section("convergence (rounds)", ("layer", "rounds"), rows)

    def add_bandwidth(self, deployment, rounds: int) -> None:
        """The Fig. 4 baseline/overhead split, per node per round."""
        if not rounds:
            return
        split = total_split(
            deployment.transport, rounds, max(1, deployment.network.alive_count())
        )
        rows = [
            (label, f"{sum(series) / rounds:.0f}")
            for label, series in sorted(split.items())
        ]
        self.add_section(
            "bandwidth (bytes/node/round)", ("series", "bytes"), rows
        )

    def add_collector(self, collector) -> None:
        """Counters, gauges, spans, and the event summary of one collector."""
        self.add_section(
            "counters",
            ("counter", "layer", "value"),
            [
                (name, layer or "-", value)
                for (name, layer), value in sorted(collector.counters.items())
            ],
        )
        self.add_section(
            "gauges",
            ("gauge", "layer", "value"),
            [
                (name, layer or "-", f"{value:g}")
                for (name, layer), value in sorted(collector.gauges.items())
            ],
        )
        self.add_section(
            "spans",
            ("span", "count", "total s", "mean s"),
            [
                (
                    name,
                    collector.spans.counts[name],
                    f"{collector.spans.totals[name]:.4f}",
                    f"{collector.spans.mean(name):.6f}",
                )
                for name in collector.spans.names()
            ],
        )
        self.add_events(collector.events)
        if collector.unknown_kinds:
            self.add_section(
                "unknown event kinds",
                ("kind", "count"),
                sorted(collector.unknown_kinds.items()),
            )
        flow = getattr(collector, "flow", None)
        if flow is not None:
            self.add_flow(flow)
        health = getattr(collector, "health", None)
        if health is not None:
            self.add_health(health)

    def add_flow(self, flow) -> None:
        """Causal propagation tracing: per-layer latency and critical path.

        ``flow`` is a :class:`~repro.obs.flow.FlowTracer`; layers with no
        tagged deliveries are omitted.
        """
        rows = []
        for layer, data in sorted(flow.summary().items()):
            latency = data["latency"] or {}
            path = data["critical_path"]
            rows.append(
                (
                    layer,
                    data["deliveries"],
                    data["flow_edges"],
                    data["known_pairs"],
                    "-" if not latency else f"{latency['mean']:.1f}",
                    "-" if not latency else latency["p95"],
                    "-"
                    if path is None
                    else "->".join(str(n) for n in path["path"])
                    + f" @r{path['closed_round']}",
                )
            )
        self.add_section(
            "information flow",
            (
                "layer",
                "deliveries",
                "edges",
                "pairs",
                "lat mean",
                "lat p95",
                "critical path",
            ),
            rows,
        )

    def add_health(self, monitor) -> None:
        """Alert history of a :class:`~repro.obs.health.HealthMonitor`."""
        summary = monitor.summary()
        rows = [
            (
                alert["severity"],
                alert["rule"],
                alert["round_fired"],
                "-" if alert["round_cleared"] is None else alert["round_cleared"],
            )
            for alert in summary["alerts"]
        ]
        rows.append(("(verdict)", summary["verdict"], "", ""))
        self.add_section(
            "health alerts", ("severity", "rule", "fired", "cleared"), rows
        )

    def add_profile(self, collector) -> None:
        """The span self-time profile (``repro report --profile``)."""
        from repro.obs.watch import profile_rows

        rows = profile_rows(collector)
        grand_self = sum(row[3] for row in rows) or 1.0
        self.add_section(
            "span profile (self-time)",
            ("span", "count", "total s", "self s", "self %"),
            [
                (
                    name,
                    count,
                    f"{total:.4f}",
                    f"{self_time:.4f}",
                    f"{100.0 * self_time / grand_self:.1f}%",
                )
                for name, count, total, self_time in rows
            ],
        )

    def add_events(self, events: Iterable[Any]) -> None:
        """Event summary (count and round range per kind) from any stream.

        Accepts :class:`~repro.obs.trace.TraceEvent` objects — live from a
        collector or re-read from a JSONL export — so post-mortem analysis
        of a file goes through the same table as a live run.
        """
        per_kind: Dict[str, List[int]] = {}
        for event in events:
            per_kind.setdefault(event.kind, []).append(event.round)
        self.add_section(
            "events",
            ("kind", "count", "first round", "last round"),
            [
                (kind, len(rounds), min(rounds), max(rounds))
                for kind, rounds in sorted(per_kind.items())
            ],
        )

    # -- constructors ------------------------------------------------------------

    @classmethod
    def for_deployment(
        cls, deployment, report, collector=None
    ) -> "MetricsRegistry":
        """The full ``repro report`` view: convergence, bandwidth, telemetry."""
        registry = cls()
        registry.add_convergence(report)
        registry.add_bandwidth(deployment, report.executed)
        if collector is not None:
            registry.add_collector(collector)
        return registry

    @classmethod
    def from_collector(cls, collector) -> "MetricsRegistry":
        """The ``repro obs`` live view: telemetry sections only."""
        registry = cls()
        registry.add_collector(collector)
        return registry

    @classmethod
    def from_events(cls, events: Iterable[Any]) -> "MetricsRegistry":
        """The ``repro obs`` post-mortem view over a JSONL stream."""
        registry = cls()
        registry.add_events(events)
        return registry
