"""Multi-seed statistics: means, deviations, 90% confidence intervals.

The paper: "All measures were averaged over 25 runs [...] We computed 90%
confidence intervals but they were negligible". We reproduce the same
aggregation — Student-t confidence intervals over per-seed samples — so
EXPERIMENTS.md can report both the mean and the interval half-width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import ConfigurationError

try:  # scipy is available in the reference environment, but stay honest.
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_stats = None

#: Two-sided 90% normal quantile, the fallback when scipy is unavailable.
_Z90 = 1.6448536269514722


def mean(samples: Sequence[float]) -> float:
    """Arithmetic mean; raises on an empty sample set."""
    if not samples:
        raise ConfigurationError("mean of an empty sample set")
    return sum(samples) / len(samples)


def std(samples: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 for n < 2."""
    n = len(samples)
    if n < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((x - mu) ** 2 for x in samples) / (n - 1))


def _t_quantile(confidence: float, dof: int) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    return _Z90 if abs(confidence - 0.90) < 1e-9 else _Z90  # pragma: no cover


def confidence_half_width(
    samples: Sequence[float], confidence: float = 0.90
) -> float:
    """Half-width of the two-sided ``confidence`` interval on the mean."""
    n = len(samples)
    if n < 2:
        return 0.0
    return _t_quantile(confidence, n - 1) * std(samples) / math.sqrt(n)


@dataclass(frozen=True)
class Stats:
    """Summary of one metric across seeds."""

    mean: float
    std: float
    ci90: float
    n: int
    failures: int = 0

    def __str__(self) -> str:
        if self.n == 0:
            return "n/a"
        suffix = f" ({self.failures} failed)" if self.failures else ""
        return f"{self.mean:.1f} ±{self.ci90:.1f}{suffix}"


def summarize(
    samples: Sequence[Optional[float]], confidence: float = 0.90
) -> Stats:
    """Aggregate per-seed samples, tolerating ``None`` (non-converged runs).

    ``None`` entries are counted as failures and excluded from the moments —
    the honest treatment for timeout runs (they would otherwise silently
    bias the mean toward the budget).
    """
    values = [float(x) for x in samples if x is not None]
    failures = len(samples) - len(values)
    if not values:
        return Stats(mean=float("nan"), std=0.0, ci90=0.0, n=0, failures=failures)
    return Stats(
        mean=mean(values),
        std=std(values),
        ci90=confidence_half_width(values, confidence),
        n=len(values),
        failures=failures,
    )
