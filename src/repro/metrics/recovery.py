"""Recovery-oriented health metrics over a live network.

Complements the structural convergence predicates of
:mod:`repro.core.convergence` with the *hygiene* measures fault scenarios
care about: how much of the population's knowledge still points at dead
nodes, and how partition-local each view has become.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.network import Network

#: Layers whose views carry the overlay's membership knowledge.
DEFAULT_VIEW_LAYERS: Tuple[str, ...] = ("peer_sampling", "uo1")


def dead_descriptor_fraction(
    network: Network, layers: Sequence[str] = DEFAULT_VIEW_LAYERS
) -> float:
    """Fraction of view entries (over live nodes) that point at dead nodes.

    0.0 means every descriptor held anywhere references a live node — the
    residual after a failure wave measures how completely the healer,
    descriptor TTLs and tombstones have flushed the casualties.
    """
    total = 0
    dead = 0
    for node in network.alive_nodes():
        for layer in layers:
            if not node.has_protocol(layer):
                continue
            for peer_id in node.protocol(layer).neighbors():
                total += 1
                if not network.is_alive(peer_id):
                    dead += 1
    return dead / total if total else 0.0


def dead_view_ids(
    network: Network, layers: Sequence[str] = DEFAULT_VIEW_LAYERS
) -> Dict[int, List[int]]:
    """Per live node, the sorted dead ids its views still reference.

    The targeting map of the tombstone-purge remediation: for every live
    node holding at least one descriptor of a dead (or unknown — a poisoned
    forgery) node, the distinct offending ids across ``layers``. Nodes with
    clean views are omitted, so an empty dict means perfect hygiene.
    """
    stale: Dict[int, List[int]] = {}
    for node in network.alive_nodes():
        offenders = set()
        for layer in layers:
            if not node.has_protocol(layer):
                continue
            for peer_id in node.protocol(layer).neighbors():
                if not network.is_alive(peer_id):
                    offenders.add(peer_id)
        if offenders:
            stale[node.node_id] = sorted(offenders)
    return stale


def cross_island_fraction(network: Network, island_of, layer: str = "uo1") -> float:
    """Fraction of ``layer`` view entries crossing the given island map.

    ``island_of`` is a mapping (or any ``get``-able) from node id to island.
    During a partition this decays toward 0 as unreachable entries are
    evicted; after healing it must climb back — the partition-merge signal.
    """
    total = 0
    crossing = 0
    for node in network.alive_nodes():
        if not node.has_protocol(layer):
            continue
        own_island = island_of.get(node.node_id)
        for peer_id in node.protocol(layer).neighbors():
            total += 1
            peer_island = island_of.get(peer_id)
            if (
                own_island is not None
                and peer_island is not None
                and own_island != peer_island
            ):
                crossing += 1
    return crossing / total if total else 0.0
