"""T-Man — gossip-based fast overlay topology construction.

Implements Jelasity, Montresor & Babaoglu (Computer Networks 2009). T-Man is
the second topology-construction protocol the paper cites; we provide it as
an alternative core protocol for the shape components (ablation A4 in
DESIGN.md). Differences from Vicinity:

- the gossip partner is drawn uniformly from the ψ (``psi``) entries ranked
  closest to the node, not from the tail of the view;
- the exchanged buffer contains the ``m`` entries of the merged
  (view ∪ random-view ∪ self) set ranked closest *to the partner*;
- the view is unbounded in the original paper; we keep the bounded-view
  variant (also evaluated there) for memory parity with Vicinity.
"""

from __future__ import annotations

from typing import List, Optional

from repro.gossip.descriptors import Descriptor
from repro.gossip.selection import Profile, Proximity, select_closest
from repro.gossip.views import make_view
from repro.perf.cache import DistanceCache
from repro.sim.config import GossipParams
from repro.sim.engine import RoundContext
from repro.sim.protocol import Protocol
from repro.sim.transport import ExchangeRequest


class TMan(Protocol):
    """One node's instance of a T-Man overlay.

    Parameters mirror :class:`~repro.gossip.vicinity.Vicinity`, plus ``psi``,
    the size of the closest-peers pool the gossip partner is drawn from.
    """

    def __init__(
        self,
        node_id: int,
        profile: Profile,
        proximity: Proximity,
        params: Optional[GossipParams] = None,
        layer: str = "tman",
        random_layer: Optional[str] = "peer_sampling",
        psi: int = 3,
        target_degree: Optional[int] = None,
        descriptor_ttl: Optional[int] = None,
    ):
        self.node_id = node_id
        self.profile = profile
        self.proximity = proximity
        self.params = params or GossipParams()
        self.layer = layer
        self.random_layer = random_layer
        self.psi = max(1, psi)
        self.target_degree = target_degree or self.params.view_size
        # Same staleness hygiene as Vicinity (see its docstring): a dead
        # node's descriptors must age out rather than circulate forever.
        self.descriptor_ttl = descriptor_ttl or max(24, 2 * self.params.view_size)
        self.view = make_view(self.params)
        self._self_descriptor = Descriptor(node_id, age=0, profile=profile)
        # Pre-resolved (name, layer) counter keys for Instrument.count_key.
        self._k_exchanges = ("exchanges", layer)
        self._k_sent = ("descriptors_sent", layer)
        self._k_received = ("descriptors_received", layer)
        self._k_dead = ("dead_purged", layer)
        self._k_replacements = ("view_replacements", layer)
        self._k_churn = ("descriptor_churn", layer)
        # Memoized self-referenced distances (see Vicinity: ranking-function
        # evaluation dominates the round; the reference changes only on
        # reconfiguration).
        self._distances = DistanceCache(proximity, profile)

    def self_descriptor(self) -> Descriptor:
        return self._self_descriptor

    def set_profile(self, profile: Profile) -> None:
        self.profile = profile
        self._self_descriptor = Descriptor(self.node_id, age=0, profile=profile)
        self._distances.rebind(profile)
        self.view.discard_where(
            lambda d: not self.proximity.eligible(profile, d.profile)
        )

    def neighbors(self) -> List[int]:
        # Batch distance evaluation on columnar views (see Vicinity.neighbors).
        best = self.view.closest_to(self.target_degree, self._distances)
        return [descriptor.node_id for descriptor in best]

    def forget(self, node_id: int) -> None:
        self.view.remove(node_id)

    # -- gossip ------------------------------------------------------------------

    def step(self, ctx: RoundContext) -> None:
        self.view.increase_age()
        if not ctx.exchange_ok():
            return  # this round's exchange was lost
        partner = self._select_peer(ctx)
        if partner is None:
            return
        if not ctx.transport.deliverable(ctx, partner.node_id, self.layer):
            # Unreachable, not dead: drop without a tombstone.
            self.view.remove(partner.node_id)
            return
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        buffer = self._buffer_for(ctx, partner.profile, partner.node_id, flow)
        reply = ctx.transport.exchange(
            ctx,
            partner.node_id,
            ExchangeRequest(self.layer, self.node_id, buffer, profile=self.profile),
        )
        if reply is None:
            self.view.remove(partner.node_id)
            return
        ctx.transport.record_exchange(self.layer, len(buffer), len(reply))
        if obs is not None:
            obs.count_key(self._k_exchanges)
            obs.count_key(self._k_sent, len(buffer))
            obs.count_key(self._k_received, len(reply))
            if flow is not None:
                reply = flow.on_received(
                    self.layer, ctx.round, self.node_id, partner.node_id, reply
                )
        self._merge(ctx, reply)

    def on_gossip(
        self,
        ctx: RoundContext,
        requester_profile: Profile,
        requester_id: int,
        received: List[Descriptor],
    ) -> List[Descriptor]:
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        reply = self._buffer_for(ctx, requester_profile, requester_id, flow)
        if obs is not None:
            obs.count_key(self._k_sent, len(reply))
            obs.count_key(self._k_received, len(received))
            if flow is not None:
                received = flow.on_received(
                    self.layer, ctx.round, self.node_id, requester_id, received
                )
        self._merge(ctx, received)
        return reply

    def on_request(
        self, ctx: RoundContext, request: ExchangeRequest
    ) -> List[Descriptor]:
        """Transport-seam entry point: delegate to :meth:`on_gossip`."""
        return self.on_gossip(ctx, request.profile, request.sender, request.payload)

    # -- internals ----------------------------------------------------------------

    def _select_peer(self, ctx: RoundContext) -> Optional[Descriptor]:
        """Uniform draw from the ψ closest live view entries."""
        while len(self.view):
            ranked = self.view.closest_to(self.psi, self._distances)
            live = [d for d in ranked if ctx.network.is_alive(d.node_id)]
            if live:
                return ctx.rng().choice(live)
            for descriptor in ranked:
                # Dead peers get tombstones against stale resurrection.
                self.view.purge(descriptor.node_id)
                if ctx.obs is not None:
                    ctx.obs.count_key(self._k_dead)
        return self._random_peer(ctx)

    def _own_node(self, ctx: RoundContext):
        # Not ctx.node: in passive on_gossip the context is the requester's.
        return ctx.network.node(self.node_id)

    def _random_peer(self, ctx: RoundContext) -> Optional[Descriptor]:
        own = self._own_node(ctx)
        if self.random_layer is None or not own.has_protocol(self.random_layer):
            return None
        candidates = []
        for node_id in own.protocol(self.random_layer).neighbors():
            if node_id == self.node_id or not ctx.network.is_alive(node_id):
                continue
            if not ctx.transport.reachable(ctx, node_id):
                continue  # behind an active partition cut
            peer = ctx.network.node(node_id)
            if not peer.has_protocol(self.layer):
                continue
            peer_protocol = peer.protocol(self.layer)
            assert isinstance(peer_protocol, TMan)
            if self.proximity.eligible(self.profile, peer_protocol.profile):
                candidates.append(peer_protocol.self_descriptor())
        if not candidates:
            return None
        return ctx.rng().choice(candidates)

    def _candidate_pool(self, ctx: RoundContext) -> List[Descriptor]:
        own = self._own_node(ctx)
        pool = self.view.descriptors()
        if self.random_layer is not None and own.has_protocol(self.random_layer):
            for node_id in own.protocol(self.random_layer).neighbors():
                if node_id == self.node_id or not ctx.network.is_alive(node_id):
                    continue
                if not ctx.transport.reachable(ctx, node_id):
                    continue  # peeking state across the cut would leak it
                peer = ctx.network.node(node_id)
                if not peer.has_protocol(self.layer):
                    continue
                peer_protocol = peer.protocol(self.layer)
                assert isinstance(peer_protocol, TMan)
                pool.append(peer_protocol.self_descriptor())
        return pool

    def _fresh(self, descriptors: List[Descriptor]) -> List[Descriptor]:
        return [d for d in descriptors if d.age <= self.descriptor_ttl]

    def _buffer_for(
        self, ctx: RoundContext, reference: Profile, recipient_id: int, flow=None
    ) -> List[Descriptor]:
        pool = self._fresh(self._candidate_pool(ctx))
        advert = self.self_descriptor()
        if flow is not None:
            advert = flow.advertise(advert, self.node_id, ctx.round)
        pool.append(advert)
        return select_closest(
            pool,
            reference,
            self._distances,
            self.params.gossip_size,
            exclude_id=recipient_id,
        )

    def _merge(self, ctx: RoundContext, received: List[Descriptor]) -> None:
        # T-Man's update: view ← best of (view ∪ buffer ∪ random view).
        # Received entries age one hop in transit (see Vicinity._merge_pool).
        pool = self._candidate_pool(ctx)
        pool.extend(d.aged() for d in received)
        best = select_closest(
            self._fresh(pool),
            self.profile,
            self._distances,
            self.params.view_size,
            exclude_id=self.node_id,
        )
        if ctx.obs is not None:
            ids = self.view.id_set()
            entering = sum(1 for d in best if d.node_id not in ids)
            ctx.obs.count_key(self._k_replacements)
            ctx.obs.count_key(self._k_churn, entering)
        self.view.replace(best)
