"""Gossip substrate: partial views and self-organizing overlay protocols.

This package implements the published protocols the paper builds on:

- :mod:`~repro.gossip.peer_sampling` — the gossip-based peer-sampling
  framework of Jelasity et al. (ACM TOCS 2007), the bottom layer of the
  runtime (Figure 1's "Global peer sampling");
- :mod:`~repro.gossip.cyclon` — the Cyclon shuffle, an alternative
  random-overlay protocol used for ablations;
- :mod:`~repro.gossip.vicinity` — Vicinity (Voulgaris & van Steen,
  Middleware 2013), the topology-construction protocol the paper uses for
  its shape components: a greedy gossip optimizer over a user-supplied
  proximity function, fed "a pinch of randomness" by the peer-sampling layer;
- :mod:`~repro.gossip.tman` — T-Man (Jelasity, Montresor & Babaoglu, 2009),
  the alternative topology-construction protocol, used as an ablation core.

All protocols exchange :class:`~repro.gossip.descriptors.Descriptor` records
through bounded :class:`~repro.gossip.views.PartialView` instances, and report
their message sizes to the simulator transport for bandwidth accounting.
"""

from repro.gossip.descriptors import Descriptor
from repro.gossip.peer_sampling import PeerSampling
from repro.gossip.tman import TMan
from repro.gossip.vicinity import Vicinity
from repro.gossip.views import PartialView

__all__ = ["Descriptor", "PartialView", "PeerSampling", "TMan", "Vicinity"]
