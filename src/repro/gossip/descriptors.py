"""Node descriptors — the records gossip messages carry.

A descriptor advertises a node to its peers: its identity, a logical *age*
(rounds since the descriptor was created, the staleness signal the
peer-sampling healer uses), and a layer-specific *profile* (the coordinate a
proximity function ranks on — a ring position, a component name + rank, ...).

When causal propagation tracing is enabled (see :mod:`repro.obs.flow`), a
descriptor additionally carries a compact :class:`Provenance` tag — origin
node, origin round, hop count — that rides along through gossip exchanges.
The tag is pure metadata: it participates in neither equality nor ordering,
so tagged and untagged runs make byte-identical selection decisions.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Optional


class Provenance(NamedTuple):
    """The compact causal tag a traced descriptor carries.

    ``origin`` minted the descriptor in round ``minted_round``; ``hops``
    counts the gossip exchanges the copy has traversed since (0 for a
    self-advertisement still at its origin).
    """

    origin: int
    minted_round: int
    hops: int

    def hop(self) -> "Provenance":
        """The tag after one more gossip exchange."""
        return Provenance(self.origin, self.minted_round, self.hops + 1)


class Descriptor:
    """An immutable advertisement of one node at one layer.

    Immutability keeps views safe to share between protocol buffers: aging a
    descriptor produces a new record (:meth:`aged`) rather than mutating one
    that may sit in a peer's in-flight message.
    """

    __slots__ = ("node_id", "age", "profile", "provenance")

    def __init__(
        self,
        node_id: int,
        age: int = 0,
        profile: Any = None,
        provenance: Optional[Provenance] = None,
    ):
        object.__setattr__(self, "node_id", int(node_id))
        object.__setattr__(self, "age", int(age))
        object.__setattr__(self, "profile", profile)
        object.__setattr__(self, "provenance", provenance)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Descriptor is immutable")

    def __reduce__(self):
        # Default slots-based pickling restores attributes via __setattr__,
        # which immutability forbids; reconstruct through __init__ instead.
        # Descriptors cross process boundaries in the sharded engine's
        # message batches and in parallel-runner results.
        return (Descriptor, (self.node_id, self.age, self.profile, self.provenance))

    def aged(self, increment: int = 1) -> "Descriptor":
        """A copy of this descriptor, ``increment`` rounds older."""
        return Descriptor(
            self.node_id, self.age + increment, self.profile, self.provenance
        )

    def fresh(self) -> "Descriptor":
        """A copy with age reset to zero (a node advertising itself)."""
        return Descriptor(self.node_id, 0, self.profile, self.provenance)

    def with_profile(self, profile: Any) -> "Descriptor":
        """A copy carrying a different profile (used on reconfiguration)."""
        return Descriptor(self.node_id, self.age, profile, self.provenance)

    def tagged(self, provenance: Optional[Provenance]) -> "Descriptor":
        """A copy carrying the given provenance tag (flow tracing)."""
        return Descriptor(self.node_id, self.age, self.profile, provenance)

    def hopped(self) -> "Descriptor":
        """A copy one gossip hop further from its origin (untagged: self)."""
        if self.provenance is None:
            return self
        return Descriptor(
            self.node_id, self.age, self.profile, self.provenance.hop()
        )

    # Equality is identity + freshness; the profile rides along (two
    # descriptors for the same node at the same layer carry equal profiles).
    # Provenance is observational metadata and deliberately excluded.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Descriptor):
            return NotImplemented
        return self.node_id == other.node_id and self.age == other.age

    def __hash__(self) -> int:
        return hash((self.node_id, self.age))

    def __repr__(self) -> str:
        return f"Descriptor(node={self.node_id}, age={self.age}, profile={self.profile!r})"


def youngest(a: Optional[Descriptor], b: Optional[Descriptor]) -> Optional[Descriptor]:
    """Of two descriptors for the same node, the fresher one (lower age)."""
    if a is None:
        return b
    if b is None:
        return a
    return a if a.age <= b.age else b
