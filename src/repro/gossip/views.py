"""Bounded partial views over node descriptors.

A partial view holds at most one descriptor per node id (always the youngest
seen) and at most ``capacity`` descriptors in total. It is the state of every
gossip protocol in the framework and the structure the convergence metrics
are evaluated on.
"""

from __future__ import annotations

import heapq
import random
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.gossip.descriptors import Descriptor


class PartialView:
    """A capacity-bounded set of descriptors, keyed by node id.

    Invariants (exercised by the property-based test suite):

    - at most ``capacity`` entries;
    - at most one entry per node id;
    - of two descriptors seen for the same node, the younger one is kept.

    When an insertion overflows the capacity, the *oldest* descriptor is
    evicted by default (the healer-friendly policy); callers can supply a
    different eviction key.

    **Tombstones.** :meth:`purge` removes a descriptor *and* blocks its
    re-insertion: a node confirmed dead must not be resurrected by stale
    copies still circulating in other views (the zombie-descriptor problem
    under pause/resume churn). Only an age-0 descriptor — which, under the
    in-transit aging rule, can only originate from the owning node in the
    current round — clears the tombstone, proving the node is back. Each
    tombstone expires after ``tombstone_ttl`` aging steps so the table stays
    bounded across long churn runs.

    **Lazy aging.** :meth:`increase_age` does not rewrite the descriptor
    table; it increments an *age debt* that is settled (applied in one pass)
    the first time the view is actually read or age-sensitively mutated.
    The id-index — the ``node_id → descriptor`` dict *is* the index — is
    therefore maintained incrementally: id-only operations (``len``,
    ``in``, :meth:`ids`, :meth:`remove`) never trigger a rebuild, and a
    view that is aged but not otherwise touched in a round (a lost
    exchange, an idle UO2 bucket) costs O(1) instead of O(view size).
    Observable state is identical to eager aging; the equivalence is pinned
    by tests/gossip/test_views_properties.py.
    """

    __slots__ = ("capacity", "_entries", "_tombstones", "tombstone_ttl", "_age_debt")

    def __init__(
        self,
        capacity: int,
        entries: Iterable[Descriptor] = (),
        tombstone_ttl: int = 64,
    ):
        if capacity < 1:
            raise ConfigurationError(f"view capacity must be >= 1, got {capacity}")
        if tombstone_ttl < 1:
            raise ConfigurationError(
                f"tombstone_ttl must be >= 1, got {tombstone_ttl}"
            )
        self.capacity = capacity
        self.tombstone_ttl = tombstone_ttl
        self._entries: Dict[int, Descriptor] = {}
        self._tombstones: Dict[int, int] = {}
        self._age_debt = 0
        for descriptor in entries:
            self.insert(descriptor)

    def _settle(self) -> None:
        """Apply any deferred aging so entries carry their true age.

        Called by every operation whose outcome (or escaping descriptors)
        depends on ages. Aging a descriptor by the accumulated debt in one
        pass is exactly equivalent to aging it once per round: ``aged`` is
        pure addition, and tombstones expire after ``remaining`` steps
        whether those steps are applied singly or batched.
        """
        debt = self._age_debt
        if not debt:
            return
        self._age_debt = 0
        entries = self._entries
        for node_id in entries:
            entries[node_id] = entries[node_id].aged(debt)
        if self._tombstones:
            self._tombstones = {
                node_id: remaining - debt
                for node_id, remaining in self._tombstones.items()
                if remaining - debt >= 1
            }

    # -- basic container protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def __iter__(self) -> Iterator[Descriptor]:
        self._settle()
        return iter(self._entries.values())

    def get(self, node_id: int) -> Optional[Descriptor]:
        self._settle()
        return self._entries.get(node_id)

    def ids(self) -> List[int]:
        return list(self._entries.keys())

    def id_set(self):
        """The live ``dict_keys`` view of member ids (id-only: no settle).

        Set arithmetic against it (``pool.keys() - view.id_set()``) and
        ``in`` checks run at C speed — the instrumented merge paths use it
        to tally view churn without per-element method dispatch.
        """
        return self._entries.keys()

    def descriptors(self) -> List[Descriptor]:
        self._settle()
        return list(self._entries.values())

    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    # -- mutation ---------------------------------------------------------------

    def insert(self, descriptor: Descriptor) -> bool:
        """Insert ``descriptor``, keeping the youngest copy per node.

        Returns ``True`` if the view changed. On overflow the oldest entry is
        evicted; if the incoming descriptor is itself the oldest, it is not
        inserted. Tombstoned ids are rejected unless the descriptor is
        age 0 (a live announcement from the owner itself).
        """
        self._settle()
        remaining = self._tombstones.get(descriptor.node_id)
        if remaining is not None:
            if descriptor.age > 0:
                return False
            del self._tombstones[descriptor.node_id]
        existing = self._entries.get(descriptor.node_id)
        if existing is not None:
            if descriptor.age < existing.age:
                self._entries[descriptor.node_id] = descriptor
                return True
            return False
        if len(self._entries) < self.capacity:
            self._entries[descriptor.node_id] = descriptor
            return True
        oldest_id, oldest = max(self._entries.items(), key=lambda item: item[1].age)
        if descriptor.age >= oldest.age:
            return False
        del self._entries[oldest_id]
        self._entries[descriptor.node_id] = descriptor
        return True

    def merge(self, descriptors: Iterable[Descriptor]) -> int:
        """Insert many descriptors; return how many changed the view."""
        return sum(1 for descriptor in descriptors if self.insert(descriptor))

    def remove(self, node_id: int) -> bool:
        """Drop the entry for ``node_id``; return whether one existed."""
        return self._entries.pop(node_id, None) is not None

    def purge(self, node_id: int) -> bool:
        """Drop ``node_id`` and tombstone it against stale re-insertion.

        The failure-detection removal: use this when the node was observed
        *dead* (not merely unreachable), so third-party copies of its
        descriptor cannot flow back in. A subsequent age-0 descriptor — the
        node announcing itself after a resume — lifts the tombstone.
        """
        self._settle()  # a fresh tombstone must not absorb pre-purge debt
        existed = self._entries.pop(node_id, None) is not None
        self._tombstones[node_id] = self.tombstone_ttl
        return existed

    def is_purged(self, node_id: int) -> bool:
        """Whether ``node_id`` currently carries a tombstone."""
        self._settle()
        return node_id in self._tombstones

    def discard_where(self, predicate: Callable[[Descriptor], bool]) -> int:
        """Remove every descriptor matching ``predicate``; return the count."""
        self._settle()
        doomed = [d.node_id for d in self._entries.values() if predicate(d)]
        for node_id in doomed:
            del self._entries[node_id]
        return len(doomed)

    def increase_age(self) -> None:
        """Age every descriptor by one round (start of a gossip step).

        O(1): the round is added to the view's age debt and applied lazily
        on the next age-sensitive access (see the class docstring).
        """
        self._age_debt += 1

    def clear(self) -> None:
        """Full reset: entries, tombstones, and pending age debt dropped."""
        self._entries.clear()
        self._tombstones.clear()
        self._age_debt = 0

    def replace(self, descriptors: Iterable[Descriptor]) -> None:
        """Atomically replace the contents (used by select-style protocols).

        Semantically an entry-clear followed by :meth:`insert` per
        descriptor (pinned by tests/gossip/test_views_properties.py); the
        common cases — unique ids, no overflow, the output of a select
        step — are inlined because select-style protocols call this every
        exchange and a full ``insert`` per descriptor is measurable there.
        """
        self._settle()  # tombstones must observe pre-replace aging
        entries = self._entries
        entries.clear()
        tombstones = self._tombstones
        capacity = self.capacity
        for descriptor in descriptors:
            node_id = descriptor.node_id
            if tombstones:
                remaining = tombstones.get(node_id)
                if remaining is not None:
                    if descriptor.age > 0:
                        continue
                    del tombstones[node_id]
            existing = entries.get(node_id)
            if existing is None:
                if len(entries) < capacity:
                    entries[node_id] = descriptor
                else:
                    self.insert(descriptor)  # overflow: full eviction policy
            elif descriptor.age < existing.age:
                entries[node_id] = descriptor

    # -- selection ---------------------------------------------------------------

    def oldest(self) -> Optional[Descriptor]:
        """The entry with the highest age (ties broken by lowest node id)."""
        self._settle()
        if not self._entries:
            return None
        return max(self._entries.values(), key=lambda d: (d.age, -d.node_id))

    def youngest(self) -> Optional[Descriptor]:
        self._settle()
        if not self._entries:
            return None
        return min(self._entries.values(), key=lambda d: (d.age, d.node_id))

    def random(self, rng: random.Random) -> Optional[Descriptor]:
        self._settle()
        if not self._entries:
            return None
        return self._entries[rng.choice(list(self._entries.keys()))]

    def sample(self, rng: random.Random, k: int) -> List[Descriptor]:
        """Up to ``k`` distinct entries, uniformly at random."""
        self._settle()
        values = list(self._entries.values())
        if k >= len(values):
            return values
        return rng.sample(values, k)

    def closest_to(self, k: int, distances) -> List[Descriptor]:
        """The ``k`` entries nearest the reference bound in ``distances``.

        ``distances`` is anything with a ``to(profile) -> float`` method
        (a :class:`~repro.perf.cache.DistanceCache` in practice). The
        columnar backend overrides this with a batch evaluation over its
        profile column; here it is exactly :meth:`closest` on the profile
        distance, so the two backends return identical rankings.
        """
        to = distances.to
        return self.closest(k, lambda d: to(d.profile))

    def closest(
        self, k: int, key: Callable[[Descriptor], float]
    ) -> List[Descriptor]:
        """The ``k`` entries minimizing ``key`` (stable tie-break on node id).

        Ranks over the (key, id) total order, so the result is exactly
        ``sorted(...)[:k]`` — via ``heapq.nsmallest`` in O(n log k) when
        the view is several times larger than ``k``, via a C sort below
        that (see :func:`repro.gossip.selection._top_k`).
        """
        self._settle()
        entries = self._entries.values()
        if len(entries) <= 4 * k:
            return sorted(entries, key=lambda d: (key(d), d.node_id))[:k]
        return heapq.nsmallest(k, entries, key=lambda d: (key(d), d.node_id))

    def truncate_closest(self, k: int, key: Callable[[Descriptor], float]) -> None:
        """Keep only the ``k`` entries minimizing ``key``."""
        if len(self._entries) <= k:
            return
        keep = self.closest(k, key)
        self._entries = {descriptor.node_id: descriptor for descriptor in keep}

    def drop_oldest(self, count: int) -> None:
        """Remove the ``count`` oldest entries (peer-sampling healer step)."""
        if count <= 0:
            return
        self._settle()
        ranked = heapq.nsmallest(
            count, self._entries.values(), key=lambda d: (-d.age, d.node_id)
        )
        for descriptor in ranked:
            del self._entries[descriptor.node_id]

    def drop_random(self, rng: random.Random, count: int) -> None:
        """Remove ``count`` uniformly random entries."""
        self._settle()
        count = min(count, len(self._entries))
        for descriptor in rng.sample(list(self._entries.values()), count):
            del self._entries[descriptor.node_id]

    def __repr__(self) -> str:
        return f"PartialView(capacity={self.capacity}, size={len(self)})"


def make_view(params, capacity: Optional[int] = None, tombstone_ttl: int = 64):
    """Construct the partial view selected by ``params.backend``.

    Every gossip layer builds its view through this factory, so switching
    the whole stack to the columnar representation is a parameter change
    (``GossipParams(backend="columnar")``) rather than a code change — the
    protocols themselves are representation-agnostic. The import is lazy:
    :mod:`repro.scale.columnar` subclasses :class:`PartialView`, so a
    top-level import here would be circular.
    """
    size = capacity if capacity is not None else params.view_size
    if getattr(params, "backend", "object") == "columnar":
        from repro.scale.columnar import ColumnarView

        return ColumnarView(size, tombstone_ttl=tombstone_ttl)
    return PartialView(size, tombstone_ttl=tombstone_ttl)
