"""Proximity functions and descriptor-selection helpers.

Vicinity and T-Man are *generic* greedy optimizers: the target topology is
entirely encoded in a user-supplied proximity (or ranking) function. This
module defines that interface and the ranking helpers shared by the overlay
protocols.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Dict, Iterable, List

from repro.gossip.descriptors import Descriptor, youngest

#: Profiles are opaque to the gossip layer; shapes and the runtime define them.
Profile = Any


def _top_k(decorated: List[tuple], k: int) -> List[tuple]:
    """The ``k`` smallest decorated tuples, in ascending order.

    Exactly ``sorted(decorated)[:k]`` either way (the tuples embed unique
    node ids, so the order is total and both algorithms must agree); the
    split picks the faster one. CPython's C ``sorted`` beats the partly
    Python-level ``heapq.nsmallest`` loop until the pool is several times
    larger than ``k`` — gossip pools are usually view+buffer sized, but
    assembly-fed candidate pools (UO1 → core feeds, large helper layers)
    do outgrow it.
    """
    if len(decorated) <= 4 * k:
        return sorted(decorated)[:k]
    return heapq.nsmallest(k, decorated)


class Proximity:
    """A proximity function over layer profiles.

    ``distance(a, b)`` must be non-negative; smaller means "prefer as a
    neighbour". ``eligible(a, b)`` filters descriptors a node may keep at all
    (the layered runtime uses this to restrict, e.g., a component's core
    overlay to same-component descriptors).

    The default implementation delegates to a plain callable, so simple
    metrics can be passed as functions.
    """

    def __init__(self, distance: Callable[[Profile, Profile], float]):
        self._distance = distance

    def distance(self, a: Profile, b: Profile) -> float:
        return self._distance(a, b)

    def eligible(self, a: Profile, b: Profile) -> bool:
        return True


class FilteredProximity(Proximity):
    """A proximity with an eligibility predicate."""

    def __init__(
        self,
        distance: Callable[[Profile, Profile], float],
        eligible: Callable[[Profile, Profile], bool],
    ):
        super().__init__(distance)
        self._eligible = eligible

    def eligible(self, a: Profile, b: Profile) -> bool:
        return self._eligible(a, b)


def dedupe_youngest(descriptors: Iterable[Descriptor]) -> List[Descriptor]:
    """Collapse duplicates by node id, keeping the youngest copy of each."""
    best: Dict[int, Descriptor] = {}
    for descriptor in descriptors:
        best[descriptor.node_id] = youngest(best.get(descriptor.node_id), descriptor)
    return list(best.values())


def batch_distances(
    reference: Profile,
    profiles: List[Profile],
    proximity: Proximity,
) -> List[float]:
    """Distances from ``reference`` to each profile, in one tight pass.

    The batch companion of :func:`select_closest`'s inner loop, shared with
    the columnar view's ranking path: the memo of a bound
    :class:`~repro.perf.cache.DistanceCache` is read at C speed
    (``dict.get`` per profile), and without a memo the metric callable is
    unwrapped once so the loop pays exactly one call per distance instead
    of two or three delegation frames per pair.
    """
    lookup = getattr(proximity, "lookup_for", None)
    memo = lookup(reference) if lookup is not None else None
    if memo is not None:
        memo_get, compute = memo
        out = []
        for profile in profiles:
            distance = memo_get(profile)
            out.append(compute(profile) if distance is None else distance)
        return out
    source = getattr(proximity, "base", proximity)
    if type(source).distance is Proximity.distance:
        distance_fn = source._distance
    else:
        distance_fn = source.distance
    return [distance_fn(reference, profile) for profile in profiles]


def rank_by_distance(
    descriptors: Iterable[Descriptor],
    reference: Profile,
    proximity: Proximity,
) -> List[Descriptor]:
    """Sort descriptors by increasing distance to ``reference`` (stable)."""
    return sorted(
        descriptors,
        key=lambda d: (proximity.distance(reference, d.profile), d.node_id),
    )


def select_closest(
    descriptors: Iterable[Descriptor],
    reference: Profile,
    proximity: Proximity,
    k: int,
    exclude_id: int = -1,
) -> List[Descriptor]:
    """The ``k`` eligible descriptors closest to ``reference``.

    Deduplicates by node id (youngest wins), applies the proximity's
    eligibility filter, and never returns ``exclude_id`` (a node must not
    select itself as its own neighbour).

    This is *the* hot loop of every gossip round (see docs/performance.md),
    so it is written for per-descriptor cost: dedupe inlined (no helper
    call per item), the eligibility call skipped when the proximity uses
    the vacuous default, distances pulled from the proximity's memo dict at
    C speed when one is bound to ``reference``, and the ranking done over
    pre-decorated ``(distance, node_id, ...)`` tuples by :func:`_top_k`
    (``heapq.nsmallest`` in O(n log k) once the pool outgrows ``k``, a C
    sort below that). Node ids are unique after deduplication, so the
    (distance, id) prefix is a total order and ties cannot reorder between
    this and the reference ``sorted`` implementation (pinned by
    tests/gossip/test_selection_properties.py).
    """
    best: Dict[int, Descriptor] = {}
    for descriptor in descriptors:
        node_id = descriptor.node_id
        current = best.get(node_id)
        if current is None or descriptor.age < current.age:
            best[node_id] = descriptor
    best.pop(exclude_id, None)

    eligible = proximity.eligible
    if getattr(eligible, "__func__", None) is Proximity.eligible:
        eligible = None  # the base implementation is vacuously true

    lookup = getattr(proximity, "lookup_for", None)
    memo = lookup(reference) if lookup is not None else None
    decorated = []
    if memo is not None:
        memo_get, compute = memo
        for descriptor in best.values():
            if eligible is not None and not eligible(reference, descriptor.profile):
                continue
            profile = descriptor.profile
            distance = memo_get(profile)
            if distance is None:
                distance = compute(profile)
            decorated.append((distance, descriptor.node_id, descriptor))
    else:
        # Unwrap delegation layers so the loop pays one call per distance:
        # a DistanceCache computes exactly base.distance(a, b) for every
        # query, and the default Proximity.distance only forwards to the
        # raw metric callable (overriding subclasses keep their frame).
        source = getattr(proximity, "base", proximity)
        if type(source).distance is Proximity.distance:
            distance_fn = source._distance
        else:
            distance_fn = source.distance
        for descriptor in best.values():
            if eligible is not None and not eligible(reference, descriptor.profile):
                continue
            decorated.append(
                (distance_fn(reference, descriptor.profile), descriptor.node_id, descriptor)
            )
    return [item[2] for item in _top_k(decorated, k)]
