"""Proximity functions and descriptor-selection helpers.

Vicinity and T-Man are *generic* greedy optimizers: the target topology is
entirely encoded in a user-supplied proximity (or ranking) function. This
module defines that interface and the ranking helpers shared by the overlay
protocols.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List

from repro.gossip.descriptors import Descriptor, youngest

#: Profiles are opaque to the gossip layer; shapes and the runtime define them.
Profile = Any


class Proximity:
    """A proximity function over layer profiles.

    ``distance(a, b)`` must be non-negative; smaller means "prefer as a
    neighbour". ``eligible(a, b)`` filters descriptors a node may keep at all
    (the layered runtime uses this to restrict, e.g., a component's core
    overlay to same-component descriptors).

    The default implementation delegates to a plain callable, so simple
    metrics can be passed as functions.
    """

    def __init__(self, distance: Callable[[Profile, Profile], float]):
        self._distance = distance

    def distance(self, a: Profile, b: Profile) -> float:
        return self._distance(a, b)

    def eligible(self, a: Profile, b: Profile) -> bool:
        return True


class FilteredProximity(Proximity):
    """A proximity with an eligibility predicate."""

    def __init__(
        self,
        distance: Callable[[Profile, Profile], float],
        eligible: Callable[[Profile, Profile], bool],
    ):
        super().__init__(distance)
        self._eligible = eligible

    def eligible(self, a: Profile, b: Profile) -> bool:
        return self._eligible(a, b)


def dedupe_youngest(descriptors: Iterable[Descriptor]) -> List[Descriptor]:
    """Collapse duplicates by node id, keeping the youngest copy of each."""
    best: Dict[int, Descriptor] = {}
    for descriptor in descriptors:
        best[descriptor.node_id] = youngest(best.get(descriptor.node_id), descriptor)
    return list(best.values())


def rank_by_distance(
    descriptors: Iterable[Descriptor],
    reference: Profile,
    proximity: Proximity,
) -> List[Descriptor]:
    """Sort descriptors by increasing distance to ``reference`` (stable)."""
    return sorted(
        descriptors,
        key=lambda d: (proximity.distance(reference, d.profile), d.node_id),
    )


def select_closest(
    descriptors: Iterable[Descriptor],
    reference: Profile,
    proximity: Proximity,
    k: int,
    exclude_id: int = -1,
) -> List[Descriptor]:
    """The ``k`` eligible descriptors closest to ``reference``.

    Deduplicates by node id (youngest wins), applies the proximity's
    eligibility filter, and never returns ``exclude_id`` (a node must not
    select itself as its own neighbour).
    """
    pool = [
        descriptor
        for descriptor in dedupe_youngest(descriptors)
        if descriptor.node_id != exclude_id
        and proximity.eligible(reference, descriptor.profile)
    ]
    return rank_by_distance(pool, reference, proximity)[:k]
