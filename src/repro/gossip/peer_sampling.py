"""Gossip-based peer sampling (Jelasity et al., ACM TOCS 2007).

The bottom layer of the paper's runtime (Figure 1, "Global peer sampling"):
maintains, at each node, a small uniformly random sample of the live
population. The implementation follows the generic framework of the TOCS
paper — push-pull view exchange with the *healer* (H) and *swapper* (S)
parameters — with tail (oldest-first) peer selection, the configuration shown
there to give the best self-healing behaviour.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional

from repro.gossip.descriptors import Descriptor
from repro.gossip.views import make_view
from repro.sim.config import GossipParams
from repro.sim.engine import RoundContext
from repro.sim.network import Network
from repro.sim.protocol import Protocol
from repro.sim.transport import ExchangeRequest


class PeerSampling(Protocol):
    """One node's instance of the peer-sampling service.

    Parameters
    ----------
    node_id:
        The hosting node's identity (advertised in gossip).
    params:
        View size *C*, buffer size, healer *H* and swapper *S*.
    layer:
        Transport accounting label; also the name under which the protocol is
        attached, so that upper layers can find it via ``node.protocol``.
    select_tail:
        If true (default), gossip with the oldest view entry; otherwise with
        a uniformly random one.
    """

    def __init__(
        self,
        node_id: int,
        params: Optional[GossipParams] = None,
        layer: str = "peer_sampling",
        select_tail: bool = True,
    ):
        self.node_id = node_id
        self.params = params or GossipParams()
        self.layer = layer
        self.select_tail = select_tail
        self.view = make_view(self.params)
        self._self_descriptor = Descriptor(node_id, age=0, profile=None)
        # Pre-resolved (name, layer) counter keys: the hot path hands these
        # to Instrument.count_key so no tuple is allocated per increment.
        self._k_exchanges = ("exchanges", layer)
        self._k_sent = ("descriptors_sent", layer)
        self._k_received = ("descriptors_received", layer)
        self._k_dead = ("dead_purged", layer)
        self._k_replacements = ("view_replacements", layer)
        self._k_churn = ("descriptor_churn", layer)

    # -- descriptor of the hosting node ---------------------------------------

    def self_descriptor(self) -> Descriptor:
        return self._self_descriptor

    # -- protocol interface -----------------------------------------------------

    def neighbors(self) -> List[int]:
        return self.view.ids()

    def forget(self, node_id: int) -> None:
        self.view.remove(node_id)

    def reweight(
        self, healer: Optional[int] = None, swapper: Optional[int] = None
    ) -> GossipParams:
        """Adjust the healer/swapper split of the selection policy in place.

        The selector re-weighting knob of the self-healing loop: raising
        *H* makes the select step discard old (hub-concentrating, possibly
        dead) entries more aggressively; raising *S* increases view mixing.
        Values are clamped so ``healer + swapper <= view_size`` always
        holds — the adjusted parameters re-validate on construction.
        Returns the new parameters.
        """
        params = self.params
        new_healer = params.healer if healer is None else healer
        new_healer = min(max(0, new_healer), params.view_size)
        new_swapper = params.swapper if swapper is None else swapper
        new_swapper = min(max(0, new_swapper), params.view_size - new_healer)
        self.params = GossipParams(
            view_size=params.view_size,
            gossip_size=params.gossip_size,
            healer=new_healer,
            swapper=new_swapper,
            backend=params.backend,
        )
        return self.params

    def step(self, ctx: RoundContext) -> None:
        """One active round: pick a partner, push-pull buffers, select view."""
        self.view.increase_age()
        if not ctx.exchange_ok():
            return  # this round's exchange was lost (see RoundContext.exchange_ok)
        partner = self._choose_partner(ctx)
        if partner is None:
            return
        if not ctx.transport.deliverable(ctx, partner.node_id, self.layer):
            # The transport cut this exchange (partition, lossy link). A
            # timed-out partner is unreachable, not dead: remove it so the
            # oldest-first selection does not retry it forever, but leave no
            # tombstone — it may legitimately return after healing.
            self.view.remove(partner.node_id)
            return
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        buffer = self._make_buffer(ctx, flow)
        reply = ctx.transport.exchange(
            ctx, partner.node_id, ExchangeRequest(self.layer, self.node_id, buffer)
        )
        if reply is None:
            # Sent but never answered (a real-network timeout): same
            # treatment as a link the fault gate refused.
            self.view.remove(partner.node_id)
            return
        ctx.transport.record_exchange(self.layer, len(buffer), len(reply))
        if obs is not None:
            obs.count_key(self._k_exchanges)
            obs.count_key(self._k_sent, len(buffer))
            obs.count_key(self._k_received, len(reply))
            if flow is not None:
                reply = flow.on_received(
                    self.layer, ctx.round, self.node_id, partner.node_id, reply
                )
        self._apply(ctx, sent=buffer, received=reply)

    def on_gossip(
        self, ctx: RoundContext, received: List[Descriptor]
    ) -> List[Descriptor]:
        """Passive side of an exchange: reply with a buffer, then merge."""
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        reply = self._make_buffer(ctx, flow)
        if obs is not None:
            obs.count_key(self._k_sent, len(reply))
            obs.count_key(self._k_received, len(received))
            if flow is not None:
                # ctx belongs to the active requester — the sender.
                received = flow.on_received(
                    self.layer, ctx.round, self.node_id, ctx.node.node_id, received
                )
        self._apply(ctx, sent=reply, received=received)
        return reply

    def on_request(
        self, ctx: RoundContext, request: ExchangeRequest
    ) -> List[Descriptor]:
        """Transport-seam entry point: delegate to :meth:`on_gossip`."""
        return self.on_gossip(ctx, request.payload)

    # -- bootstrap -----------------------------------------------------------------

    def bootstrap(self, rng: random.Random, network: Network, count: int = 0) -> None:
        """Fill the view with up to ``count`` random live peers.

        The equivalent of PeerSim's ``WireKOut`` initializer: without it the
        initial knowledge graph can partition into isolated islands that
        gossip can never bridge. The runtime calls this at deployment and
        for every joining node.
        """
        count = count or self.params.view_size
        candidates = [nid for nid in network.alive_ids() if nid != self.node_id]
        if not candidates:
            return
        for node_id in rng.sample(candidates, min(count, len(candidates))):
            self.view.insert(Descriptor(node_id, age=0, profile=None))

    # -- internals -----------------------------------------------------------------

    def _choose_partner(self, ctx: RoundContext) -> Optional[Descriptor]:
        """Partner selection with dead-peer healing and oracle bootstrap."""
        while len(self.view):
            candidate = (
                self.view.oldest() if self.select_tail else self.view.random(ctx.rng())
            )
            if candidate is None:
                break
            if ctx.network.is_alive(candidate.node_id):
                return candidate
            # A failed exchange acts as a failure detection: purge the entry,
            # leaving a tombstone so stale copies gossiped back by third
            # parties cannot resurrect the dead descriptor.
            self.view.purge(candidate.node_id)
            if ctx.obs is not None:
                ctx.obs.count_key(self._k_dead)
        # Empty view: re-bootstrap through the membership oracle (models a
        # node rejoining via the bootstrap service after losing all links).
        self.bootstrap(ctx.rng(), ctx.network, self.params.gossip_size)
        candidate = self.view.random(ctx.rng())
        if candidate is not None and ctx.network.node(candidate.node_id).has_protocol(
            self.layer
        ):
            return candidate
        return None

    def _make_buffer(self, ctx: RoundContext, flow=None) -> List[Descriptor]:
        """Own fresh descriptor plus a random slice of the view."""
        advert = self.self_descriptor()
        if flow is not None:
            advert = flow.advertise(advert, self.node_id, ctx.round)
        buffer = [advert]
        buffer.extend(self.view.sample(ctx.rng(), self.params.gossip_size - 1))
        return buffer

    def _apply(
        self,
        ctx: RoundContext,
        sent: List[Descriptor],
        received: List[Descriptor],
    ) -> None:
        """The framework's ``select`` step (TOCS 2007, Fig. 8).

        Merge the received buffer into an unbounded pool, then trim the
        overflow in three waves: the H oldest entries (healer), up to S of
        the entries we just shipped (swapper), then uniformly at random.
        """
        params = self.params
        pool = {d.node_id: d for d in self.view}
        for descriptor in received:
            if descriptor.node_id == self.node_id:
                continue
            current = pool.get(descriptor.node_id)
            if current is None or descriptor.age < current.age:
                pool[descriptor.node_id] = descriptor

        def excess() -> int:
            return len(pool) - params.view_size

        if excess() > 0 and params.healer > 0:
            # nsmallest == sorted[:k] (same key, same ties) in O(n log k);
            # the healer wave only ever needs the H oldest entries.
            doomed = heapq.nsmallest(
                min(params.healer, excess()),
                pool.values(),
                key=lambda d: (-d.age, d.node_id),
            )
            for descriptor in doomed:
                del pool[descriptor.node_id]
        if excess() > 0 and params.swapper > 0:
            swaps = min(params.swapper, excess())
            for descriptor in sent:
                if swaps <= 0:
                    break
                if descriptor.node_id == self.node_id:
                    continue
                if pool.pop(descriptor.node_id, None) is not None:
                    swaps -= 1
        while excess() > 0:
            victim = ctx.rng().choice(list(pool.keys()))
            del pool[victim]
        if ctx.obs is not None:
            entering = len(pool.keys() - self.view.id_set())
            ctx.obs.count_key(self._k_replacements)
            ctx.obs.count_key(self._k_churn, entering)
        self.view.replace(pool.values())
