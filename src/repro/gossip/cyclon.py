"""Cyclon — the enhanced shuffle protocol (Voulgaris, Gavidia & van Steen).

An alternative random-overlay protocol, provided for peer-sampling ablations:
instead of the H/S framework trimming, Cyclon performs a strict *swap* of
view slices, which gives in-degree distributions very close to uniform.
"""

from __future__ import annotations

from typing import List, Optional

from repro.gossip.descriptors import Descriptor
from repro.gossip.views import make_view
from repro.sim.config import GossipParams
from repro.sim.engine import RoundContext
from repro.sim.protocol import Protocol
from repro.sim.transport import ExchangeRequest


class Cyclon(Protocol):
    """One node's instance of the Cyclon shuffle.

    Each round the node removes its *oldest* neighbour from the view, sends
    it a random slice (plus its own fresh descriptor), and integrates the
    slice received in return, preferring empty slots and the slots of the
    entries it just shipped.
    """

    def __init__(
        self,
        node_id: int,
        params: Optional[GossipParams] = None,
        layer: str = "cyclon",
    ):
        self.node_id = node_id
        self.params = params or GossipParams()
        self.layer = layer
        self.view = make_view(self.params)

    def self_descriptor(self) -> Descriptor:
        return Descriptor(self.node_id, age=0, profile=None)

    def neighbors(self) -> List[int]:
        return self.view.ids()

    def forget(self, node_id: int) -> None:
        self.view.remove(node_id)

    def step(self, ctx: RoundContext) -> None:
        self.view.increase_age()
        if not ctx.exchange_ok():
            return  # this round's shuffle was lost
        partner = self._oldest_live(ctx)
        if partner is None:
            return
        if not ctx.transport.deliverable(ctx, partner.node_id, self.layer):
            # Unreachable, not dead: drop without a tombstone.
            self.view.remove(partner.node_id)
            return
        # The shuffle removes the partner from the view before sending.
        self.view.remove(partner.node_id)
        shuffle_out = [self.self_descriptor()]
        shuffle_out.extend(self.view.sample(ctx.rng(), self.params.gossip_size - 1))
        shuffle_in = ctx.transport.exchange(
            ctx,
            partner.node_id,
            ExchangeRequest(self.layer, self.node_id, shuffle_out),
        )
        if shuffle_in is None:
            return  # the partner is already out of the view
        ctx.transport.record_exchange(self.layer, len(shuffle_out), len(shuffle_in))
        self._integrate(shuffle_in, sent=shuffle_out)

    def on_shuffle(
        self, ctx: RoundContext, received: List[Descriptor]
    ) -> List[Descriptor]:
        reply = self.view.sample(ctx.rng(), self.params.gossip_size)
        self._integrate(received, sent=reply)
        return reply

    def on_request(
        self, ctx: RoundContext, request: "ExchangeRequest"
    ) -> List[Descriptor]:
        """Transport-seam entry point: delegate to :meth:`on_shuffle`."""
        return self.on_shuffle(ctx, request.payload)

    # -- internals ---------------------------------------------------------------

    def _oldest_live(self, ctx: RoundContext) -> Optional[Descriptor]:
        while len(self.view):
            candidate = self.view.oldest()
            if candidate is None:
                break
            if ctx.network.is_alive(candidate.node_id):
                return candidate
            # Dead (not merely unreachable): tombstone against resurrection.
            self.view.purge(candidate.node_id)
        node = ctx.network.random_alive(ctx.rng(), exclude=self.node_id)
        if node is None or not node.has_protocol(self.layer):
            return None
        descriptor = Descriptor(node.node_id, age=0, profile=None)
        self.view.insert(descriptor)
        return descriptor

    def _integrate(self, received: List[Descriptor], sent: List[Descriptor]) -> None:
        """Fill empty slots first, then reuse the slots of shipped entries."""
        sent_ids = [d.node_id for d in sent if d.node_id != self.node_id]
        for descriptor in received:
            if descriptor.node_id == self.node_id:
                continue
            if descriptor.node_id in self.view:
                continue  # already known, keep the resident entry
            if not self.view.is_full():
                self.view.insert(descriptor)
                continue
            replaced = False
            while sent_ids:
                victim = sent_ids.pop()
                if self.view.remove(victim):
                    self.view.insert(descriptor)
                    replaced = True
                    break
            if not replaced:
                break  # view full and nothing left to swap out
