"""Vicinity — greedy topology construction with a pinch of randomness.

Implements the protocol of Voulgaris & van Steen (Middleware 2013), the
overlay builder the paper uses for every shape component: each node greedily
keeps the ``view_size`` descriptors *closest* to itself under a user-supplied
proximity function, and gossips candidate descriptors with its current
neighbours. To escape local optima and to find far-away regions of the
profile space, the candidate pool is topped up from the peer-sampling layer
(the "pinch of randomness" of the protocol's title).

The layered runtime instantiates several Vicinity variants differing only in
their proximity function and eligibility filter — the same genericity the
original protocol advertises.
"""

from __future__ import annotations

from typing import List, Optional

from repro.gossip.descriptors import Descriptor
from repro.gossip.peer_sampling import PeerSampling
from repro.gossip.selection import Profile, Proximity, select_closest
from repro.gossip.views import make_view
from repro.perf.cache import DistanceCache
from repro.sim.config import GossipParams
from repro.sim.engine import RoundContext
from repro.sim.protocol import Protocol
from repro.sim.transport import ExchangeRequest


class Vicinity(Protocol):
    """One node's instance of a Vicinity overlay.

    Parameters
    ----------
    node_id:
        Hosting node identity.
    profile:
        This node's coordinate in the layer's profile space (e.g. its rank
        on a ring). May be updated at runtime via :meth:`set_profile` when
        the assembly is reconfigured.
    proximity:
        Distance + eligibility over profiles; *the* parameter that selects
        which topology this instance builds.
    params:
        View size and gossip buffer size.
    layer:
        Attachment/accounting label.
    random_layer:
        Name of the peer-sampling protocol on the same node used as the
        random candidate source, or ``None`` to run without it (ablation A2).
    candidate_layers:
        Additional same-node layers whose views are used as candidate
        sources (the runtime feeds a component's core protocol from UO1).
    target_degree:
        How many closest entries :meth:`neighbors` exposes; defaults to the
        full view.
    descriptor_ttl:
        Maximum descriptor age kept or re-advertised. A dead node can no
        longer mint fresh descriptors, so its stale entries age out of the
        system instead of circulating forever — without a TTL, uniform-
        distance shapes (cliques) reach a zombie equilibrium where every
        node keeps re-importing a dead low-id descriptor from its peers.
        Defaults to ``max(24, 2 × view_size)`` (a live neighbour's entry is
        refreshed far more often than that).
    """

    def __init__(
        self,
        node_id: int,
        profile: Profile,
        proximity: Proximity,
        params: Optional[GossipParams] = None,
        layer: str = "vicinity",
        random_layer: Optional[str] = "peer_sampling",
        candidate_layers: List[str] = (),
        target_degree: Optional[int] = None,
        descriptor_ttl: Optional[int] = None,
    ):
        self.node_id = node_id
        self.profile = profile
        self.proximity = proximity
        self.params = params or GossipParams()
        self.layer = layer
        self.random_layer = random_layer
        self.candidate_layers = list(candidate_layers)
        self.target_degree = target_degree or self.params.view_size
        self.descriptor_ttl = descriptor_ttl or max(24, 2 * self.params.view_size)
        self.view = make_view(self.params)
        self._self_descriptor = Descriptor(node_id, age=0, profile=profile)
        # Pre-resolved (name, layer) counter keys for Instrument.count_key.
        self._k_exchanges = ("exchanges", layer)
        self._k_sent = ("descriptors_sent", layer)
        self._k_received = ("descriptors_received", layer)
        self._k_dead = ("dead_purged", layer)
        self._k_replacements = ("view_replacements", layer)
        self._k_churn = ("descriptor_churn", layer)
        # The per-node memoized distance cache: every round this node ranks
        # the same few dozen candidate profiles against its own profile, and
        # ranking-function evaluation dominates the gossip round. The cache
        # is a drop-in Proximity, so partner-referenced rankings pass
        # through it unmemoized and unchanged.
        self._distances = DistanceCache(proximity, profile)

    # -- descriptor & profile ---------------------------------------------------

    def self_descriptor(self) -> Descriptor:
        # Cached: this is called for every candidate peek on the hot path.
        return self._self_descriptor

    def set_profile(self, profile: Profile) -> None:
        """Adopt a new profile (assembly reconfiguration).

        Entries that are no longer eligible under the new profile are
        discarded immediately so the view re-converges from valid state,
        and the memoized distances — all measured from the old profile —
        are invalidated.
        """
        self.profile = profile
        self._self_descriptor = Descriptor(self.node_id, age=0, profile=profile)
        self._distances.rebind(profile)
        self.view.discard_where(
            lambda d: not self.proximity.eligible(profile, d.profile)
        )

    # -- protocol interface --------------------------------------------------------

    def neighbors(self) -> List[int]:
        # closest_to batches the per-entry distance evaluation on columnar
        # views (one pass over the profile column, no materialization for
        # entries below the cut); identical ranking on either backend.
        best = self.view.closest_to(self.target_degree, self._distances)
        return [descriptor.node_id for descriptor in best]

    def forget(self, node_id: int) -> None:
        self.view.remove(node_id)

    def step(self, ctx: RoundContext) -> None:
        """One active round: exchange the most useful candidates with the
        oldest live neighbour, then keep the closest ``view_size`` overall."""
        self.view.increase_age()
        if not ctx.exchange_ok():
            return  # this round's exchange was lost
        partner = self._choose_partner(ctx)
        if partner is None:
            return
        if not ctx.transport.deliverable(ctx, partner.node_id, self.layer):
            # Unreachable (not dead): drop without a tombstone so the entry
            # may return once the partition heals or the link recovers.
            self.view.remove(partner.node_id)
            return
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        pool = self._candidate_pool(ctx)
        buffer = self._buffer_from(pool, partner.profile, partner.node_id, flow, ctx)
        reply = ctx.transport.exchange(
            ctx,
            partner.node_id,
            ExchangeRequest(self.layer, self.node_id, buffer, profile=self.profile),
        )
        if reply is None:
            self.view.remove(partner.node_id)
            return
        ctx.transport.record_exchange(self.layer, len(buffer), len(reply))
        if obs is not None:
            obs.count_key(self._k_exchanges)
            obs.count_key(self._k_sent, len(buffer))
            obs.count_key(self._k_received, len(reply))
            if flow is not None:
                reply = flow.on_received(
                    self.layer, ctx.round, self.node_id, partner.node_id, reply
                )
        self._merge_pool(ctx, pool, reply)

    def on_gossip(
        self,
        ctx: RoundContext,
        requester_profile: Profile,
        requester_id: int,
        received: List[Descriptor],
    ) -> List[Descriptor]:
        """Passive side: reply with candidates useful *to the requester*."""
        obs = ctx.obs
        flow = obs.flow if obs is not None else None
        pool = self._candidate_pool(ctx)
        reply = self._buffer_from(pool, requester_profile, requester_id, flow, ctx)
        if obs is not None:
            obs.count_key(self._k_sent, len(reply))
            obs.count_key(self._k_received, len(received))
            if flow is not None:
                received = flow.on_received(
                    self.layer, ctx.round, self.node_id, requester_id, received
                )
        self._merge_pool(ctx, pool, received)
        return reply

    def on_request(
        self, ctx: RoundContext, request: ExchangeRequest
    ) -> List[Descriptor]:
        """Transport-seam entry point: delegate to :meth:`on_gossip`."""
        return self.on_gossip(ctx, request.profile, request.sender, request.payload)

    # -- internals ---------------------------------------------------------------------

    def _choose_partner(self, ctx: RoundContext) -> Optional[Descriptor]:
        """The oldest live view entry; falls back to the random layer."""
        while len(self.view):
            candidate = self.view.oldest()
            if candidate is None:
                break
            if ctx.network.is_alive(candidate.node_id):
                return candidate
            # Dead (not merely unreachable): tombstone against resurrection.
            self.view.purge(candidate.node_id)
            if ctx.obs is not None:
                ctx.obs.count_key(self._k_dead)
        return self._random_partner(ctx)

    def _own_node(self, ctx: RoundContext):
        """The node hosting *this* protocol instance.

        Not ``ctx.node``: in a passive ``on_gossip`` the context belongs to
        the requester, and peeking the requester's helper layers instead of
        our own would silently mix candidate sources.
        """
        return ctx.network.node(self.node_id)

    def _random_partner(self, ctx: RoundContext) -> Optional[Descriptor]:
        """Bootstrap partner from the peer-sampling layer's view.

        Only eligible peers qualify (a core-protocol instance must gossip
        with a node that runs the same layer and passes the filter).
        """
        own = self._own_node(ctx)
        if self.random_layer is None or not own.has_protocol(self.random_layer):
            return None
        random_view = own.protocol(self.random_layer).neighbors()
        candidates = []
        for node_id in random_view:
            if node_id == self.node_id or not ctx.network.is_alive(node_id):
                continue
            if not ctx.transport.reachable(ctx, node_id):
                continue  # behind an active partition cut
            peer = ctx.network.node(node_id)
            if not peer.has_protocol(self.layer):
                continue
            peer_protocol = peer.protocol(self.layer)
            assert isinstance(peer_protocol, Vicinity)
            if self.proximity.eligible(self.profile, peer_protocol.profile):
                candidates.append(peer_protocol.self_descriptor())
        if not candidates:
            return None
        return ctx.rng().choice(candidates)

    def _candidate_pool(self, ctx: RoundContext) -> List[Descriptor]:
        """View entries plus fresh candidates from the helper layers."""
        own = self._own_node(ctx)
        pool = self.view.descriptors()
        for source in self._source_layers(own):
            for node_id in own.protocol(source).neighbors():
                if node_id == self.node_id or not ctx.network.is_alive(node_id):
                    continue
                if not ctx.transport.reachable(ctx, node_id):
                    continue  # peeking state across the cut would leak it
                peer = ctx.network.node(node_id)
                if not peer.has_protocol(self.layer):
                    continue
                peer_protocol = peer.protocol(self.layer)
                assert isinstance(peer_protocol, Vicinity)
                pool.append(peer_protocol.self_descriptor())
        return pool

    def _source_layers(self, own_node) -> List[str]:
        sources = []
        if self.random_layer is not None and own_node.has_protocol(self.random_layer):
            sources.append(self.random_layer)
        for layer in self.candidate_layers:
            if own_node.has_protocol(layer):
                sources.append(layer)
        return sources

    def _fresh(self, descriptors: List[Descriptor]) -> List[Descriptor]:
        """Drop entries past the TTL (their owner stopped refreshing them)."""
        return [d for d in descriptors if d.age <= self.descriptor_ttl]

    def _buffer_from(
        self,
        pool: List[Descriptor],
        reference: Profile,
        recipient_id: int,
        flow=None,
        ctx: Optional[RoundContext] = None,
    ) -> List[Descriptor]:
        """The ``gossip_size`` fresh candidates most useful to ``reference``."""
        advert = self.self_descriptor()
        if flow is not None and ctx is not None:
            advert = flow.advertise(advert, self.node_id, ctx.round)
        return select_closest(
            self._fresh(pool) + [advert],
            reference,
            self._distances,
            self.params.gossip_size,
            exclude_id=recipient_id,
        )

    def _merge_pool(
        self, ctx: RoundContext, pool: List[Descriptor], received: List[Descriptor]
    ) -> None:
        """Keep the ``view_size`` eligible candidates closest to self.

        Per the Vicinity algorithm, the update pool is the union of the
        current view, the received buffer, *and* the helper layers' fresh
        candidates (peer sampling and any runtime feeds) — merging the
        random layer every cycle is what lets the overlay discover regions
        the greedy exchange alone would starve. The pool is computed once
        per exchange and shared with the outgoing-buffer selection.

        Received descriptors age by one hop in transit (PeerSim semantics).
        This matters for the TTL: without in-transit aging, an attractive
        descriptor of a *dead* node can relay age-0 along intra-round
        gossip chains forever; with it, the minimum age of its copies
        strictly increases (nobody can mint fresh ones) until the TTL
        purges it everywhere.
        """
        best = select_closest(
            self._fresh(pool + [d.aged() for d in received]),
            self.profile,
            self._distances,
            self.params.view_size,
            exclude_id=self.node_id,
        )
        if ctx.obs is not None:
            ids = self.view.id_set()
            entering = sum(1 for d in best if d.node_id not in ids)
            ctx.obs.count_key(self._k_replacements)
            ctx.obs.count_key(self._k_churn, entering)
        self.view.replace(best)
