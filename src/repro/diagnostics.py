"""Structured diagnostics shared by the compiler and the static analyzers.

A :class:`Diagnostic` is one coded finding tied to a source location.  The
DSL compiler emits them for semantic errors (fail-fast callers still get the
classic :class:`~repro.errors.DslSemanticError`, built from the same data),
and the :mod:`repro.lint` subsystem emits them for every assembly-verifier
(``RPR…``) and determinism (``DET…``) rule.

Keeping the dataclass here — below both ``repro.dsl`` and ``repro.lint`` in
the import graph — lets the two share one diagnostic currency without
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Severity levels, ordered most severe first (used for sorting/reporting).
ERROR = "error"
WARNING = "warning"

_SEVERITY_ORDER = {ERROR: 0, WARNING: 1}


@dataclass(frozen=True)
class Diagnostic:
    """One coded finding of a static check.

    Attributes
    ----------
    code:
        Rule identifier (``RPR105``, ``DET003``, ...); see the catalog in
        :mod:`repro.lint.catalog` and ``docs/lint.md``.
    severity:
        ``"error"`` or ``"warning"``; only errors fail a lint run.
    message:
        Human-readable description of this specific finding.
    file:
        Source file the finding refers to, when known (``None`` for
        assemblies built programmatically).
    line, column:
        1-based position; ``0`` when no location is available.
    """

    code: str
    severity: str
    message: str
    file: Optional[str] = None
    line: int = 0
    column: int = 0

    @property
    def is_error(self) -> bool:
        return self.severity == ERROR

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.file or "", self.line, self.column, self.code)

    def format(self) -> str:
        """GCC-style one-line rendering, ``file:line:col: severity CODE: msg``."""
        prefix = ""
        if self.file:
            prefix = self.file
            if self.line:
                prefix += f":{self.line}"
                if self.column:
                    prefix += f":{self.column}"
            prefix += ": "
        elif self.line:
            prefix = f"line {self.line}: "
        return f"{prefix}{self.severity} {self.code}: {self.message}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "column": self.column,
        }


def sort_diagnostics(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order: by file, position, then code."""
    return sorted(diagnostics, key=Diagnostic.sort_key)


def has_errors(diagnostics: Iterable[Diagnostic]) -> bool:
    return any(diag.is_error for diag in diagnostics)


def count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts = {ERROR: 0, WARNING: 0}
    for diag in diagnostics:
        counts[diag.severity] = counts.get(diag.severity, 0) + 1
    return counts
