"""Fault injection and self-healing verification.

The subsystem has four planes, mirroring how real deployments fail:

- **topology** (:mod:`~repro.faults.plane`): a :class:`FaultPlane` the
  engine consults on every peer-addressed exchange — network partitions
  (reachability) and per-link quality overrides (loss, latency);
- **placement** (:mod:`~repro.faults.zones`): a :class:`ZoneMap` grouping
  nodes into availability zones so failures can be *correlated*;
- **schedule** (:mod:`~repro.faults.controls`): engine controls that fire
  and heal faults at round boundaries — :class:`Partition`,
  :class:`ZoneOutage`, :class:`PauseResume`, :class:`LinkDegradation`;
- **verification** (:mod:`repro.obs.recovery`, re-exported here): the
  :class:`RecoveryObserver` measuring per-layer time-to-repair against the
  plane's event log, and :mod:`~repro.faults.scenarios`, the standard
  fault-matrix suite behind ``python -m repro faults``.
"""

from repro.faults.controls import (
    LinkDegradation,
    Partition,
    PauseResume,
    ZoneOutage,
)
from repro.faults.plane import (
    PERFECT_LINK,
    FaultEvent,
    FaultPlane,
    LinkFaults,
    LinkQuality,
    split_by_zone,
    split_islands,
)
from repro.faults.scenarios import (
    SCENARIOS,
    ScenarioResult,
    format_scenario,
    run_fault_matrix,
)
from repro.faults.zones import ZoneMap

__all__ = [
    "PERFECT_LINK",
    "SCENARIOS",
    "EventRecovery",
    "FaultEvent",
    "FaultPlane",
    "LinkDegradation",
    "LinkFaults",
    "LinkQuality",
    "Partition",
    "PauseResume",
    "RecoveryObserver",
    "RecoveryReport",
    "ScenarioResult",
    "ZoneMap",
    "ZoneOutage",
    "format_scenario",
    "run_fault_matrix",
    "split_by_zone",
    "split_islands",
]

#: Recovery verification moved to repro.obs.recovery; these re-exports are
#: lazy because obs.recovery itself imports repro.faults.plane (importing it
#: here at module level would make the package cycle on itself).
_RECOVERY_EXPORTS = ("EventRecovery", "RecoveryObserver", "RecoveryReport")


def __getattr__(name: str):
    if name in _RECOVERY_EXPORTS:
        from repro.obs import recovery as _recovery

        return getattr(_recovery, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
