"""Fault-injection controls: scheduled, correlated, recoverable failures.

These extend the memoryless churn models of :mod:`repro.sim.churn` with the
correlated scenarios self-stabilizing overlay work stress-tests against:

- :class:`Partition` — split the live population into islands for a window
  of rounds, then heal (WAN cut / switch failure);
- :class:`ZoneOutage` — kill or pause every node of one zone at once
  (rack / availability-zone outage);
- :class:`PauseResume` — stop a random fraction of nodes and bring them
  back later *with their stale state* (zombie VMs: long GC pauses, live
  migrations, suspended instances), distinct from crash-stop kills;
- :class:`LinkDegradation` — install per-link loss/latency overrides for a
  window of rounds (congested or flaky paths).

Every control records its transitions on the shared
:class:`~repro.faults.plane.FaultPlane` event log, which is what the
:class:`~repro.faults.recovery.RecoveryObserver` measures repair times
against.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.faults.plane import FaultPlane, LinkQuality, split_islands
from repro.gossip.descriptors import Descriptor
from repro.sim.controls import Control
from repro.sim.network import Network


def _check_window(at_round: int, until_round: Optional[int], what: str) -> None:
    if at_round < 0:
        raise ConfigurationError(f"{what}: at_round must be >= 0, got {at_round}")
    if until_round is not None and until_round <= at_round:
        raise ConfigurationError(
            f"{what}: the window must end after round {at_round}, "
            f"got {until_round}"
        )


def rendezvous_reseed(
    network: Network,
    groups: Sequence[Sequence[int]],
    rng: random.Random,
    per_group: int = 4,
    layer: str = "peer_sampling",
) -> int:
    """Give up to ``per_group`` nodes of each group one cross-group contact.

    The out-of-band rendezvous (bootstrap-service re-contact) that lets
    segregated gossip overlays merge again: fully disjoint overlays have no
    epidemic path back to each other, so somebody must inject the first
    cross-group descriptor. Used by :class:`Partition` at heal time and by
    the remediation engine (:mod:`repro.heal`) whenever it detects overlay
    segregation.

    Idempotent and safe under repeated invocation: each call inserts age-0
    descriptors (which the youngest-kept view rule and the tombstone-lifting
    rule both accept cleanly), dead or departed nodes are skipped, and a
    group that has lost every member simply seeds nothing. Returns the
    number of contacts seeded.
    """
    alive_groups = [
        sorted(node_id for node_id in group if network.is_alive(node_id))
        for group in groups
    ]
    alive_groups = [group for group in alive_groups if group]
    if len(alive_groups) < 2:
        return 0
    seeded = 0
    for index, members in enumerate(alive_groups):
        foreign = [
            node_id
            for other, group in enumerate(alive_groups)
            if other != index
            for node_id in group
        ]
        seeds = rng.sample(members, min(per_group, len(members)))
        for node_id in seeds:
            node = network.node(node_id)
            if not node.has_protocol(layer):
                continue
            contact = rng.choice(foreign)
            node.protocol(layer).view.insert(
                Descriptor(contact, age=0, profile=None)
            )
            seeded += 1
    return seeded


class Partition(Control):
    """Split the live population into islands at ``at_round``; heal at
    ``heal_round``.

    Parameters
    ----------
    plane:
        The shared fault plane the engine consults.
    at_round, heal_round:
        Window of rounds during which the cut is in force.
    islands:
        Number of islands for the default random split.
    rng:
        Random stream for the default split (required unless ``island_of``
        is given).
    island_of:
        Optional custom split: a callable receiving the live id list and
        returning the ``node_id -> island`` mapping (e.g.
        :func:`~repro.faults.plane.split_by_zone` applied through a
        lambda).
    rendezvous:
        Number of nodes per island re-seeded with one cross-island contact
        when the partition heals. A long cut fully segregates the gossip
        substrate (every cross-island descriptor is timed out or aged out),
        and two disjoint overlays can never rediscover each other
        epidemically — exactly as in a real deployment, where merging a
        healed WAN partition requires an out-of-band rendezvous (the
        bootstrap / seed service). The re-seed models that re-contact; the
        epidemic merge that follows is what the recovery observer times.
        Set to 0 to model a system without a rendezvous service (the
        overlays then stay segregated — a measurable negative result).
    rendezvous_layer:
        The layer whose view receives the rendezvous descriptors.
    """

    def __init__(
        self,
        plane: FaultPlane,
        at_round: int,
        heal_round: int,
        islands: int = 2,
        rng: Optional[random.Random] = None,
        island_of: Optional[Callable[[List[int]], Dict[int, int]]] = None,
        rendezvous: int = 4,
        rendezvous_layer: str = "peer_sampling",
    ):
        _check_window(at_round, heal_round, "Partition")
        if island_of is None and rng is None:
            raise ConfigurationError(
                "Partition needs an rng for its default random split "
                "(or a custom island_of callable)"
            )
        if islands < 2:
            raise ConfigurationError(
                f"a partition needs >= 2 islands, got {islands}"
            )
        if rendezvous < 0:
            raise ConfigurationError(
                f"rendezvous must be >= 0, got {rendezvous}"
            )
        if rendezvous > 0 and rng is None:
            raise ConfigurationError(
                "rendezvous re-seeding needs an rng (pass rendezvous=0 "
                "to model a system without a bootstrap service)"
            )
        self.plane = plane
        self.at_round = at_round
        self.heal_round = heal_round
        self.islands = islands
        self.rng = rng
        self.island_of = island_of
        self.rendezvous = rendezvous
        self.rendezvous_layer = rendezvous_layer
        self.fired = False
        self.healed = False
        self._mapping: Dict[int, int] = {}

    def before_round(self, network: Network, round_index: int) -> None:
        if not self.fired and round_index >= self.at_round:
            self.fired = True
            live = list(network.alive_ids())
            if self.island_of is not None:
                mapping = self.island_of(live)
            else:
                assert self.rng is not None  # guaranteed by __init__
                mapping = split_islands(live, self.islands, self.rng)
            self._mapping = mapping
            self.plane.set_partition(mapping)
            sizes = [len(island) for island in self.plane.islands()]
            self.plane.record_event(
                round_index, "partition", f"islands={sizes}"
            )
        if self.fired and round_index >= self.heal_round:
            self.heal(network, round_index)

    def heal(self, network: Network, round_index: int) -> int:
        """Heal the cut now: clear the plane, rendezvous-reseed the islands.

        Idempotent: the first call clears the partition, re-seeds, and
        records the ``heal`` event; every later call (a remediation engine
        may fire the heal path more than once per incident) is a no-op
        returning 0. Returns the number of rendezvous contacts seeded.
        """
        if not self.fired or self.healed:
            return 0
        self.healed = True
        self.plane.clear_partition()
        seeded = self._reintroduce(network)
        self.plane.record_event(
            round_index, "heal", f"partition merged (rendezvous={seeded})"
        )
        return seeded

    def _reintroduce(self, network: Network) -> int:
        """Give ``rendezvous`` nodes per island one cross-island contact.

        Mimics the bootstrap-service re-contact that lets a real system
        merge after a cut; without it two fully segregated gossip overlays
        have no epidemic path back to each other.
        """
        if self.rendezvous == 0 or self.rng is None:
            return 0
        by_island: Dict[int, List[int]] = defaultdict(list)
        for node_id, island in self._mapping.items():
            by_island[island].append(node_id)
        return rendezvous_reseed(
            network,
            [by_island[island] for island in sorted(by_island)],
            self.rng,
            per_group=self.rendezvous,
            layer=self.rendezvous_layer,
        )

    @property
    def active(self) -> bool:
        return self.fired and not self.healed


class ZoneOutage(Control):
    """Take a whole zone down at once — the correlated cloud failure.

    ``mode="kill"`` crash-stops the zone (nodes never return; spares or
    survivors must absorb the roles). ``mode="pause"`` models a recoverable
    outage (power event, control-plane brownout): the nodes freeze with
    their state and, at ``restore_round``, resume as zombies holding views
    that are ``restore_round - at_round`` rounds stale.
    """

    def __init__(
        self,
        plane: FaultPlane,
        zone: str,
        at_round: int,
        mode: str = "kill",
        restore_round: Optional[int] = None,
    ):
        if plane.zones is None:
            raise ConfigurationError("ZoneOutage needs a plane with a ZoneMap")
        if mode not in ("kill", "pause"):
            raise ConfigurationError(
                f"ZoneOutage mode must be 'kill' or 'pause', got {mode!r}"
            )
        if mode == "pause" and restore_round is None:
            raise ConfigurationError("ZoneOutage pause mode needs a restore_round")
        if mode == "kill" and restore_round is not None:
            raise ConfigurationError(
                "ZoneOutage kill mode is permanent; drop restore_round "
                "or use mode='pause'"
            )
        _check_window(at_round, restore_round, "ZoneOutage")
        self.plane = plane
        self.zone = zone
        self.at_round = at_round
        self.mode = mode
        self.restore_round = restore_round
        self.fired = False
        self.restored = False
        self.victims: List[int] = []

    def before_round(self, network: Network, round_index: int) -> None:
        if not self.fired and round_index >= self.at_round:
            self.fired = True
            assert self.plane.zones is not None
            self.victims = self.plane.zones.members(
                self.zone, network.alive_ids()
            )
            for node_id in self.victims:
                network.kill(node_id)
            self.plane.record_event(
                round_index,
                f"zone_{self.mode}",
                f"zone={self.zone} victims={len(self.victims)}",
            )
        if (
            self.mode == "pause"
            and self.fired
            and not self.restored
            and self.restore_round is not None
            and round_index >= self.restore_round
        ):
            self.restored = True
            revived = 0
            for node_id in self.victims:
                if network.has_node(node_id) and not network.is_alive(node_id):
                    network.revive(node_id)
                    revived += 1
            self.plane.record_event(
                round_index, "zone_restore", f"zone={self.zone} revived={revived}"
            )


class PauseResume(Control):
    """Pause a random fraction of the live population, resume it later.

    The resumed nodes are *zombies*: they kept their pre-pause protocol
    state, so their views reference a world ``resume_round - at_round``
    rounds old. Dead-descriptor hygiene (view tombstones, descriptor TTLs)
    is what keeps their stale knowledge from re-polluting the overlay —
    exactly what the recovery tests quantify.
    """

    def __init__(
        self,
        plane: FaultPlane,
        rng: random.Random,
        at_round: int,
        resume_round: int,
        fraction: float,
        min_population: int = 8,
    ):
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
        _check_window(at_round, resume_round, "PauseResume")
        self.plane = plane
        self.rng = rng
        self.at_round = at_round
        self.resume_round = resume_round
        self.fraction = fraction
        self.min_population = min_population
        self.fired = False
        self.resumed = False
        self.paused: List[int] = []

    def before_round(self, network: Network, round_index: int) -> None:
        if not self.fired and round_index >= self.at_round:
            self.fired = True
            alive = list(network.alive_ids())
            n_paused = min(
                int(len(alive) * self.fraction),
                max(0, len(alive) - self.min_population),
            )
            self.paused = sorted(self.rng.sample(alive, n_paused))
            for node_id in self.paused:
                network.kill(node_id)
                network.node(node_id).attributes["paused"] = True
            self.plane.record_event(
                round_index, "pause", f"paused={len(self.paused)}"
            )
        if self.fired and not self.resumed and round_index >= self.resume_round:
            self.resumed = True
            revived = 0
            for node_id in self.paused:
                if network.has_node(node_id) and not network.is_alive(node_id):
                    network.revive(node_id)
                    revived += 1
                if network.has_node(node_id):
                    network.node(node_id).attributes.pop("paused", None)
            self.plane.record_event(round_index, "resume", f"revived={revived}")


class LinkDegradation(Control):
    """Install link-quality overrides for a window of rounds.

    ``pairs`` degrades specific node pairs, ``nodes`` every link touching
    the named nodes, ``zone_pairs`` whole zone-to-zone paths. At
    ``restore_round`` (when given) the installed rules are removed again.
    """

    def __init__(
        self,
        plane: FaultPlane,
        at_round: int,
        quality: LinkQuality,
        pairs: Iterable[Tuple[int, int]] = (),
        nodes: Iterable[int] = (),
        zone_pairs: Iterable[Tuple[str, str]] = (),
        restore_round: Optional[int] = None,
    ):
        _check_window(at_round, restore_round, "LinkDegradation")
        self.plane = plane
        self.at_round = at_round
        self.quality = quality
        self.pairs = [tuple(pair) for pair in pairs]
        self.nodes = list(nodes)
        self.zone_pairs = [tuple(pair) for pair in zone_pairs]
        if not (self.pairs or self.nodes or self.zone_pairs):
            raise ConfigurationError(
                "LinkDegradation needs at least one pair, node or zone_pair"
            )
        self.restore_round = restore_round
        self.fired = False
        self.restored = False

    def _scope(self) -> str:
        parts = []
        if self.pairs:
            parts.append(f"pairs={len(self.pairs)}")
        if self.nodes:
            parts.append(f"nodes={len(self.nodes)}")
        if self.zone_pairs:
            parts.append(f"zone_pairs={self.zone_pairs}")
        return " ".join(parts)

    def before_round(self, network: Network, round_index: int) -> None:
        if not self.fired and round_index >= self.at_round:
            self.fired = True
            for a, b in self.pairs:
                self.plane.links.set_pair(a, b, self.quality)
            for node_id in self.nodes:
                self.plane.links.set_node(node_id, self.quality)
            for zone_a, zone_b in self.zone_pairs:
                self.plane.links.set_zone_pair(zone_a, zone_b, self.quality)
            self.plane.record_event(
                round_index,
                "degrade",
                f"{self._scope()} loss={self.quality.loss} "
                f"latency={self.quality.latency}",
            )
        if (
            self.fired
            and not self.restored
            and self.restore_round is not None
            and round_index >= self.restore_round
        ):
            self.restored = True
            for a, b in self.pairs:
                self.plane.links.clear_pair(a, b)
            for node_id in self.nodes:
                self.plane.links.clear_node(node_id)
            for zone_a, zone_b in self.zone_pairs:
                self.plane.links.clear_zone_pair(zone_a, zone_b)
            self.plane.record_event(round_index, "restore", self._scope())
