"""Zone-aware node placement.

Correlated failures are the cloud's signature failure mode: machines share
racks, racks share power feeds, zones share control planes. A
:class:`ZoneMap` assigns every node to a named zone so fault controls can
kill or degrade *whole zones at once* (see
:class:`~repro.faults.controls.ZoneOutage` and zone-pair rules in
:class:`~repro.faults.plane.LinkFaults`).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.sim.network import Network


class ZoneMap:
    """A node → zone assignment.

    Nodes never seen by the assignment (e.g. joined after placement) are
    placed deterministically by ``node_id % len(zones)`` on first lookup, so
    churn under an active zone model stays well-defined.
    """

    def __init__(self, zone_names: Sequence[str]):
        if not zone_names:
            raise ConfigurationError("a ZoneMap needs at least one zone name")
        if len(set(zone_names)) != len(zone_names):
            raise ConfigurationError(f"duplicate zone names in {zone_names!r}")
        self.zone_names: List[str] = list(zone_names)
        self._zone_of: Dict[int, str] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def round_robin(
        cls, node_ids: Iterable[int], zone_names: Sequence[str]
    ) -> "ZoneMap":
        """Stripe sorted node ids across the zones (rack-aware default)."""
        zone_map = cls(zone_names)
        for index, node_id in enumerate(sorted(node_ids)):
            zone_map._zone_of[node_id] = zone_map.zone_names[
                index % len(zone_map.zone_names)
            ]
        return zone_map

    @classmethod
    def random_placement(
        cls,
        node_ids: Iterable[int],
        zone_names: Sequence[str],
        rng: random.Random,
    ) -> "ZoneMap":
        """Independent uniform placement (models unaware scheduling)."""
        zone_map = cls(zone_names)
        for node_id in sorted(node_ids):
            zone_map._zone_of[node_id] = rng.choice(zone_map.zone_names)
        return zone_map

    def annotate(self, network: Network) -> None:
        """Stamp each node's zone into ``node.attributes['zone']``."""
        for node in network.nodes():
            node.attributes["zone"] = self.zone_of(node.node_id)

    # -- lookup ---------------------------------------------------------------

    def zone_of(self, node_id: int) -> str:
        zone = self._zone_of.get(node_id)
        if zone is None:
            zone = self.zone_names[node_id % len(self.zone_names)]
            self._zone_of[node_id] = zone
        return zone

    def members(self, zone: str, node_ids: Optional[Iterable[int]] = None) -> List[int]:
        """Ids assigned to ``zone`` (restricted to ``node_ids`` when given)."""
        if zone not in self.zone_names:
            raise ConfigurationError(
                f"unknown zone {zone!r} (zones: {self.zone_names})"
            )
        if node_ids is None:
            node_ids = self._zone_of.keys()
        return sorted(nid for nid in node_ids if self.zone_of(nid) == zone)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._zone_of

    def __repr__(self) -> str:
        return f"ZoneMap(zones={self.zone_names}, placed={len(self._zone_of)})"
