"""Deprecated shim — recovery verification now lives in :mod:`repro.obs.recovery`.

The report types are re-exported silently (their canonical names are
unchanged); importing ``RecoveryObserver`` from this module emits a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings

from repro.obs.recovery import (  # noqa: F401  (compatibility re-exports)
    HEALING_KINDS,
    EventRecovery,
    RecoveryReport,
)

__all__ = [
    "HEALING_KINDS",
    "EventRecovery",
    "RecoveryObserver",
    "RecoveryReport",
]


def __getattr__(name: str):
    if name == "RecoveryObserver":
        warnings.warn(
            "repro.faults.recovery.RecoveryObserver is deprecated; "
            "import RecoveryObserver from repro.obs.recovery instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.obs.recovery import RecoveryObserver

        return RecoveryObserver
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
