"""The standard fault-matrix scenario suite.

Each scenario follows the same protocol: deploy a ring-of-rings assembly,
converge it cleanly, then inject one class of correlated failure and keep
running through the repair window while a
:class:`~repro.faults.recovery.RecoveryObserver` measures every layer's
time-to-repair. The suite is what ``python -m repro faults`` runs:

- ``partition`` — split the population into islands, heal after a window;
- ``zone-outage`` — pause one availability zone, restore it (zombies);
- ``zone-kill`` — kill one zone for good and rebalance survivors;
- ``catastrophe`` — kill a random 30% at once and rebalance;
- ``flaky-links`` — degrade one zone pair (loss + latency), then repair;
- ``pause-resume`` — freeze a random quarter of the nodes, thaw later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.runtime import Deployment, Runtime, RuntimeConfig
from repro.errors import ConfigurationError
from repro.experiments.topologies import ring_of_rings
from repro.faults.controls import (
    LinkDegradation,
    Partition,
    PauseResume,
    ZoneOutage,
)
from repro.faults.plane import FaultPlane, LinkQuality
from repro.faults.zones import ZoneMap
from repro.obs.collector import Collector
from repro.obs.hooks import attach_collector
from repro.obs.recovery import RecoveryObserver, RecoveryReport

#: Default zone layout of every zone-aware scenario.
DEFAULT_ZONES = ("zone-a", "zone-b", "zone-c", "zone-d")


@dataclass
class ScenarioResult:
    """Outcome of one fault scenario run."""

    name: str
    n_nodes: int
    seed: int
    deploy_rounds: Optional[int]
    report: RecoveryReport
    drop_reasons: Dict[str, int]
    delayed_exchanges: int
    #: HealthMonitor summary (only on instrumented runs), incl. the alert
    #: history — which rules fired during the fault window and whether they
    #: cleared after healing.
    health: Optional[Dict] = None

    @property
    def healed(self) -> bool:
        return self.report.healed


def standard_deployment(
    n_nodes: int,
    seed: int,
    config: Optional[RuntimeConfig] = None,
    collector: Optional[Collector] = None,
) -> Deployment:
    """A ring-of-rings deployment sized to ``n_nodes`` (extras are spares).

    The shared substrate of every adversarial harness: the fault matrix
    here and the corruption scenarios of :mod:`repro.heal.scenarios` deploy
    through this one helper so their numbers are comparable.
    """
    if n_nodes < 32:
        raise ConfigurationError(
            f"fault scenarios need >= 32 nodes, got {n_nodes}"
        )
    ring_size = 16 if n_nodes >= 64 else 8
    n_rings = max(2, n_nodes // ring_size)
    assembly = ring_of_rings(n_rings=n_rings, ring_size=ring_size)
    deployment = Runtime(assembly, config=config, seed=seed).deploy(n_nodes)
    if collector is not None:
        attach_collector(deployment, collector)
    return deployment


#: Internal alias kept for the scenario runners below.
_deploy = standard_deployment


def _arm_recovery(
    deployment: Deployment,
    plane: FaultPlane,
    collector: Optional[Collector] = None,
) -> RecoveryObserver:
    """Attach the recovery observer (and, when instrumented, the health
    monitor) for a fault run.

    Order matters: the recovery observer refreshes the ``layers_converged``
    and ``dead_descriptor_fraction`` gauges each round, and the health
    monitor — added last — evaluates its rules against those fresh values.
    """
    observer = RecoveryObserver.for_deployment(
        deployment, plane, instrument=collector
    )
    deployment.engine.add_observer(observer)
    deployment.recovery = observer  # type: ignore[attr-defined]
    if collector is not None:
        from repro.obs.hooks import attach_health

        attach_health(deployment, collector)
    return observer


def _result(
    name: str,
    deployment: Deployment,
    n_nodes: int,
    seed: int,
    deploy_rounds,
    collector: Optional[Collector] = None,
) -> ScenarioResult:
    observer: RecoveryObserver = deployment.recovery  # type: ignore[attr-defined]
    report = observer.report()
    monitor = getattr(collector, "health", None) if collector is not None else None
    if collector is not None:
        collector.emit(
            "scenario",
            scenario=name,
            nodes=n_nodes,
            seed=seed,
            deploy_rounds=deploy_rounds,
        )
        # Mirror the fault plane's event log into the telemetry stream: the
        # plane records injection/heal events as the scenario runs, and
        # replaying them here keeps worker-side state out of the hot path.
        for event in observer.plane.events:
            collector.emit(event.kind, at=event.round, detail=str(event.detail))
        collector.emit(
            "scenario_result",
            scenario=name,
            healed=report.healed,
            residual_dead_fraction=report.residual_dead_fraction,
        )
    return ScenarioResult(
        name=name,
        n_nodes=n_nodes,
        seed=seed,
        deploy_rounds=deploy_rounds,
        report=report,
        drop_reasons=deployment.transport.drop_reasons(),
        delayed_exchanges=deployment.transport.total_delayed(),
        health=None if monitor is None else monitor.summary(),
    )


def run_partition(
    n_nodes: int = 128,
    seed: int = 1,
    islands: int = 2,
    window: int = 20,
    recovery_rounds: int = 60,
    converge_rounds: int = 120,
    collector: Optional[Collector] = None,
) -> ScenarioResult:
    """Partition-and-heal: the acceptance scenario of the fault subsystem."""
    deployment = _deploy(n_nodes, seed, collector=collector)
    deploy_rounds = deployment.run_until_converged(converge_rounds).slowest
    plane = deployment.install_faults()
    _arm_recovery(deployment, plane, collector)
    start = deployment.engine.round
    deployment.engine.add_control(
        Partition(
            plane,
            at_round=start,
            heal_round=start + window,
            islands=islands,
            rng=deployment.streams.fork("faults").stream("partition"),
        )
    )
    deployment.run(window + recovery_rounds)
    return _result(
        "partition", deployment, n_nodes, seed, deploy_rounds, collector=collector
    )


def run_zone_outage(
    n_nodes: int = 128,
    seed: int = 1,
    window: int = 15,
    recovery_rounds: int = 60,
    converge_rounds: int = 120,
    mode: str = "pause",
    collector: Optional[Collector] = None,
) -> ScenarioResult:
    """One availability zone goes dark; paused zones come back as zombies."""
    deployment = _deploy(n_nodes, seed, collector=collector)
    deploy_rounds = deployment.run_until_converged(converge_rounds).slowest
    plane = _prepare_zone_plane(deployment, collector=collector)
    start = deployment.engine.round
    restore = start + window if mode == "pause" else None
    deployment.engine.add_control(
        ZoneOutage(
            plane,
            zone=DEFAULT_ZONES[0],
            at_round=start,
            mode=mode,
            restore_round=restore,
        )
    )
    if mode == "kill":
        # Crash-stop outages need the assignment rule re-run so survivors
        # and spares absorb the vacated roles (the self-healing reaction).
        deployment.run(1)
        deployment.rebalance()
        plane.record_event(deployment.engine.round, "rebalance", "roles reassigned")
        deployment.run(window + recovery_rounds - 1)
    else:
        deployment.run(window + recovery_rounds)
    name = "zone-outage" if mode == "pause" else "zone-kill"
    return _result(
        name, deployment, n_nodes, seed, deploy_rounds, collector=collector
    )


def _prepare_zone_plane(
    deployment: Deployment, collector: Optional[Collector] = None
) -> FaultPlane:
    zone_map = ZoneMap.round_robin(deployment.network.node_ids(), DEFAULT_ZONES)
    zone_map.annotate(deployment.network)
    plane = deployment.install_faults(FaultPlane(zones=zone_map))
    _arm_recovery(deployment, plane, collector)
    return plane


def run_catastrophe(
    n_nodes: int = 128,
    seed: int = 1,
    fraction: float = 0.3,
    recovery_rounds: int = 80,
    converge_rounds: int = 120,
    collector: Optional[Collector] = None,
) -> ScenarioResult:
    """A 30% correlated kill followed by rebalancing and self-repair."""
    deployment = _deploy(n_nodes, seed, collector=collector)
    deploy_rounds = deployment.run_until_converged(converge_rounds).slowest
    plane = deployment.install_faults()
    _arm_recovery(deployment, plane, collector)
    rng = deployment.streams.fork("faults").stream("catastrophe")
    alive = list(deployment.network.alive_ids())
    victims = rng.sample(alive, int(len(alive) * fraction))
    for node_id in victims:
        deployment.network.kill(node_id)
    plane.record_event(
        deployment.engine.round, "catastrophe", f"killed={len(victims)}"
    )
    deployment.rebalance()
    plane.record_event(deployment.engine.round, "rebalance", "roles reassigned")
    deployment.run(recovery_rounds)
    return _result(
        "catastrophe", deployment, n_nodes, seed, deploy_rounds, collector=collector
    )


def run_flaky_links(
    n_nodes: int = 128,
    seed: int = 1,
    window: int = 25,
    recovery_rounds: int = 40,
    converge_rounds: int = 120,
    loss: float = 0.6,
    latency: float = 0.5,
    collector: Optional[Collector] = None,
) -> ScenarioResult:
    """Degrade the zone-a <-> zone-b paths (loss + latency), then repair."""
    deployment = _deploy(n_nodes, seed, collector=collector)
    deploy_rounds = deployment.run_until_converged(converge_rounds).slowest
    plane = _prepare_zone_plane(deployment, collector=collector)
    start = deployment.engine.round
    deployment.engine.add_control(
        LinkDegradation(
            plane,
            at_round=start,
            quality=LinkQuality(loss=loss, latency=latency),
            zone_pairs=[(DEFAULT_ZONES[0], DEFAULT_ZONES[1])],
            restore_round=start + window,
        )
    )
    deployment.run(window + recovery_rounds)
    return _result(
        "flaky-links", deployment, n_nodes, seed, deploy_rounds, collector=collector
    )


def run_pause_resume(
    n_nodes: int = 128,
    seed: int = 1,
    fraction: float = 0.25,
    window: int = 20,
    recovery_rounds: int = 60,
    converge_rounds: int = 120,
    collector: Optional[Collector] = None,
) -> ScenarioResult:
    """Freeze a random quarter of the population; thaw it with stale views."""
    deployment = _deploy(n_nodes, seed, collector=collector)
    deploy_rounds = deployment.run_until_converged(converge_rounds).slowest
    plane = deployment.install_faults()
    _arm_recovery(deployment, plane, collector)
    start = deployment.engine.round
    deployment.engine.add_control(
        PauseResume(
            plane,
            rng=deployment.streams.fork("faults").stream("pause"),
            at_round=start,
            resume_round=start + window,
            fraction=fraction,
        )
    )
    deployment.run(window + recovery_rounds)
    return _result(
        "pause-resume", deployment, n_nodes, seed, deploy_rounds, collector=collector
    )


#: Scenario registry: name -> runner(n_nodes, seed, **defaults).
SCENARIOS: Dict[str, Callable[..., ScenarioResult]] = {
    "partition": run_partition,
    "zone-outage": run_zone_outage,
    "zone-kill": lambda **kwargs: run_zone_outage(mode="kill", **kwargs),
    "catastrophe": run_catastrophe,
    "flaky-links": run_flaky_links,
    "pause-resume": run_pause_resume,
}


def run_fault_matrix(
    n_nodes: int = 128,
    seed: int = 1,
    collector: Optional[Collector] = None,
) -> List[ScenarioResult]:
    """Run every scenario of the suite at the given scale.

    A shared ``collector`` (if any) sees every scenario's telemetry in
    sequence; the ``scenario``/``scenario_result`` markers delimit runs.
    """
    return [
        runner(n_nodes=n_nodes, seed=seed, collector=collector)
        for runner in SCENARIOS.values()
    ]


def format_scenario(result: ScenarioResult) -> str:
    """Human-readable report for one scenario run."""
    out = [
        f"scenario {result.name}: nodes={result.n_nodes} seed={result.seed} "
        f"(deployed in {result.deploy_rounds} rounds)",
        result.report.render(),
    ]
    if result.drop_reasons:
        drops = ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(result.drop_reasons.items())
        )
        out.append(f"dropped exchanges: {drops}")
    if result.delayed_exchanges:
        out.append(f"delayed exchanges: {result.delayed_exchanges}")
    if result.health is not None:
        alerts = result.health["alerts"]
        fired = ", ".join(
            f"{alert['rule']}@r{alert['round_fired']}"
            + (
                ""
                if alert["round_cleared"] is None
                else f" (cleared r{alert['round_cleared']})"
            )
            for alert in alerts
        )
        out.append(
            f"health: {result.health['verdict']} "
            f"({result.health['alerts_active']} active / "
            f"{result.health['alerts_total']} fired"
            + (f": {fired}" if fired else "")
            + ")"
        )
    out.append(f"healed: {'yes' if result.healed else 'NO'}")
    return "\n".join(out)
