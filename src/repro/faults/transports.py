"""Fault injection as stackable Transport decorators.

Historically per-link loss and latency lived only inside
``RoundContext.exchange_ok`` — reachable from the round engine, invisible
to any other runner. With the transport seam they become *decorators*: each
wraps an inner :class:`~repro.sim.transport.Transport` and vetoes (or
delays) exchanges in :meth:`deliverable`, chaining to the inner transport
otherwise. Decorators compose — ``LossTransport(LatencyTransport(base))``
— and work identically over the round engine, the loopback runner, and the
UDP runtime's local transport.

Equivalence with the legacy path is pinned by
``tests/runtime/test_fault_transport.py``: a deployment driven through
:class:`FaultTransport` (engine faults *off*) produces byte-identical
overlay digests and drop/delay accounting to the historical
``engine.faults`` plane for the same seed and fault schedule, because both
draw from the same ``("linkfaults", layer, node)`` streams in the same
order.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.faults.plane import FaultPlane
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport, TransportDecorator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import RoundContext

__all__ = [
    "TransportDecorator",
    "FaultTransport",
    "LossTransport",
    "LatencyTransport",
]


class FaultTransport(TransportDecorator):
    """A :class:`~repro.faults.plane.FaultPlane` as a transport decorator.

    Draws from the same ``("linkfaults", layer, src)`` streams as the
    legacy ``RoundContext.exchange_ok`` path and hands the plane the same
    transport for drop/delay accounting — the two paths are byte-identical
    for a fixed seed and fault schedule. While the plane has no active
    fault the decorator adds one attribute read per exchange and draws
    nothing.
    """

    def __init__(self, inner: Transport, plane: FaultPlane, streams: RandomStreams):
        super().__init__(inner)
        self.plane = plane
        self.streams = streams

    def deliverable(self, ctx: "RoundContext", dst: int, layer: str = "") -> bool:
        if self.plane.active:
            if not layer and ctx is not None:
                layer = ctx.layer
            src = ctx.node.node_id if ctx is not None else -1
            rng = self.streams.stream("linkfaults", layer, src)
            if not self.plane.exchange_ok(
                rng, src, dst, transport=self.inner, layer=layer
            ):
                return False
        return self.inner.deliverable(ctx, dst, layer)

    def reachable(self, ctx: "RoundContext", dst: int) -> bool:
        if self.plane.active:
            src = ctx.node.node_id if ctx is not None else -1
            if not self.plane.reachable(src, dst):
                return False
        return self.inner.reachable(ctx, dst)


class LossTransport(TransportDecorator):
    """Memoryless per-exchange loss as a decorator.

    Every delivery attempt independently fails with probability ``rate``;
    failures are accounted as ``"loss"`` drops on the inner ledger. The
    caller supplies the RNG (typically a named stream) so seeded runs are
    reproducible.
    """

    def __init__(self, inner: Transport, rate: float, rng: random.Random):
        if not 0.0 <= rate < 1.0:
            raise ConfigurationError(f"loss rate must be in [0, 1), got {rate}")
        super().__init__(inner)
        self.rate = rate
        self.rng = rng

    def deliverable(self, ctx: "RoundContext", dst: int, layer: str = "") -> bool:
        if self.rate > 0.0 and self.rng.random() < self.rate:
            self.inner.record_dropped(layer, reason="loss")
            return False
        return self.inner.deliverable(ctx, dst, layer)


class LatencyTransport(TransportDecorator):
    """Constant extra latency as a decorator.

    Latency at or beyond ``timeout_latency`` turns the exchange into a
    ``"timeout"`` drop (the synchronous round model cannot wait past a
    round boundary — same rule as the fault plane); anything less is
    accounted as a delayed-but-completed exchange.
    """

    def __init__(
        self, inner: Transport, latency: float, timeout_latency: float = 1.0
    ):
        if latency < 0.0:
            raise ConfigurationError(f"latency must be >= 0, got {latency}")
        if timeout_latency <= 0.0:
            raise ConfigurationError(
                f"timeout_latency must be > 0, got {timeout_latency}"
            )
        super().__init__(inner)
        self.latency = latency
        self.timeout_latency = timeout_latency

    def deliverable(self, ctx: "RoundContext", dst: int, layer: str = "") -> bool:
        if self.latency >= self.timeout_latency:
            self.inner.record_dropped(layer, reason="timeout")
            return False
        if self.latency > 0.0:
            self.inner.record_delayed(layer, self.latency)
        return self.inner.deliverable(ctx, dst, layer)
