"""The fault plane: reachability and link quality between live nodes.

The simulator's original failure vocabulary was two-fold — memoryless
per-node crashes and one global uniform ``loss_rate``. Real clouds fail in
*correlated* ways: a switch dies and a whole rack drops out, a WAN cut
splits regions into islands, a congested path loses and delays traffic for
minutes. The :class:`FaultPlane` is the single source of truth for those
conditions:

- a **partition** assigns every node to an island; exchanges between
  different islands are dropped (the engine consults
  :meth:`FaultPlane.reachable` through ``RoundContext.exchange_ok(peer)``);
- a **link-quality table** (:class:`LinkFaults`) overrides the global loss
  model per (src, dst) pair, per node, or per zone pair, each with a loss
  probability and an extra latency; the transport accounts every dropped
  and delayed exchange per layer;
- an **event log** timestamps every fault transition so the
  :class:`~repro.faults.recovery.RecoveryObserver` can report
  time-to-repair relative to injection and healing.

Controls (:mod:`repro.faults.controls`) mutate the plane at round
boundaries; the plane itself is passive state plus predicates, so a single
plane can be shared by the engine, the controls and the observers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional

from repro.errors import ConfigurationError
from repro.faults.zones import ZoneMap
from repro.sim.transport import Transport


@dataclass(frozen=True)
class LinkQuality:
    """Quality of one directed-pair class of links.

    Attributes
    ----------
    loss:
        Probability in ``[0, 1]`` that an exchange over the link is lost.
        ``1.0`` models a blackholed path (silent partition of one link).
    latency:
        Extra latency, in fractions of a round, added to each surviving
        exchange. The cycle-driven model delivers within the round, so
        latency is *accounted* (per-layer delayed counters, mean extra
        latency) rather than re-ordered; a latency at or beyond the plane's
        ``timeout_latency`` turns into a drop (the request timed out).
    """

    loss: float = 0.0
    latency: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss <= 1.0:
            raise ConfigurationError(f"link loss must be in [0, 1], got {self.loss}")
        if self.latency < 0.0:
            raise ConfigurationError(
                f"link latency must be >= 0, got {self.latency}"
            )

    @property
    def degraded(self) -> bool:
        return self.loss > 0.0 or self.latency > 0.0


PERFECT_LINK = LinkQuality()


class LinkFaults:
    """Per-link quality overrides, replacing the single global loss rate.

    Rules are matched most-specific first:

    1. an exact (unordered) node pair;
    2. a per-node rule — every link touching the node; when both endpoints
       carry one, the element-wise worst applies (loss and latency max);
    3. an (unordered) zone pair, resolved through the plane's zone map
       (``(zone, zone)`` degrades intra-zone traffic);
    4. the table's default (a perfect link unless configured otherwise).
    """

    def __init__(self, default: LinkQuality = PERFECT_LINK):
        self.default = default
        self._pairs: Dict[FrozenSet[int], LinkQuality] = {}
        self._nodes: Dict[int, LinkQuality] = {}
        self._zone_pairs: Dict[FrozenSet[str], LinkQuality] = {}

    # -- rule installation ----------------------------------------------------

    def set_pair(self, a: int, b: int, quality: LinkQuality) -> None:
        """Override the (symmetric) link between nodes ``a`` and ``b``."""
        if a == b:
            raise ConfigurationError("a link needs two distinct endpoints")
        self._pairs[frozenset((a, b))] = quality

    def set_node(self, node_id: int, quality: LinkQuality) -> None:
        """Degrade every link touching ``node_id`` (a flaky NIC / slow VM)."""
        self._nodes[node_id] = quality

    def set_zone_pair(self, zone_a: str, zone_b: str, quality: LinkQuality) -> None:
        """Degrade all traffic between two zones (or within one, if equal)."""
        self._zone_pairs[frozenset((zone_a, zone_b))] = quality

    def clear_pair(self, a: int, b: int) -> None:
        self._pairs.pop(frozenset((a, b)), None)

    def clear_node(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)

    def clear_zone_pair(self, zone_a: str, zone_b: str) -> None:
        self._zone_pairs.pop(frozenset((zone_a, zone_b)), None)

    def clear(self) -> None:
        """Drop every rule (the default quality is kept)."""
        self._pairs.clear()
        self._nodes.clear()
        self._zone_pairs.clear()

    # -- lookup ---------------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any rule (or a degraded default) is installed."""
        return bool(
            self._pairs or self._nodes or self._zone_pairs or self.default.degraded
        )

    def quality(
        self, a: int, b: int, zones: Optional[ZoneMap] = None
    ) -> LinkQuality:
        """The effective quality of the link ``a -- b``."""
        pair = self._pairs.get(frozenset((a, b)))
        if pair is not None:
            return pair
        node_a = self._nodes.get(a)
        node_b = self._nodes.get(b)
        if node_a is not None or node_b is not None:
            if node_a is None:
                return node_b  # type: ignore[return-value]
            if node_b is None:
                return node_a
            return LinkQuality(
                loss=max(node_a.loss, node_b.loss),
                latency=max(node_a.latency, node_b.latency),
            )
        if self._zone_pairs and zones is not None:
            zone_rule = self._zone_pairs.get(
                frozenset((zones.zone_of(a), zones.zone_of(b)))
            )
            if zone_rule is not None:
                return zone_rule
        return self.default

    def __repr__(self) -> str:
        return (
            f"LinkFaults(pairs={len(self._pairs)}, nodes={len(self._nodes)}, "
            f"zone_pairs={len(self._zone_pairs)})"
        )


@dataclass(frozen=True)
class FaultEvent:
    """One timestamped fault transition (injection or repair)."""

    round: int
    kind: str
    detail: str = ""

    def __str__(self) -> str:
        suffix = f" ({self.detail})" if self.detail else ""
        return f"r{self.round} {self.kind}{suffix}"


class FaultPlane:
    """Shared fault state consulted by every peer-addressed exchange.

    Parameters
    ----------
    zones:
        Optional zone placement, required for zone-pair link rules and used
        by :class:`~repro.faults.controls.ZoneOutage`.
    timeout_latency:
        Extra latency (in rounds) at which a degraded exchange is treated
        as timed out and dropped instead of merely delayed. Defaults to 1.0:
        an exchange that cannot complete within its own round misses the
        synchronous round deadline.
    """

    def __init__(
        self,
        zones: Optional[ZoneMap] = None,
        timeout_latency: float = 1.0,
    ):
        if timeout_latency <= 0.0:
            raise ConfigurationError(
                f"timeout_latency must be > 0, got {timeout_latency}"
            )
        self.zones = zones
        self.timeout_latency = timeout_latency
        self.links = LinkFaults()
        self.events: List[FaultEvent] = []
        self._island_of: Dict[int, int] = {}
        self._partition_active = False

    # -- partitions -----------------------------------------------------------

    def set_partition(self, island_of: Dict[int, int]) -> None:
        """Split the population: nodes in different islands cannot talk.

        Nodes absent from the mapping (e.g. joined mid-partition) are
        unrestricted — they model fresh instances whose placement the
        partition does not cover.
        """
        if not island_of:
            raise ConfigurationError("a partition needs a non-empty island map")
        self._island_of = dict(island_of)
        self._partition_active = True

    def clear_partition(self) -> None:
        """Heal the partition: full reachability is restored."""
        self._island_of = {}
        self._partition_active = False

    @property
    def partition_active(self) -> bool:
        return self._partition_active

    def islands(self) -> List[List[int]]:
        """The current islands as sorted id lists (empty when healed)."""
        grouped: Dict[int, List[int]] = {}
        for node_id, island in self._island_of.items():
            grouped.setdefault(island, []).append(node_id)
        return [sorted(members) for _, members in sorted(grouped.items())]

    def island_of(self, node_id: int) -> Optional[int]:
        return self._island_of.get(node_id)

    def reachable(self, a: int, b: int) -> bool:
        """Whether the active partition allows ``a`` and ``b`` to exchange."""
        if not self._partition_active:
            return True
        island_a = self._island_of.get(a)
        island_b = self._island_of.get(b)
        if island_a is None or island_b is None:
            return True
        return island_a == island_b

    # -- link quality ---------------------------------------------------------

    def quality(self, a: int, b: int) -> LinkQuality:
        return self.links.quality(a, b, self.zones)

    @property
    def active(self) -> bool:
        """Whether the plane can currently affect any exchange.

        The engine short-circuits on this, so an installed-but-idle plane
        costs nothing on the hot path.
        """
        return self._partition_active or self.links.active

    # -- the per-exchange predicate -------------------------------------------

    def exchange_ok(
        self,
        rng: random.Random,
        src: int,
        dst: int,
        transport: Optional[Transport] = None,
        layer: str = "",
    ) -> bool:
        """Whether one synchronous exchange ``src -> dst`` goes through.

        A push-pull exchange is atomic in the cycle model: if either
        direction fails the whole exchange fails, so one predicate guards
        both. Drops and delays are accounted on ``transport`` per layer.
        """
        if not self.reachable(src, dst):
            if transport is not None:
                transport.record_dropped(layer, reason="partition")
            return False
        quality = self.quality(src, dst)
        if quality.loss > 0.0 and (
            quality.loss >= 1.0 or rng.random() < quality.loss
        ):
            if transport is not None:
                transport.record_dropped(layer, reason="loss")
            return False
        if quality.latency > 0.0:
            if quality.latency >= self.timeout_latency:
                if transport is not None:
                    transport.record_dropped(layer, reason="timeout")
                return False
            if transport is not None:
                transport.record_delayed(layer, quality.latency)
        return True

    # -- event log ------------------------------------------------------------

    def record_event(self, round_index: int, kind: str, detail: str = "") -> FaultEvent:
        """Timestamp a fault transition for the recovery report."""
        event = FaultEvent(round=round_index, kind=kind, detail=detail)
        self.events.append(event)
        return event

    def events_of(self, kind: str) -> List[FaultEvent]:
        return [event for event in self.events if event.kind == kind]

    def __repr__(self) -> str:
        return (
            f"FaultPlane(partition={self._partition_active}, "
            f"links={self.links!r}, events={len(self.events)})"
        )


def split_islands(
    node_ids: List[int], islands: int, rng: random.Random
) -> Dict[int, int]:
    """A random near-equal split of ``node_ids`` into ``islands`` islands."""
    if islands < 2:
        raise ConfigurationError(f"a partition needs >= 2 islands, got {islands}")
    if len(node_ids) < islands:
        raise ConfigurationError(
            f"cannot split {len(node_ids)} node(s) into {islands} islands"
        )
    shuffled = sorted(node_ids)
    rng.shuffle(shuffled)
    island_of: Dict[int, int] = {}
    for index, node_id in enumerate(shuffled):
        island_of[node_id] = index % islands
    return island_of


def split_by_zone(zones: ZoneMap, node_ids: List[int]) -> Dict[int, int]:
    """Partition along zone boundaries (each zone becomes one island)."""
    index_of: Dict[str, int] = {
        name: index for index, name in enumerate(zones.zone_names)
    }
    return {node_id: index_of[zones.zone_of(node_id)] for node_id in node_ids}
