"""Self-healing verification: measuring recovery, not just survival.

Canonical home of the recovery observer (``repro.faults.recovery`` is a
compatibility shim). The paper claims the layered runtime "self-stabilizes
under churn". The :class:`RecoveryObserver` turns that claim into numbers:
it re-evaluates every layer's structural convergence predicate each round,
reads the fault plane's event log, and reports **time-to-repair** — for
each injected fault, how many rounds each layer needed to satisfy its
predicate again — plus the residual dead-descriptor fraction (how
completely stale knowledge was flushed) and the partition-merge time
(rounds from heal until UO1 and the core overlay span the former cut
again).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

from repro.core.convergence import (
    core_converged,
    port_connection_converged,
    port_selection_converged,
    uo1_converged,
    uo2_converged,
)
from repro.core.layers import (
    LAYER_CORE,
    LAYER_PORT_CONNECTION,
    LAYER_PORT_SELECTION,
    LAYER_UO1,
    LAYER_UO2,
)
from repro.core.roles import RoleMap
from repro.faults.plane import FaultEvent, FaultPlane
from repro.metrics.recovery import dead_descriptor_fraction
from repro.metrics.report import render_table
from repro.obs.instrument import Instrument
from repro.sim.network import Network

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.assembly import Assembly
    from repro.core.runtime import Deployment

#: Event kinds after which the system is expected to *re*-converge (the
#: repair clock starts here). Injection events (partition, pause, degrade)
#: are also reported, but their repair times describe degradation windows.
HEALING_KINDS = ("heal", "resume", "restore", "zone_restore")


@dataclass
class EventRecovery:
    """Repair measurements for one fault event.

    ``repair_rounds[layer]`` is the number of rounds from the event to the
    first subsequent observation at which the layer's predicate held
    (``None`` if it never did within the observed window); ``dipped``
    names the layers seen unconverged at least once from the event onward.
    """

    event: FaultEvent
    repair_rounds: Dict[str, Optional[int]] = field(default_factory=dict)
    dipped: List[str] = field(default_factory=list)

    @property
    def repaired(self) -> bool:
        return all(value is not None for value in self.repair_rounds.values())

    @property
    def slowest_repair(self) -> Optional[int]:
        if not self.repaired or not self.repair_rounds:
            return None
        return max(value for value in self.repair_rounds.values())


@dataclass
class RecoveryReport:
    """The fault run's verdict: per-event, per-layer time-to-repair."""

    recoveries: List[EventRecovery]
    layers: List[str]
    final_converged: Dict[str, bool]
    residual_dead_fraction: float
    observed_rounds: int

    def recovery_for(self, kind: str) -> Optional[EventRecovery]:
        """The first recovery record whose event matches ``kind``."""
        for recovery in self.recoveries:
            if recovery.event.kind == kind:
                return recovery
        return None

    def time_to_repair(self, kind: str, layer: str) -> Optional[int]:
        recovery = self.recovery_for(kind)
        if recovery is None:
            return None
        return recovery.repair_rounds.get(layer)

    @property
    def partition_merge_rounds(self) -> Optional[int]:
        """Rounds from partition heal until UO1 *and* core span the cut."""
        recovery = self.recovery_for("heal")
        if recovery is None:
            return None
        uo1 = recovery.repair_rounds.get(LAYER_UO1)
        core = recovery.repair_rounds.get(LAYER_CORE)
        if uo1 is None or core is None:
            return None
        return max(uo1, core)

    @property
    def healed(self) -> bool:
        """All layers converged at the end of the observed window."""
        return bool(self.final_converged) and all(self.final_converged.values())

    def render(self) -> str:
        """The recovery report as aligned ASCII tables."""
        headers = ["round", "event"] + [
            f"{layer} ttr" for layer in self.layers
        ]
        rows = []
        for recovery in self.recoveries:
            row = [recovery.event.round, str(recovery.event)]
            for layer in self.layers:
                value = recovery.repair_rounds.get(layer)
                row.append("-" if value is None else value)
            rows.append(row)
        out = [render_table(headers, rows, title="time-to-repair (rounds after event)")]
        out.append("")
        out.append(
            "final state: "
            + ", ".join(
                f"{layer}={'ok' if ok else 'NOT CONVERGED'}"
                for layer, ok in sorted(self.final_converged.items())
            )
        )
        out.append(
            f"residual dead-descriptor fraction: {self.residual_dead_fraction:.4f}"
        )
        merge = self.partition_merge_rounds
        if merge is not None:
            out.append(f"partition merge (uo1+core re-span the cut): {merge} rounds")
        return "\n".join(out)


class RecoveryObserver(Instrument):
    """Engine observer evaluating every layer's predicate every round.

    Unlike :class:`~repro.core.convergence.ConvergenceTracker`, which
    records only the *first* convergence round, this observer keeps the
    full boolean series so repair times can be computed relative to any
    fault event, and it never requests an early stop (a fault run must
    outlive its injected faults).

    An optional ``instrument`` mirrors each observation as telemetry: one
    ``layers_converged`` gauge and a ``dead_descriptor_fraction`` gauge per
    round (no-ops on anything but a collector).
    """

    ALL_LAYERS = (
        LAYER_CORE,
        LAYER_UO1,
        LAYER_UO2,
        LAYER_PORT_SELECTION,
        LAYER_PORT_CONNECTION,
    )

    def __init__(
        self,
        plane: FaultPlane,
        assembly_provider: Callable[[], "Assembly"],
        role_map_provider: Callable[[], RoleMap],
        uo1_view_size: int,
        uo2_scope: str = "all",
        layers: Optional[List[str]] = None,
        instrument: Optional[Instrument] = None,
    ):
        self.plane = plane
        self._assembly = assembly_provider
        self._role_map = role_map_provider
        self.uo1_view_size = uo1_view_size
        self.uo2_scope = uo2_scope
        self.layers = list(layers) if layers is not None else list(self.ALL_LAYERS)
        self.instrument = instrument
        self.rounds: List[int] = []
        self.series: Dict[str, List[bool]] = {layer: [] for layer in self.layers}
        self.dead_fraction_series: List[float] = []

    @classmethod
    def for_deployment(
        cls,
        deployment: "Deployment",
        plane: FaultPlane,
        layers: Optional[List[str]] = None,
        instrument: Optional[Instrument] = None,
    ) -> "RecoveryObserver":
        """Build an observer wired to a deployment's oracle state."""
        return cls(
            plane,
            assembly_provider=lambda: deployment.assembly,
            role_map_provider=lambda: deployment.role_map,
            uo1_view_size=deployment.config.uo1.view_size,
            uo2_scope=deployment.config.uo2_scope,
            layers=layers,
            instrument=instrument,
        )

    # -- observation ----------------------------------------------------------

    def _predicate(self, layer: str, network: Network) -> bool:
        assembly = self._assembly()
        role_map = self._role_map()
        if layer == LAYER_CORE:
            return core_converged(network, role_map, assembly)
        if layer == LAYER_UO1:
            return uo1_converged(network, role_map, assembly, self.uo1_view_size)
        if layer == LAYER_UO2:
            return uo2_converged(network, role_map, assembly, self.uo2_scope)
        if layer == LAYER_PORT_SELECTION:
            return port_selection_converged(network, role_map, assembly)
        if layer == LAYER_PORT_CONNECTION:
            return port_connection_converged(network, role_map, assembly)
        raise ValueError(f"unknown layer {layer!r}")

    def observe(self, network: Network, round_index: int) -> bool:
        self.rounds.append(round_index)
        converged = 0
        for layer in self.layers:
            held = self._predicate(layer, network)
            self.series[layer].append(held)
            converged += held
        dead_fraction = dead_descriptor_fraction(network)
        self.dead_fraction_series.append(dead_fraction)
        if self.instrument is not None:
            self.instrument.gauge("layers_converged", converged)
            self.instrument.gauge("dead_descriptor_fraction", dead_fraction)
        return False

    # -- reporting ------------------------------------------------------------

    def _repair_after(self, layer: str, event_round: int) -> Optional[int]:
        """Rounds from ``event_round`` to the first converged observation."""
        for index, observed_round in enumerate(self.rounds):
            if observed_round < event_round:
                continue
            if self.series[layer][index]:
                return observed_round - event_round
        return None

    def _dipped_after(self, layer: str, event_round: int) -> bool:
        for index, observed_round in enumerate(self.rounds):
            if observed_round < event_round:
                continue
            if not self.series[layer][index]:
                return True
        return False

    def report(self) -> RecoveryReport:
        recoveries = []
        for event in self.plane.events:
            recovery = EventRecovery(event=event)
            for layer in self.layers:
                recovery.repair_rounds[layer] = self._repair_after(
                    layer, event.round
                )
                if self._dipped_after(layer, event.round):
                    recovery.dipped.append(layer)
            recoveries.append(recovery)
        final = {
            layer: bool(self.series[layer]) and self.series[layer][-1]
            for layer in self.layers
        }
        residual = (
            self.dead_fraction_series[-1] if self.dead_fraction_series else 0.0
        )
        return RecoveryReport(
            recoveries=recoveries,
            layers=list(self.layers),
            final_converged=final,
            residual_dead_fraction=residual,
            observed_rounds=len(self.rounds),
        )
