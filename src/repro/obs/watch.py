"""The live terminal view and the span-profile table.

``repro watch`` drives an instrumented run round by round and re-renders a
compact dashboard as the overlay converges (``--once`` renders a single
snapshot after the run instead). The dashboard is a pure function of the
collector (plus the optional health monitor and flow tracer), so the same
renderer serves the live loop, the snapshot mode, and the tests.

:func:`profile_rows` turns the engine's span totals into a *self-time*
table: the engine's spans nest (``round`` ⊃ ``steps`` ⊃ ``layer:<name>``,
``round`` ⊃ ``observe``), so a layer's cost is subtracted from its parents
before sorting — the table answers "where did the wall-clock actually go",
which raw totals (where ``round`` always wins) cannot.

Rendering reads no wall clock and no RNG (DET003 applies here): simulation
time *is* the refresh clock, so the view stays deterministic per seed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.metrics.report import render_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.heal.engine import RemediationEngine
    from repro.obs.collector import Collector
    from repro.obs.health import HealthMonitor

#: Per-layer counters shown in the dashboard's layer table.
_LAYER_COUNTERS = ("exchanges", "descriptors_sent", "descriptors_received")


def _fmt(value: Optional[float], spec: str = "g") -> str:
    return "-" if value is None else format(value, spec)


def render_dashboard(
    collector: "Collector",
    health: Optional["HealthMonitor"] = None,
    round_index: Optional[int] = None,
    title: str = "repro watch",
    heal: Optional["RemediationEngine"] = None,
    nodes: Optional[Dict[int, Dict[str, Any]]] = None,
) -> str:
    """One frame of the live view: population, layers, flow, alerts.

    With ``heal`` (a remediation engine), a remediation panel follows the
    alerts: the loop's verdict and, per active incident, its escalation
    level, attempts at that level, and the next scheduled retry round.

    With ``nodes`` (swarm status records keyed by node index, as read by
    :func:`repro.runtime.swarm.read_statuses`), a per-node panel follows
    the flow table: each live node's round, gossip RTT (mean/p95 over its
    own histograms), wire bytes in/out, reply drops, relay hop count, and
    Lamport clock — the ``repro watch --swarm`` view.
    """
    out: List[str] = []
    header = title
    if round_index is not None:
        header += f" — round {round_index}"
    out.append(header)
    out.append("=" * len(header))

    alive = collector.gauge_value("population_alive")
    total = collector.gauge_value("population")
    converged = collector.gauge_value("layers_converged")
    status = [
        f"population: {_fmt(alive)}/{_fmt(total)}",
        f"layers converged: {_fmt(converged)}",
        f"events: {len(collector.events)}",
    ]
    if health is not None:
        status.append(f"health: {health.verdict()}")
    out.append("  ".join(status))
    out.append("")

    layers = collector.layers()
    if layers:
        headers = ["layer", "exchanges", "sent", "received", "deg mean", "deg max"]
        rows = []
        for layer in layers:
            rows.append(
                [layer]
                + [
                    collector.counter(name, layer=layer)
                    for name in _LAYER_COUNTERS
                ]
                + [
                    _fmt(collector.gauge_value("out_degree_mean", layer=layer), ".2f"),
                    _fmt(collector.gauge_value("out_degree_max", layer=layer)),
                ]
            )
        out.append(render_table(headers, rows, title="layers"))
        out.append("")

    flow = collector.flow
    if flow is not None and flow.layers():
        headers = ["layer", "deliveries", "lat p50", "lat p95", "critical path"]
        rows = []
        for layer in flow.layers():
            stats = flow.latency_stats(layer)
            path = flow.critical_path(layer)
            rows.append(
                [
                    layer,
                    0 if stats is None else stats["count"],
                    "-" if stats is None else stats["p50"],
                    "-" if stats is None else stats["p95"],
                    "-" if path is None else _render_path(path),
                ]
            )
        out.append(render_table(headers, rows, title="information flow"))
        out.append("")

    if nodes:
        headers = [
            "node", "round", "peers", "rtt ms", "p95 ms",
            "B out", "B in", "drops", "hops", "lamport",
        ]
        rows = []
        for node in sorted(nodes):
            record = nodes[node]
            wire = record.get("wire") or {}
            mean_ms, p95_ms = _node_rtt(record)
            rows.append(
                [
                    node,
                    record.get("round", 0),
                    record.get("peers_known", "-"),
                    _fmt(mean_ms, ".2f"),
                    _fmt(p95_ms, ".2f"),
                    wire.get("bytes_sent", 0),
                    wire.get("bytes_received", 0),
                    sum(((record.get("peer") or {}).get("drops") or {}).values()),
                    _fmt(_node_hops(record), ".1f"),
                    record.get("lamport", 0),
                ]
            )
        out.append(render_table(headers, rows, title="swarm nodes"))
        out.append("")

    if health is not None:
        active = health.active_alerts()
        if active:
            headers = ["severity", "rule", "since round", "evidence"]
            rows = [
                [
                    alert.severity,
                    alert.rule,
                    alert.round_fired,
                    _render_evidence(alert.evidence),
                ]
                for alert in active
            ]
            out.append(render_table(headers, rows, title="active alerts"))
        else:
            out.append("active alerts: none")
        out.append("")

    if heal is not None:
        active = heal.active_incidents()
        status = [
            f"remediation: {heal.verdict()}",
            f"actions run: {heal.actions_run}",
            f"escalations: {heal.escalations}",
        ]
        out.append("  ".join(status))
        if active:
            headers = ["rule", "severity", "level", "attempts", "next retry"]
            rows = [
                [
                    incident.rule,
                    incident.severity,
                    f"L{incident.level}"
                    + (" (reopened)" if incident.reopened else ""),
                    incident.attempts,
                    f"r{incident.next_round}",
                ]
                for incident in active
            ]
            out.append(render_table(headers, rows, title="active remediations"))
        out.append("")

    return "\n".join(out).rstrip() + "\n"


def _node_rtt(record: Dict[str, Any]) -> Tuple[Optional[float], Optional[float]]:
    """(mean, p95) gossip RTT in milliseconds across one node's layers."""
    from repro.obs.collector import Histogram

    merged: Optional[Histogram] = None
    for dump in (record.get("rtt") or {}).values():
        try:
            if merged is None:
                merged = Histogram.from_dict(dump)
            else:
                merged.merge_dict(dump)
        except (KeyError, TypeError, ValueError):
            continue
    if merged is None or not merged.count:
        return None, None
    return merged.mean() * 1000.0, merged.percentile(0.95) * 1000.0


def _node_hops(record: Dict[str, Any]) -> Optional[float]:
    """Mean ANNOUNCE relay hop count of one node, or ``None``."""
    from repro.obs.collector import Histogram

    dump = record.get("hops")
    if not dump:
        return None
    try:
        histogram = Histogram.from_dict(dump)
    except (KeyError, TypeError, ValueError):
        return None
    return histogram.mean() if histogram.count else None


def _render_path(path) -> str:
    chain = "->".join(str(node) for node in path.path)
    return f"{chain} (closed r{path.closed_round}, {path.hops} hops)"


def _render_evidence(evidence: Dict[str, Any]) -> str:
    parts = []
    for key in sorted(evidence):
        value = evidence[key]
        if isinstance(value, float):
            value = f"{value:.3f}"
        parts.append(f"{key}={value}")
    return " ".join(parts)


# -- span profiling ------------------------------------------------------------

#: The engine's span nesting: child span → enclosing span. The sharded
#: engine's BSP phases (``shard:request`` / ``shard:barrier`` /
#: ``shard:respond`` / ``shard:absorb``) nest directly under ``round``.
_SPAN_PARENTS = {"steps": "round", "observe": "round", "act": "round"}


def _parent_of(name: str) -> Optional[str]:
    if name.startswith("layer:"):
        return "steps"
    if name.startswith("shard:"):
        return "round"
    return _SPAN_PARENTS.get(name)


def profile_rows(collector: "Collector") -> List[Tuple[str, int, float, float]]:
    """``(span, count, total_seconds, self_seconds)`` sorted by self-time.

    Self-time is a span's total minus the totals of its direct children in
    the engine's nesting; spans outside the known hierarchy (custom spans)
    count as their own self-time.
    """
    totals = collector.spans.totals
    children_total: Dict[str, float] = {}
    for name, total in totals.items():
        parent = _parent_of(name)
        if parent is not None and parent in totals:
            children_total[parent] = children_total.get(parent, 0.0) + total
    rows = [
        (
            name,
            collector.spans.counts.get(name, 0),
            total,
            max(0.0, total - children_total.get(name, 0.0)),
        )
        for name, total in totals.items()
    ]
    rows.sort(key=lambda row: (-row[3], row[0]))
    return rows


def render_profile(collector: "Collector") -> str:
    """The per-span self-time table (``repro report --profile``)."""
    rows = profile_rows(collector)
    if not rows:
        return "no spans recorded (was the run instrumented?)"
    grand_self = sum(row[3] for row in rows) or 1.0
    table_rows = [
        [
            name,
            count,
            f"{total:.4f}",
            f"{self_time:.4f}",
            f"{100.0 * self_time / grand_self:.1f}%",
        ]
        for name, count, total, self_time in rows
    ]
    return render_table(
        ["span", "count", "total s", "self s", "self %"],
        table_rows,
        title="span profile (sorted by self-time)",
    )
