"""Wall-clock span timing — the observability pipeline's only clock.

This module is the **single sanctioned wall-clock site** of the obs
subsystem: the DET003 determinism rule forbids wall-clock reads everywhere
else under ``obs/`` (as it does for ``sim/``, ``core/``, ``gossip/`` and
``faults/``), exactly as ``perf/bench.py`` is the one sanctioned timing
harness of the perf subsystem. Simulation code never reads the clock — the
engine calls ``span_begin``/``span_end`` on its instrument and the reads
happen here, so timing can never leak into simulated logic or seed-derived
results.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List


def wall_clock() -> float:
    """The sanctioned monotonic clock read (seconds)."""
    return time.perf_counter()


class SpanTimer:
    """Named wall-clock spans with per-name totals.

    Spans do not nest per name: beginning an already-open span restarts it
    (the previous opening is discarded — a crashed round must not poison
    the totals). ``clock`` is injectable for deterministic tests.
    """

    def __init__(self, clock: Callable[[], float] = wall_clock):
        self._clock = clock
        self._open: Dict[str, float] = {}
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}

    def begin(self, name: str) -> None:
        self._open[name] = self._clock()

    def end(self, name: str) -> None:
        started = self._open.pop(name, None)
        if started is None:
            return  # unmatched end: ignore rather than corrupt totals
        elapsed = self._clock() - started
        self.totals[name] = self.totals.get(name, 0.0) + elapsed
        self.counts[name] = self.counts.get(name, 0) + 1

    def mean(self, name: str) -> float:
        """Mean duration of the closed ``name`` spans (0.0 if none)."""
        count = self.counts.get(name, 0)
        return self.totals.get(name, 0.0) / count if count else 0.0

    def names(self) -> List[str]:
        return sorted(self.totals)
