"""Wiring helpers: attach a collector to a deployment or a bare engine.

The runtime reports telemetry through ``ctx.obs`` — the engine hands every
:class:`~repro.sim.engine.RoundContext` its instrument, and protocol hot
paths guard each call with ``if ctx.obs is not None`` so an uninstrumented
run performs zero observability work. These helpers do the one-time wiring:
set the engine's sink, bind the round clock, emit the ``deploy`` event, and
register the population/convergence tracers plus the collector's own
sampled structural gauges. Optional extras ride the same call: a
:class:`~repro.obs.flow.FlowTracer` (causal propagation tracing) and a
:class:`~repro.obs.health.HealthMonitor` (typed alert rules over the
collector stream).
"""

from __future__ import annotations

from typing import Optional

from repro.obs import events as _events
from repro.obs.collector import Collector
from repro.obs.trace import ConvergenceTracer, PopulationTracer


def attach_collector(
    deployment,
    collector: Optional[Collector] = None,
    gauge_every: int = 1,
    flow=None,
    health: bool = False,
) -> Collector:
    """Wire a collector into a deployment; returns the collector.

    Emits ``deploy`` immediately, then records per-layer counters (via the
    engine's ``ctx.obs``), population and convergence events, sampled
    structural gauges, and per-round spans as rounds execute. Pass an
    existing ``collector`` to aggregate several runs into one sink.

    ``flow`` attaches a :class:`~repro.obs.flow.FlowTracer` (the gossip
    layers mint provenance tags only while one is present). ``health=True``
    adds a :class:`~repro.obs.health.HealthMonitor` with the default rule
    set as the *last* observer — after the tracers and the collector, so
    its rules read gauges already fresh for the round — and exposes it as
    ``collector.health``.
    """
    if collector is None:
        collector = Collector(gauge_every=gauge_every, flow=flow)
    elif flow is not None:
        collector.flow = flow
    engine = deployment.engine
    collector.bind_round_source(lambda: engine.round)
    engine.obs = collector
    collector.emit(
        _events.EVENT_DEPLOY,
        assembly=deployment.assembly.name,
        nodes=deployment.network.size(),
        components=len(deployment.assembly.components),
    )
    engine.add_observer(PopulationTracer(collector))
    engine.add_observer(ConvergenceTracer(collector, deployment.tracker))
    engine.add_observer(collector)
    if health:
        attach_health(deployment, collector)
    return collector


def attach_health(deployment, collector: Collector, rules=None):
    """Add a :class:`~repro.obs.health.HealthMonitor` observing ``collector``.

    Registered after every other observer (call this last) so the rules see
    the round's final gauge values; the monitor is also stored as
    ``collector.health`` for CLI/scenario access. The expected layer count
    comes from the deployment's convergence tracker.
    """
    from repro.obs.health import HealthMonitor

    expected = len(deployment.tracker.first_converged) or 5
    monitor = HealthMonitor(collector, rules=rules, expected_layers=expected)
    deployment.engine.add_observer(monitor)
    collector.health = monitor
    return monitor


def attach_collector_to_engine(
    engine,
    collector: Optional[Collector] = None,
    gauge_every: int = 1,
    flow=None,
) -> Collector:
    """Wire a collector into a bare :class:`~repro.sim.engine.Engine`.

    The deployment-level conveniences (deploy event, convergence tracer,
    health rules) need oracle state an engine does not have; this variant
    wires only the sink, the round clock, and the sampled structural
    gauges — what perf workloads and hand-built simulations need.

    Engines without an observer list (the sharded BSP engine, the UDP
    runtime) still get the sink and the round clock; they report through
    ``obs`` spans/gauges directly instead of per-round observer calls.
    """
    if collector is None:
        collector = Collector(gauge_every=gauge_every, flow=flow)
    elif flow is not None:
        collector.flow = flow
    collector.bind_round_source(lambda: engine.round)
    engine.obs = collector
    add_observer = getattr(engine, "add_observer", None)
    if add_observer is not None:
        add_observer(collector)
    return collector
