"""Exporters: JSONL event streams and Prometheus-style text snapshots.

Two complementary shapes of the same telemetry:

- **JSONL** — the event stream, one JSON object per line in the namespaced
  :meth:`~repro.obs.trace.TraceEvent.to_dict` layout. Line-oriented so
  streams from multiple runs concatenate, and :func:`read_jsonl` also
  accepts the legacy flat layout (details splatted at the top level).
- **Prometheus text** — a point-in-time snapshot of the collector's
  counters, gauges, and span totals in the exposition format, so the
  output can be diffed, scraped, or pasted into dashboards without any
  client library.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Iterable, List, Union

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.collector import Collector
    from repro.obs.trace import TraceEvent

EventSource = Union["Collector", Iterable["TraceEvent"]]


def _events_of(source: EventSource):
    events = getattr(source, "events", None)
    return events if events is not None else source


def to_jsonl(source: EventSource) -> str:
    """The event stream as JSONL (one namespaced event per line)."""
    lines = [
        json.dumps(event.to_dict(), sort_keys=True) for event in _events_of(source)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(path: str, source: EventSource) -> int:
    """Write the event stream to ``path``; return the number of events."""
    text = to_jsonl(source)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text.count("\n")


def read_jsonl(path: str) -> List["TraceEvent"]:
    """Parse a JSONL event stream (namespaced or legacy flat layout).

    Raises :class:`~repro.errors.ReproError` — with the offending line
    number — on malformed JSON or on records missing the event fields, so
    callers (the CLI in particular) can fail with a clear message instead
    of a traceback.
    """
    from repro.obs.trace import TraceEvent

    events: List[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_number}: not valid JSON ({exc.msg}) — "
                    "is this a JSONL event stream?"
                ) from exc
            try:
                events.append(TraceEvent.from_dict(record))
            except (AttributeError, KeyError, TypeError, ValueError) as exc:
                raise ReproError(
                    f"{path}:{line_number}: not an event record "
                    f"(missing/invalid field: {exc})"
                ) from exc
    return events


# -- Prometheus text exposition -----------------------------------------------


#: Anything outside the Prometheus metric-name alphabet collapses to "_".
_METRIC_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(prefix: str, name: str) -> str:
    return _METRIC_NAME_SANITIZER.sub("_", f"{prefix}_{name}")


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format.

    Backslash first (so the other escapes are not double-escaped), then
    quotes and newlines — a hostile layer label like ``evil"}\\n`` must not
    break out of the quoted value or split the sample line.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(layer: str) -> str:
    return f'{{layer="{_escape_label_value(layer)}"}}' if layer else ""


def to_prometheus(collector: "Collector", prefix: str = "repro") -> str:
    """A Prometheus-style text snapshot of the collector's aggregates.

    Counters become ``<prefix>_<name>_total``, gauges ``<prefix>_<name>``,
    histograms ``<prefix>_<name>_bucket{le=...}`` / ``_sum`` / ``_count``,
    spans ``<prefix>_span_seconds_total`` / ``<prefix>_span_count`` with a
    ``span`` label. Layer labels are attached where present.
    """
    lines: List[str] = []
    by_counter: dict = {}
    for (name, layer), value in sorted(collector.counters.items()):
        by_counter.setdefault(name, []).append((layer, value))
    for name, series in by_counter.items():
        metric = _metric_name(prefix, name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        for layer, value in series:
            lines.append(f"{metric}{_labels(layer)} {value}")
    by_gauge: dict = {}
    for (name, layer), value in sorted(collector.gauges.items()):
        by_gauge.setdefault(name, []).append((layer, value))
    for name, series in by_gauge.items():
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} gauge")
        for layer, value in series:
            lines.append(f"{metric}{_labels(layer)} {value:g}")
    by_histogram: dict = {}
    for (name, layer), histogram in sorted(
        getattr(collector, "histograms", {}).items()
    ):
        by_histogram.setdefault(name, []).append((layer, histogram))
    for name, series in by_histogram.items():
        metric = _metric_name(prefix, name)
        lines.append(f"# TYPE {metric} histogram")
        for layer, histogram in series:
            layer_label = (
                f'layer="{_escape_label_value(layer)}",' if layer else ""
            )
            for le_label, cumulative in histogram.cumulative():
                lines.append(
                    f'{metric}_bucket{{{layer_label}le="{le_label}"}} '
                    f"{cumulative}"
                )
            lines.append(f"{metric}_sum{_labels(layer)} {histogram.total:.6f}")
            lines.append(f"{metric}_count{_labels(layer)} {histogram.count}")
    span_names = collector.spans.names()
    if span_names:
        total_metric = _metric_name(prefix, "span_seconds") + "_total"
        count_metric = _metric_name(prefix, "span_count")
        lines.append(f"# TYPE {total_metric} counter")
        for name in span_names:
            lines.append(
                f'{total_metric}{{span="{_escape_label_value(name)}"}} '
                f"{collector.spans.totals[name]:.6f}"
            )
        lines.append(f"# TYPE {count_metric} counter")
        for name in span_names:
            lines.append(
                f'{count_metric}{{span="{_escape_label_value(name)}"}} '
                f"{collector.spans.counts[name]}"
            )
    events_metric = _metric_name(prefix, "events") + "_total"
    lines.append(f"# TYPE {events_metric} counter")
    lines.append(f"{events_metric} {len(collector.events)}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, collector: "Collector", prefix: str = "repro") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_prometheus(collector, prefix=prefix))
