"""The concrete telemetry sink: counters, gauges, events, and spans.

One :class:`Collector` instance aggregates everything the runtime reports
through the :class:`~repro.obs.instrument.Instrument` protocol. Counter and
gauge writes are dictionary upserts keyed by ``(name, layer)`` — no
per-call allocation beyond the tuple key — and the per-round structural
gauges (degree distributions, UO2 bucket occupancy) are *sampled*: they run
only every ``gauge_every`` rounds because they scan the population, and can
be disabled entirely (``gauge_every=0``) for overhead-sensitive runs such
as ``repro bench --obs``.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.events import is_known
from repro.obs.instrument import Instrument
from repro.obs.spans import SpanTimer, wall_clock
from repro.sim.network import Network

#: counter/gauge key: (metric name, layer label; "" = global).
MetricKey = Tuple[str, str]

#: Default bucket upper bounds: second-denominated round-trip times from
#: sub-millisecond loopback to multi-second stalls (Prometheus ``le``
#: semantics — each bound is inclusive, with an implicit +Inf bucket).
RTT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Relay hop counts (bounded by MAX_TTL = 16 on the wire).
HOP_BUCKETS: Tuple[float, ...] = (1.0, 2.0, 3.0, 4.0, 8.0, 16.0)

#: Per-metric bucket bounds; anything unlisted uses :data:`RTT_BUCKETS`.
HISTOGRAM_BUCKETS: Dict[str, Tuple[float, ...]] = {
    "gossip_rtt": RTT_BUCKETS,
    "announce_hops": HOP_BUCKETS,
}


class Histogram:
    """A fixed-bucket distribution (Prometheus histogram semantics).

    ``record()`` is O(log buckets) with zero allocation; percentiles are
    bucket-resolution approximations (the upper bound of the bucket the
    requested rank falls in), which is exactly the fidelity a scraped
    Prometheus histogram would give.
    """

    __slots__ = ("bounds", "bucket_counts", "total", "count", "vmax")

    def __init__(self, bounds: Sequence[float] = RTT_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(float(b) for b in bounds)
        if not self.bounds or list(self.bounds) != sorted(set(self.bounds)):
            raise ValueError(
                f"bucket bounds must be non-empty and strictly increasing: "
                f"{bounds}"
            )
        # One slot per bound plus the +Inf overflow bucket (non-cumulative).
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self.vmax = 0.0

    def record(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if value > self.vmax:
            self.vmax = value

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Approximate percentile: the bound of the bucket holding the rank."""
        if not self.count:
            return 0.0
        threshold = fraction * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= threshold and bucket_count:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.vmax  # +Inf bucket: best honest answer is the max
        return self.vmax

    def cumulative(self) -> List[Tuple[str, int]]:
        """``(le_label, cumulative_count)`` pairs for text exposition."""
        out: List[Tuple[str, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            running += bucket_count
            out.append((f"{bound:g}", running))
        out.append(("+Inf", self.count))
        return out

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dump (status files, snapshots, cross-process merge)."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.bucket_counts),
            "sum": self.total,
            "count": self.count,
            "max": self.vmax,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        histogram = cls(data.get("bounds") or RTT_BUCKETS)
        histogram.merge_dict(data)
        return histogram

    def merge_dict(self, data: Dict[str, Any]) -> None:
        """Add another histogram's ``to_dict()`` dump into this one.

        Bucket bounds must match — merging across processes only makes
        sense when every node bucketed the same way (they do: bounds are
        keyed by metric name).
        """
        bounds = tuple(float(b) for b in (data.get("bounds") or self.bounds))
        if bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{bounds} != {self.bounds}"
            )
        counts = data.get("counts") or []
        if len(counts) != len(self.bucket_counts):
            raise ValueError(f"bucket count mismatch: {len(counts)}")
        for index, bucket_count in enumerate(counts):
            self.bucket_counts[index] += int(bucket_count)
        self.total += float(data.get("sum") or 0.0)
        self.count += int(data.get("count") or 0)
        self.vmax = max(self.vmax, float(data.get("max") or 0.0))


class Collector(Instrument):
    """Aggregates counters, gauges, typed events, and wall-clock spans.

    Parameters
    ----------
    gauge_every:
        Sampling period (in rounds) of the population-scanning gauges
        recorded by :meth:`observe`. ``1`` samples every round, ``0``
        disables structural sampling entirely (counters, events and spans
        are still recorded — they are push-based and effectively free).
    clock:
        Injectable clock for span timing; defaults to the sanctioned
        wall-clock of :mod:`repro.obs.spans`.
    flow:
        Optional :class:`~repro.obs.flow.FlowTracer`. When present, the
        gossip layers mint provenance tags on self-advertisements and
        report every tagged delivery to it (causal propagation tracing);
        when absent the flow path costs one attribute read per exchange.
    """

    def __init__(
        self,
        gauge_every: int = 1,
        clock: Callable[[], float] = wall_clock,
        flow: Optional[object] = None,
    ):
        self.gauge_every = int(gauge_every)
        self.flow = flow
        # defaultdict: the counter upsert is the hottest instrumented call
        # (three per gossip exchange), and += on a missing-key default
        # beats get()+store there.
        self.counters: Dict[MetricKey, int] = defaultdict(int)
        self.gauges: Dict[MetricKey, float] = {}
        self.histograms: Dict[MetricKey, Histogram] = {}
        self.events: List[Any] = []
        self.unknown_kinds: Dict[str, int] = {}
        self.spans = SpanTimer(clock)
        self.rounds_observed = 0
        self._round_source: Callable[[], int] = lambda: 0

    def bind_round_source(self, source: Callable[[], int]) -> None:
        """Attach the round clock (usually ``lambda: engine.round``)."""
        self._round_source = source

    # -- Instrument protocol ---------------------------------------------------

    def emit(self, kind: str, **details: Any):
        from repro.obs.trace import TraceEvent  # deferred: trace imports events

        event = TraceEvent(round=self._round_source(), kind=kind, details=details)
        self.events.append(event)
        if not is_known(kind):
            self.unknown_kinds[kind] = self.unknown_kinds.get(kind, 0) + 1
        return event

    def count(self, name: str, value: int = 1, layer: str = "") -> None:
        self.counters[(name, layer)] += value

    def count_key(self, key: MetricKey, value: int = 1) -> None:
        # The hottest instrumented call: the key tuple is pre-resolved by
        # the caller, so this is one defaultdict upsert and nothing else.
        self.counters[key] += value

    def gauge(self, name: str, value: float, layer: str = "") -> None:
        self.gauges[(name, layer)] = value

    def histogram(self, name: str, value: float, layer: str = "") -> None:
        key = (name, layer)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = Histogram(HISTOGRAM_BUCKETS.get(name, RTT_BUCKETS))
            self.histograms[key] = histogram
        histogram.record(value)

    def span_begin(self, name: str) -> None:
        self.spans.begin(name)

    def span_end(self, name: str) -> None:
        self.spans.end(name)

    def observe(self, network: Network, round_index: int) -> bool:
        """Sampled structural gauges; never requests a stop."""
        self.rounds_observed += 1
        if self.gauge_every <= 0 or round_index % self.gauge_every != 0:
            return False
        self.gauge("population", network.size())
        self.gauge("population_alive", network.alive_count())
        self._sample_degrees(network)
        return False

    # -- structural sampling ---------------------------------------------------

    def _sample_degrees(self, network: Network) -> None:
        """Per-layer in/out-degree distributions and UO2 bucket occupancy.

        The realized graph of a layer is the union of every live node's
        ``neighbors()`` relation; in-degree is tallied over the same edges.
        Bucketed overlays (UO2) are recognized structurally — any protocol
        exposing per-component ``buckets`` of partial views — so the
        collector never imports concrete layer classes.
        """
        out_degrees: Dict[str, List[int]] = {}
        in_degrees: Dict[str, Dict[int, int]] = {}
        bucket_fill: Dict[str, List[float]] = {}
        bucket_counts: Dict[str, List[int]] = {}
        for node in network.alive_nodes():
            for layer, protocol in node.stack():
                neighbors = protocol.neighbors()
                out_degrees.setdefault(layer, []).append(len(neighbors))
                tally = in_degrees.setdefault(layer, {})
                for neighbor_id in neighbors:
                    tally[neighbor_id] = tally.get(neighbor_id, 0) + 1
                buckets = getattr(protocol, "buckets", None)
                if isinstance(buckets, dict) and buckets:
                    fills = [
                        len(bucket) / bucket.capacity
                        for bucket in buckets.values()
                        if getattr(bucket, "capacity", 0)
                    ]
                    if fills:
                        bucket_fill.setdefault(layer, []).extend(fills)
                    bucket_counts.setdefault(layer, []).append(len(buckets))
        for layer, degrees in out_degrees.items():
            self._gauge_stats("out_degree", degrees, layer)
            tally = in_degrees.get(layer, {})
            # nodes never referenced have in-degree 0; include them so the
            # mean matches the out-degree mean over the same population.
            observed = list(tally.values())
            observed.extend([0] * (len(degrees) - len(observed)))
            self._gauge_stats("in_degree", observed, layer)
        for layer, fills in bucket_fill.items():
            self.gauge("bucket_fill_mean", sum(fills) / len(fills), layer)
        for layer, counts in bucket_counts.items():
            self.gauge(
                "buckets_per_node_mean", sum(counts) / len(counts), layer
            )

    def _gauge_stats(self, prefix: str, values: List[int], layer: str) -> None:
        if not values:
            return
        self.gauge(f"{prefix}_mean", sum(values) / len(values), layer)
        self.gauge(f"{prefix}_min", min(values), layer)
        self.gauge(f"{prefix}_max", max(values), layer)

    # -- queries ---------------------------------------------------------------

    def counter(self, name: str, layer: str = "") -> int:
        return self.counters.get((name, layer), 0)

    def counter_total(self, name: str) -> int:
        """Sum of ``name`` across all layer labels."""
        return sum(
            value for (key, _layer), value in self.counters.items() if key == name
        )

    def gauge_value(self, name: str, layer: str = "") -> Optional[float]:
        return self.gauges.get((name, layer))

    def histogram_of(self, name: str, layer: str = "") -> Optional[Histogram]:
        return self.histograms.get((name, layer))

    def layers(self) -> List[str]:
        """Every non-empty layer label seen in counters or gauges, sorted."""
        labels = {layer for _name, layer in self.counters}
        labels.update(layer for _name, layer in self.gauges)
        labels.discard("")
        return sorted(labels)

    def snapshot(self) -> Dict[str, Any]:
        """Plain-data view of the aggregated state (exporter input)."""
        out = {
            "counters": [
                {"name": name, "layer": layer, "value": value}
                for (name, layer), value in sorted(self.counters.items())
            ],
            "gauges": [
                {"name": name, "layer": layer, "value": value}
                for (name, layer), value in sorted(self.gauges.items())
            ],
            "spans": [
                {
                    "name": name,
                    "total_seconds": self.spans.totals[name],
                    "count": self.spans.counts[name],
                    "mean_seconds": self.spans.mean(name),
                }
                for name in self.spans.names()
            ],
            "histograms": [
                dict(name=name, layer=layer, **histogram.to_dict())
                for (name, layer), histogram in sorted(self.histograms.items())
            ],
            "events": len(self.events),
            "unknown_event_kinds": dict(sorted(self.unknown_kinds.items())),
            "rounds_observed": self.rounds_observed,
        }
        if self.flow is not None:
            out["flow"] = self.flow.summary()
        return out
