"""Online health monitoring — typed alert rules over the telemetry stream.

A :class:`HealthMonitor` is an engine observer that re-reads the attached
:class:`~repro.obs.collector.Collector` after every round and evaluates a
set of stateful :class:`HealthRule` instances against the latest gauges and
counters. Rules are edge-triggered with hysteresis: when a rule first turns
unhealthy an ``alert`` event is emitted (with severity and the evidence
that tripped it), and when it turns healthy again an ``alert_cleared``
event follows — so the event log tells the *story* of a degradation, not a
per-round spam of symptoms.

The built-in rules watch the failure modes the fault subsystem injects:

==============================  ==============================================
rule                            fires when
==============================  ==============================================
:class:`StalledConvergence`     ``layers_converged`` makes no progress below
                                the expected layer count for a full window
:class:`PartitionSuspicion`     UO2's mean bucket fill collapses relative to
                                its own historical peak (foreign components
                                unreachable → buckets starve)
:class:`DegreeSkew`             a layer's max out-degree dwarfs its mean
                                (hub formation / lopsided overlay)
:class:`ChurnSpike`             crash+leave events in one round exceed a
                                threshold (correlated failure wave)
:class:`DeadDescriptorBuildup`  the dead-descriptor fraction stays above a
                                threshold (stale knowledge not flushed)
==============================  ==============================================

Rules only read aggregated telemetry — they never touch the network, RNG
streams, or the wall clock — so attaching a monitor preserves both the
zero-interference contract and determinism (DET003 applies here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.obs import events as _events
from repro.obs.collector import Collector
from repro.obs.instrument import Instrument
from repro.sim.network import Network

#: Alert severities, mildest first (order is the verdict ranking).
SEVERITIES = ("info", "warning", "critical")

#: Alert-transition callback: ``listener(alert, fired, round_index)``.
AlertListener = Callable[["Alert", bool, int], None]


@dataclass
class Alert:
    """One alert lifecycle: fired at a round, possibly cleared later."""

    rule: str
    severity: str
    round_fired: int
    evidence: Dict[str, Any] = field(default_factory=dict)
    round_cleared: Optional[int] = None

    @property
    def active(self) -> bool:
        return self.round_cleared is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "round_fired": self.round_fired,
            "round_cleared": self.round_cleared,
            "evidence": dict(self.evidence),
        }


class HealthRule:
    """Base of every health rule.

    Subclasses implement :meth:`check`, returning an evidence dict while
    unhealthy and ``None`` while healthy; the monitor turns the transitions
    into ``alert`` / ``alert_cleared`` events. Rules may keep state across
    rounds (windows, peaks) — one rule instance belongs to one monitor.
    """

    name = "health_rule"
    severity = "warning"

    def check(
        self, collector: Collector, network: Network, round_index: int
    ) -> Optional[Dict[str, Any]]:
        raise NotImplementedError


class StalledConvergence(HealthRule):
    """No convergence progress below the expected layer count for a window.

    Reads the ``layers_converged`` gauge (written by the convergence tracer
    and, on fault runs, refreshed by the recovery observer with the current
    — possibly regressed — count). The stall counter resets whenever the
    count increases, so a healing partition clears the alert as soon as
    re-convergence resumes.
    """

    name = "stalled_convergence"
    severity = "critical"

    def __init__(self, expected_layers: int = 5, window: int = 10):
        self.expected_layers = expected_layers
        self.window = window
        self._last: Optional[float] = None
        self._stalled_rounds = 0

    def check(self, collector, network, round_index):
        value = collector.gauge_value("layers_converged")
        if value is None:
            return None  # no convergence telemetry wired
        if value >= self.expected_layers:
            self._stalled_rounds = 0
        elif self._last is not None and value > self._last:
            self._stalled_rounds = 0  # progress
        else:
            self._stalled_rounds += 1
        self._last = value
        if self._stalled_rounds >= self.window:
            return {
                "layers_converged": value,
                "expected_layers": self.expected_layers,
                "stalled_rounds": self._stalled_rounds,
            }
        return None


class PartitionSuspicion(HealthRule):
    """UO2 bucket starvation: mean bucket fill collapses below its peak.

    Behind a partition cut, foreign-component contacts become unreachable —
    UO2 forgets them on failed exchanges and harvesting cannot refill the
    buckets — so ``bucket_fill_mean`` decays. A sustained drop below
    ``drop_fraction`` of the historical peak is strong partition evidence.
    """

    name = "partition_suspicion"
    severity = "warning"

    def __init__(
        self, layer: str = "uo2", drop_fraction: float = 0.5, window: int = 5
    ):
        self.layer = layer
        self.drop_fraction = drop_fraction
        self.window = window
        self._peak = 0.0
        self._low_rounds = 0

    def check(self, collector, network, round_index):
        fill = collector.gauge_value("bucket_fill_mean", layer=self.layer)
        if fill is None:
            return None
        self._peak = max(self._peak, fill)
        if self._peak <= 0.0:
            return None
        if fill < self.drop_fraction * self._peak:
            self._low_rounds += 1
        else:
            self._low_rounds = 0
        if self._low_rounds >= self.window:
            return {
                "layer": self.layer,
                "bucket_fill_mean": fill,
                "peak": self._peak,
                "low_rounds": self._low_rounds,
            }
        return None


class DegreeSkew(HealthRule):
    """A layer's max out-degree dwarfs its mean (hub formation)."""

    name = "degree_skew"
    severity = "warning"

    def __init__(self, max_ratio: float = 4.0, min_mean: float = 1.0):
        self.max_ratio = max_ratio
        self.min_mean = min_mean

    def check(self, collector, network, round_index):
        worst: Optional[Dict[str, Any]] = None
        for layer in collector.layers():
            mean = collector.gauge_value("out_degree_mean", layer=layer)
            peak = collector.gauge_value("out_degree_max", layer=layer)
            if mean is None or peak is None or mean < self.min_mean:
                continue
            ratio = peak / mean
            if ratio > self.max_ratio and (
                worst is None or ratio > worst["ratio"]
            ):
                worst = {
                    "layer": layer,
                    "ratio": ratio,
                    "out_degree_mean": mean,
                    "out_degree_max": peak,
                }
        return worst


class ChurnSpike(HealthRule):
    """Crash+leave events in a single round exceed a threshold."""

    name = "churn_spike"
    severity = "warning"

    def __init__(self, threshold: int = 5):
        self.threshold = threshold
        self._last_total = 0
        self._spike: Optional[Dict[str, Any]] = None

    def check(self, collector, network, round_index):
        total = collector.counter("node_crashes") + collector.counter(
            "node_leaves"
        )
        delta = total - self._last_total
        self._last_total = total
        if delta >= self.threshold:
            self._spike = {"losses_this_round": delta, "threshold": self.threshold}
        elif delta == 0:
            self._spike = None  # a quiet round clears the spike
        return self._spike


class DeadDescriptorBuildup(HealthRule):
    """Stale knowledge is not being flushed (dead-descriptor fraction high)."""

    name = "dead_descriptor_buildup"
    severity = "warning"

    def __init__(self, threshold: float = 0.2, window: int = 5):
        self.threshold = threshold
        self.window = window
        self._high_rounds = 0

    def check(self, collector, network, round_index):
        fraction = collector.gauge_value("dead_descriptor_fraction")
        if fraction is None:
            return None
        if fraction > self.threshold:
            self._high_rounds += 1
        else:
            self._high_rounds = 0
        if self._high_rounds >= self.window:
            return {
                "dead_descriptor_fraction": fraction,
                "threshold": self.threshold,
                "high_rounds": self._high_rounds,
            }
        return None


def default_rules(expected_layers: int = 5) -> List[HealthRule]:
    """The standard rule set watching every injected failure mode."""
    return [
        StalledConvergence(expected_layers=expected_layers),
        PartitionSuspicion(),
        DegreeSkew(),
        ChurnSpike(),
        DeadDescriptorBuildup(),
    ]


class HealthMonitor(Instrument):
    """Engine observer evaluating health rules against a collector.

    Add it *after* the collector (and, on fault runs, after the recovery
    observer) so each round it reads gauges that are already fresh for that
    round. Alerts are mirrored three ways: as typed ``alert`` /
    ``alert_cleared`` events on the collector, as an ``alerts_active``
    gauge, and in :attr:`alerts` for programmatic queries.
    """

    def __init__(
        self,
        collector: Collector,
        rules: Optional[Sequence[HealthRule]] = None,
        expected_layers: int = 5,
    ):
        self.collector = collector
        self.rules: List[HealthRule] = (
            list(rules) if rules is not None else default_rules(expected_layers)
        )
        #: Full alert history, in firing order (cleared ones stay).
        self.alerts: List[Alert] = []
        self._active: Dict[str, Alert] = {}
        self.rounds_checked = 0
        self._listeners: List[AlertListener] = []

    # -- subscription ---------------------------------------------------------

    def subscribe(self, listener: "AlertListener") -> None:
        """Register ``listener(alert, fired, round_index)`` for transitions.

        The listener is invoked synchronously during :meth:`observe`, once
        per edge: ``fired=True`` when a rule turns unhealthy (the alert
        opens), ``fired=False`` when it turns healthy again (the alert
        closes, ``alert.round_cleared`` already set). Listeners see alerts
        in rule-registration order within a round. This is the decide-side
        hook of the observe → decide → act loop: the remediation engine of
        :mod:`repro.heal` subscribes here and acts in the engine's act
        phase of the same round.
        """
        self._listeners.append(listener)

    def _notify(self, alert: Alert, fired: bool, round_index: int) -> None:
        for listener in self._listeners:
            listener(alert, fired, round_index)

    # -- observation ----------------------------------------------------------

    def observe(self, network: Network, round_index: int) -> bool:
        self.rounds_checked += 1
        for rule in self.rules:
            evidence = rule.check(self.collector, network, round_index)
            current = self._active.get(rule.name)
            if evidence is not None and current is None:
                alert = Alert(
                    rule=rule.name,
                    severity=rule.severity,
                    round_fired=round_index,
                    evidence=evidence,
                )
                self._active[rule.name] = alert
                self.alerts.append(alert)
                self.collector.emit(
                    _events.EVENT_ALERT,
                    rule=rule.name,
                    severity=rule.severity,
                    **evidence,
                )
                self._notify(alert, True, round_index)
            elif evidence is not None and current is not None:
                current.evidence = evidence  # keep the freshest evidence
            elif evidence is None and current is not None:
                current.round_cleared = round_index
                del self._active[rule.name]
                self.collector.emit(
                    _events.EVENT_ALERT_CLEARED,
                    rule=rule.name,
                    severity=rule.severity,
                    active_rounds=round_index - current.round_fired,
                )
                self._notify(current, False, round_index)
        self.collector.gauge("alerts_active", len(self._active))
        return False

    # -- queries --------------------------------------------------------------

    def active_alerts(self) -> List[Alert]:
        return [self._active[name] for name in sorted(self._active)]

    def verdict(self) -> str:
        """``healthy``, or the highest severity among active alerts."""
        if not self._active:
            return "healthy"
        worst = max(
            SEVERITIES.index(alert.severity) for alert in self._active.values()
        )
        return SEVERITIES[worst]

    def summary(self) -> Dict[str, Any]:
        """Plain-data view (CLI / scenario-report input)."""
        return {
            "verdict": self.verdict(),
            "rounds_checked": self.rounds_checked,
            "alerts_total": len(self.alerts),
            "alerts_active": len(self._active),
            "alerts": [alert.to_dict() for alert in self.alerts],
        }
