"""Observability — one instrumentation spine for every runtime layer.

Before this subsystem the repository grew four divergent observation
mechanisms: :class:`~repro.sim.controls.Observer` round hooks, the
:class:`~repro.sim.trace.Tracer` event log, the fault subsystem's
``RecoveryObserver``, and the ad-hoc aggregation helpers under
:mod:`repro.metrics`. ``repro.obs`` replaces them with a single layered
telemetry pipeline:

- :class:`~repro.obs.instrument.Instrument` — the unified protocol: round
  observation (``observe``), event emission (``emit``), counters
  (``count``), gauges (``gauge``), and round-scoped spans
  (``span_begin``/``span_end``). Every method is a no-op by default, so the
  disabled hot path costs one ``is None`` check and nothing else (the same
  contract the tracer always had).
- :class:`~repro.obs.collector.Collector` — the one concrete sink:
  per-layer counters (messages, descriptor churn, view replacements),
  per-round gauges (population, degree distributions, UO2 bucket
  occupancy, core convergence score), the typed event stream of
  :mod:`repro.obs.events`, and wall-clock spans timed through the single
  sanctioned clock site :mod:`repro.obs.spans` (DET003-exempt).
- :mod:`~repro.obs.export` — JSONL event streams and a Prometheus-style
  text snapshot, surfaced via ``repro obs`` and the ``--obs`` flag on
  ``repro bench`` / ``repro faults``.
- :class:`~repro.obs.flow.FlowTracer` — causal propagation tracing:
  provenance-tagged self-advertisements yield per-layer propagation-latency
  distributions, the information-flow graph, and the convergence critical
  path (``repro obs --flow``).
- :class:`~repro.obs.health.HealthMonitor` — typed online alert rules
  (stalled convergence, partition suspicion, degree skew, churn spikes,
  dead-descriptor buildup) emitting ``alert``/``alert_cleared`` events.
- :mod:`~repro.obs.watch` — the ``repro watch`` live terminal view and the
  ``repro report --profile`` per-layer self-time span table.

Collectors are wired in through :func:`~repro.obs.hooks.attach_collector`
(deployments) or the ``obs=`` parameter of
:class:`~repro.sim.engine.Engine` (bare engines); instrumentation is
deliberately excluded from overlay digests, so ``BENCH_gossip.json``
semantics digests are byte-identical with and without a collector.
"""

import importlib

#: public name -> defining submodule. Resolution is lazy (PEP 562): eager
#: imports here would cycle — obs.recovery imports core.convergence and
#: faults.plane, both of which import obs.instrument through their own
#: package fronts — and in-repo call sites import the submodules directly
#: anyway (the package front door is for interactive and downstream use).
_EXPORTS = {
    "Collector": "repro.obs.collector",
    "TAXONOMY": "repro.obs.events",
    "known_kinds": "repro.obs.events",
    "read_jsonl": "repro.obs.export",
    "to_jsonl": "repro.obs.export",
    "to_prometheus": "repro.obs.export",
    "write_jsonl": "repro.obs.export",
    "write_prometheus": "repro.obs.export",
    "CriticalPath": "repro.obs.flow",
    "Delivery": "repro.obs.flow",
    "FlowTracer": "repro.obs.flow",
    "Alert": "repro.obs.health",
    "HealthMonitor": "repro.obs.health",
    "HealthRule": "repro.obs.health",
    "default_rules": "repro.obs.health",
    "attach_collector": "repro.obs.hooks",
    "attach_collector_to_engine": "repro.obs.hooks",
    "attach_health": "repro.obs.hooks",
    "profile_rows": "repro.obs.watch",
    "render_dashboard": "repro.obs.watch",
    "render_profile": "repro.obs.watch",
    "NULL_INSTRUMENT": "repro.obs.instrument",
    "Instrument": "repro.obs.instrument",
    "NullInstrument": "repro.obs.instrument",
    "GraphObserver": "repro.obs.observers",
    "SeriesObserver": "repro.obs.observers",
    "EventRecovery": "repro.obs.recovery",
    "RecoveryObserver": "repro.obs.recovery",
    "RecoveryReport": "repro.obs.recovery",
    "ConvergenceTracer": "repro.obs.trace",
    "PopulationTracer": "repro.obs.trace",
    "TraceEvent": "repro.obs.trace",
    "Tracer": "repro.obs.trace",
    "attach_tracer": "repro.obs.trace",
}


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "NULL_INSTRUMENT",
    "TAXONOMY",
    "Alert",
    "Collector",
    "ConvergenceTracer",
    "CriticalPath",
    "Delivery",
    "EventRecovery",
    "FlowTracer",
    "GraphObserver",
    "HealthMonitor",
    "HealthRule",
    "Instrument",
    "NullInstrument",
    "PopulationTracer",
    "RecoveryObserver",
    "RecoveryReport",
    "SeriesObserver",
    "TraceEvent",
    "Tracer",
    "attach_collector",
    "attach_collector_to_engine",
    "attach_health",
    "attach_tracer",
    "default_rules",
    "known_kinds",
    "profile_rows",
    "read_jsonl",
    "render_dashboard",
    "render_profile",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
    "write_prometheus",
]
