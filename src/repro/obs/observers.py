"""General-purpose round observers (canonical home; ``repro.sim.controls``
re-exports these for backwards compatibility).

Both observers are written against the unified
:class:`~repro.obs.instrument.Instrument` protocol: they implement only the
``observe`` facet and ignore the telemetry methods.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.obs.instrument import Instrument
from repro.sim.network import Network


class SeriesObserver(Instrument):
    """Records one numeric sample per round from a metric function."""

    def __init__(self, name: str, metric: Callable[[Network, int], float]):
        self.name = name
        self._metric = metric
        self.samples: List[float] = []

    def observe(self, network: Network, round_index: int) -> bool:
        self.samples.append(self._metric(network, round_index))
        return False


class GraphObserver(Instrument):
    """Snapshots the realized overlay graph of one protocol layer each round.

    The realized graph of a layer is the union of every live node's
    :meth:`~repro.sim.protocol.Protocol.neighbors` relation — the structure
    the figures' convergence metric is defined on.
    """

    def __init__(self, layer: str, keep_history: bool = False):
        self.layer = layer
        self.keep_history = keep_history
        self.current: Dict[int, List[int]] = {}
        self.history: List[Dict[int, List[int]]] = []

    def observe(self, network: Network, round_index: int) -> bool:
        snapshot: Dict[int, List[int]] = {}
        for node in network.alive_nodes():
            if node.has_protocol(self.layer):
                snapshot[node.node_id] = list(node.protocol(self.layer).neighbors())
        self.current = snapshot
        if self.keep_history:
            self.history.append(snapshot)
        return False
