"""The typed event taxonomy of the observability pipeline.

Every event kind the runtime emits is declared here with a one-line
description; exporters and dashboards can rely on this registry instead of
reverse-engineering free-form strings. Emitting an unknown kind is allowed
(instruments are extensible), but :class:`~repro.obs.collector.Collector`
counts unknown kinds separately so taxonomy drift is visible.

The event *record* type is :class:`~repro.obs.trace.TraceEvent` — one
dataclass shared by the tracer and the collector.
"""

from __future__ import annotations

from typing import Dict, List

# -- lifecycle ----------------------------------------------------------------
EVENT_DEPLOY = "deploy"
EVENT_NODE_CRASH = "node_crash"
EVENT_NODE_LEAVE = "node_leave"
EVENT_NODE_UP = "node_up"
EVENT_NODE_ROUND = "node_round"
EVENT_LAYER_CONVERGED = "layer_converged"

# -- faults (mirrors repro.faults.plane.FaultEvent kinds) ---------------------
EVENT_PARTITION = "partition"
EVENT_HEAL = "heal"
EVENT_PAUSE = "pause"
EVENT_RESUME = "resume"
EVENT_DEGRADE = "degrade"
EVENT_RESTORE = "restore"
EVENT_ZONE_OUTAGE = "zone_outage"
EVENT_ZONE_RESTORE = "zone_restore"
EVENT_CATASTROPHE = "catastrophe"
EVENT_REBALANCE = "rebalance"

# -- harness / scenarios ------------------------------------------------------
EVENT_SEED_MEASURED = "seed_measured"
EVENT_SCENARIO = "scenario"
EVENT_SCENARIO_RESULT = "scenario_result"

# -- health monitoring (repro.obs.health) -------------------------------------
EVENT_ALERT = "alert"
EVENT_ALERT_CLEARED = "alert_cleared"

# -- self-healing (repro.heal) -------------------------------------------------
EVENT_CORRUPTION = "corruption"
EVENT_REMEDIATION = "remediation"
EVENT_REMEDIATION_ESCALATED = "remediation_escalated"
EVENT_INCIDENT_RECOVERED = "incident_recovered"
EVENT_INCIDENT_UNRECOVERABLE = "incident_unrecoverable"

#: kind → one-line description. The single source of truth for exporters,
#: docs/observability.md, and the taxonomy tests.
TAXONOMY: Dict[str, str] = {
    EVENT_DEPLOY: "an assembly was deployed onto a node population",
    EVENT_NODE_CRASH: "a known-alive node was observed dead (still present)",
    EVENT_NODE_LEAVE: "a known-alive node left the network entirely",
    EVENT_NODE_UP: "a node appeared alive (join or revival)",
    EVENT_NODE_ROUND: "one live swarm node finished a gossip round",
    EVENT_LAYER_CONVERGED: "a runtime layer's convergence predicate first held",
    EVENT_PARTITION: "the fault plane split the population into islands",
    EVENT_HEAL: "an active partition was healed",
    EVENT_PAUSE: "a set of nodes was frozen (zombie churn)",
    EVENT_RESUME: "paused nodes were thawed with stale state",
    EVENT_DEGRADE: "per-link quality overrides were installed (loss/latency)",
    EVENT_RESTORE: "degraded links were restored to perfect quality",
    EVENT_ZONE_OUTAGE: "one availability zone went dark",
    EVENT_ZONE_RESTORE: "a dark availability zone came back",
    EVENT_CATASTROPHE: "a correlated kill wave removed part of the population",
    EVENT_REBALANCE: "the role assignment was re-run over the live population",
    EVENT_SEED_MEASURED: "one seed of a multi-seed measurement completed",
    EVENT_SCENARIO: "a fault scenario run started",
    EVENT_SCENARIO_RESULT: "a fault scenario run finished with a verdict",
    EVENT_ALERT: "a health rule turned unhealthy (typed, with evidence)",
    EVENT_ALERT_CLEARED: "a previously firing health rule turned healthy again",
    EVENT_CORRUPTION: "the adversarial harness seeded corrupted overlay state",
    EVENT_REMEDIATION: "a remediation action ran against an open incident",
    EVENT_REMEDIATION_ESCALATED: "an incident climbed one escalation rung",
    EVENT_INCIDENT_RECOVERED: "a remediation incident closed (alert cleared)",
    EVENT_INCIDENT_UNRECOVERABLE: "an incident exhausted the escalation ladder",
}


def known_kinds() -> List[str]:
    """Every declared event kind, sorted."""
    return sorted(TAXONOMY)


def is_known(kind: str) -> bool:
    """Whether ``kind`` is part of the declared taxonomy."""
    return kind in TAXONOMY
