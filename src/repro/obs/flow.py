"""Causal propagation tracing — *why* convergence is fast or slow.

The counters of :class:`~repro.obs.collector.Collector` say how much each
layer gossips; this module says what that gossip *achieves*. When a
:class:`FlowTracer` is attached (``Collector(flow=FlowTracer())``), every
self-advertisement entering a gossip buffer is stamped with a compact
:class:`~repro.gossip.descriptors.Provenance` tag — origin node, origin
round, hop count — and every tagged descriptor delivered by an exchange is
recorded here. From those records the tracer derives:

- **propagation-latency distributions** per layer: how many rounds a
  descriptor needs to travel from its origin to each node that learns it;
- the **information-flow graph**: which (sender → receiver) pairs actually
  moved new knowledge, and how often;
- the **convergence critical path**: for the (origin, receiver) pair whose
  first delivery happened last — the final missing edge of the knowledge
  graph — the chain of exchanges that carried the descriptor there.

Tracing is observation only: tags never participate in descriptor equality
or selection, no RNG stream is touched, and with the tracer disabled the
hot path pays a single attribute read per exchange. Deliveries arrive in
engine order, so every derived structure — including the critical path —
is a pure function of the simulation seed.

Simulation-side module: no wall-clock reads (DET003 applies here).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.gossip.descriptors import Descriptor, Provenance


class Delivery(NamedTuple):
    """The first time ``receiver`` learned of ``origin`` at a layer."""

    round: int
    hops: int
    sender: int
    latency: int  # rounds from minting to this delivery


class CriticalPath(NamedTuple):
    """The exchange chain that closed the last missing knowledge edge."""

    layer: str
    origin: int
    receiver: int
    closed_round: int
    hops: int
    #: Node chain origin → ... → receiver, reconstructed from first
    #: deliveries (each node's own first-receipt sender, walked backwards).
    path: Tuple[int, ...]


class FlowTracer:
    """Aggregates provenance-tagged descriptor deliveries per layer.

    Attach via ``Collector(flow=FlowTracer())`` (or set ``collector.flow``
    before wiring); the gossip layers mint tags and report deliveries
    through :meth:`advertise` / :meth:`on_received` only while a tracer is
    present.
    """

    def __init__(self) -> None:
        #: layer -> latency (rounds) -> delivery count.
        self.latencies: Dict[str, Dict[int, int]] = {}
        #: layer -> (sender, receiver) -> tagged-descriptor deliveries.
        self.edges: Dict[str, Dict[Tuple[int, int], int]] = {}
        #: layer -> (origin, receiver) -> first delivery record.
        self.first_delivery: Dict[str, Dict[Tuple[int, int], Delivery]] = {}
        self.deliveries = 0

    # -- hot-path hooks (called by the gossip layers) -------------------------

    def advertise(
        self, descriptor: Descriptor, node_id: int, round_index: int
    ) -> Descriptor:
        """Stamp a self-advertisement with a fresh provenance tag."""
        return descriptor.tagged(Provenance(node_id, round_index, 0))

    def on_received(
        self,
        layer: str,
        round_index: int,
        receiver: int,
        sender: int,
        received: List[Descriptor],
    ) -> List[Descriptor]:
        """Record one exchange's deliveries; return hop-incremented copies.

        Untagged descriptors (minted before tracing started, or copied via
        non-exchange paths such as harvesting) pass through unchanged.
        """
        out: List[Descriptor] = []
        latencies = self.latencies.setdefault(layer, {})
        edges = self.edges.setdefault(layer, {})
        first = self.first_delivery.setdefault(layer, {})
        for descriptor in received:
            tag = descriptor.provenance
            if tag is None:
                out.append(descriptor)
                continue
            out.append(descriptor.hopped())
            if tag.origin == receiver:
                continue  # own knowledge echoed back carries no information
            self.deliveries += 1
            # In-process runs share one round counter, so this is always
            # >= 0. Live swarm nodes advance their counters independently;
            # a tag minted at a faster peer's round 5 can arrive during the
            # receiver's round 4. Clamp to zero so cross-node distributions
            # stay well-defined (see docs/observability.md, "clock skew").
            latency = max(0, round_index - tag.minted_round)
            latencies[latency] = latencies.get(latency, 0) + 1
            edge = (sender, receiver)
            edges[edge] = edges.get(edge, 0) + 1
            pair = (tag.origin, receiver)
            if pair not in first:
                first[pair] = Delivery(
                    round=round_index,
                    hops=tag.hops + 1,
                    sender=sender,
                    latency=latency,
                )
        return out

    # -- cross-process merge ---------------------------------------------------

    def to_state(self) -> Dict[str, object]:
        """JSON-safe dump of the raw tables (cross-process merge input).

        Unlike :meth:`summary` this loses nothing: a supervisor absorbing
        every node's state reconstructs the swarm-wide flow graph, latency
        distributions, and critical paths exactly as if one tracer had
        observed every delivery.
        """
        return {
            "deliveries": self.deliveries,
            "latencies": {
                layer: sorted(histogram.items())
                for layer, histogram in self.latencies.items()
            },
            "edges": {
                layer: [
                    [sender, receiver, count]
                    for (sender, receiver), count in sorted(table.items())
                ]
                for layer, table in self.edges.items()
            },
            "first": {
                layer: [
                    [origin, receiver, d.round, d.hops, d.sender, d.latency]
                    for (origin, receiver), d in sorted(table.items())
                ]
                for layer, table in self.first_delivery.items()
            },
        }

    def absorb_state(self, state: Dict[str, object]) -> None:
        """Merge a :meth:`to_state` dump (typically from another process).

        Counts add; first deliveries keep the earliest ``(round, hops)``
        record per (origin, receiver) pair. Tolerant of missing keys so
        partially-written status files degrade to partial data, never a
        crash.
        """
        for layer, pairs in (state.get("latencies") or {}).items():
            histogram = self.latencies.setdefault(layer, {})
            for latency, count in pairs:
                latency = int(latency)
                histogram[latency] = histogram.get(latency, 0) + int(count)
        for layer, triples in (state.get("edges") or {}).items():
            table = self.edges.setdefault(layer, {})
            for sender, receiver, count in triples:
                edge = (int(sender), int(receiver))
                table[edge] = table.get(edge, 0) + int(count)
        for layer, rows in (state.get("first") or {}).items():
            table = self.first_delivery.setdefault(layer, {})
            for origin, receiver, round_index, hops, sender, latency in rows:
                pair = (int(origin), int(receiver))
                record = Delivery(
                    round=int(round_index),
                    hops=int(hops),
                    sender=int(sender),
                    latency=int(latency),
                )
                existing = table.get(pair)
                if existing is None or (record.round, record.hops) < (
                    existing.round,
                    existing.hops,
                ):
                    table[pair] = record
        self.deliveries += int(state.get("deliveries") or 0)

    # -- queries ---------------------------------------------------------------

    def layers(self) -> List[str]:
        return sorted(self.first_delivery)

    def latency_stats(self, layer: str) -> Optional[Dict[str, float]]:
        """count/mean/p50/p95/max of the layer's propagation latencies."""
        histogram = self.latencies.get(layer)
        if not histogram:
            return None
        total = sum(histogram.values())
        weighted = sum(latency * count for latency, count in histogram.items())
        ordered = sorted(histogram.items())

        def percentile(fraction: float) -> int:
            threshold = fraction * total
            seen = 0
            for latency, count in ordered:
                seen += count
                if seen >= threshold:
                    return latency
            return ordered[-1][0]

        return {
            "count": total,
            "mean": weighted / total,
            "p50": percentile(0.50),
            "p95": percentile(0.95),
            "max": ordered[-1][0],
        }

    def flow_graph(self, layer: str) -> Dict[Tuple[int, int], int]:
        """The layer's (sender → receiver) delivery counts."""
        return dict(self.edges.get(layer, {}))

    def critical_path(self, layer: str) -> Optional[CriticalPath]:
        """The exchange chain behind the layer's last-closed knowledge edge.

        The *last missing edge* is the (origin, receiver) pair whose first
        delivery carries the highest round (ties broken on the pair itself,
        so the result is deterministic). The chain is reconstructed
        backwards through each intermediate node's own first receipt of the
        same origin; a relay that forwarded a copy from a later chain is
        approximated by its first-receipt sender, which can only shorten
        the reported path.
        """
        table = self.first_delivery.get(layer)
        if not table:
            return None
        origin, receiver = max(
            table, key=lambda pair: (table[pair].round, pair)
        )
        closing = table[(origin, receiver)]
        chain: List[int] = [receiver]
        current = receiver
        seen = {receiver}
        while True:
            record = table.get((origin, current))
            if record is None:
                break
            sender = record.sender
            if sender in seen:
                break  # defensive: a relay loop cannot extend the chain
            chain.append(sender)
            seen.add(sender)
            if sender == origin:
                break
            current = sender
        if chain[-1] != origin:
            chain.append(origin)
        chain.reverse()
        return CriticalPath(
            layer=layer,
            origin=origin,
            receiver=receiver,
            closed_round=closing.round,
            hops=closing.hops,
            path=tuple(chain),
        )

    def summary(self) -> Dict[str, Dict]:
        """Plain-data per-layer view (exporter/registry input)."""
        out: Dict[str, Dict] = {}
        for layer in self.layers():
            stats = self.latency_stats(layer)
            path = self.critical_path(layer)
            out[layer] = {
                "deliveries": sum(self.latencies.get(layer, {}).values()),
                "flow_edges": len(self.edges.get(layer, {})),
                "known_pairs": len(self.first_delivery.get(layer, {})),
                "latency": stats,
                "critical_path": None if path is None else path._asdict(),
            }
        return out


def merge_flow_states(states) -> FlowTracer:
    """One tracer absorbing every dump in ``states`` (falsy entries skipped).

    The swarm supervisor's entry point: each node publishes
    ``tracer.to_state()`` in its status file, and this reconstructs the
    cross-node flow report.
    """
    merged = FlowTracer()
    for state in states:
        if not state:
            continue
        try:
            merged.absorb_state(state)
        except (AttributeError, KeyError, TypeError, ValueError):
            continue  # one node's corrupt dump must not sink the swarm view
    return merged
