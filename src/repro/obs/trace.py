"""Structured event tracing (canonical home; ``repro.sim.trace`` is a shim).

A :class:`Tracer` collects timestamped lifecycle events — crashes, joins,
revivals, convergence transitions — as plain records that can be asserted on
in tests, printed as a timeline, or dumped to JSON. It is the event-facet of
the :class:`~repro.obs.instrument.Instrument` protocol: the population and
convergence tracers below are written against ``Instrument``, so the same
classes feed a plain :class:`Tracer` *or* a full
:class:`~repro.obs.collector.Collector` (which also receives their counter
and gauge calls).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.obs import events as _events
from repro.obs.instrument import Instrument
from repro.sim.network import Network


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    round: int
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize with details namespaced under ``"details"``.

        Details used to be splatted into the top level, where a ``round`` or
        ``kind`` detail key silently shadowed the event's own fields; the
        namespaced form is unambiguous. :meth:`from_dict` still reads the
        legacy flat layout.
        """
        return {"round": self.round, "kind": self.kind, "details": dict(self.details)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        """Parse either the namespaced layout or the legacy flat layout."""
        details = data.get("details")
        if isinstance(details, dict):
            extra = {
                key: value
                for key, value in data.items()
                if key not in ("round", "kind", "details")
            }
            details = {**details, **extra}
        else:  # legacy: details splatted at the top level
            details = {
                key: value
                for key, value in data.items()
                if key not in ("round", "kind")
            }
        return cls(round=int(data["round"]), kind=str(data["kind"]), details=details)

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.round:>4}] {self.kind}{' ' + details if details else ''}"


class Tracer(Instrument):
    """An append-only event log keyed by simulation round."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._round_source: Callable[[], int] = lambda: 0

    def bind_round_source(self, source: Callable[[], int]) -> None:
        """Attach the clock (usually ``lambda: engine.round``)."""
        self._round_source = source

    def emit(self, kind: str, **details: Any) -> TraceEvent:
        event = TraceEvent(round=self._round_source(), kind=kind, details=details)
        self.events.append(event)
        return event

    # -- queries ----------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def since(self, round_index: int) -> List[TraceEvent]:
        return [event for event in self.events if event.round >= round_index]

    def __len__(self) -> int:
        return len(self.events)

    # -- export ------------------------------------------------------------------

    def timeline(self) -> str:
        """Human-readable one-line-per-event log."""
        return "\n".join(str(event) for event in self.events)

    def to_json(self) -> str:
        return json.dumps([event.to_dict() for event in self.events], indent=2)


class PopulationTracer(Instrument):
    """Engine observer emitting crash/join/revive events by diffing the
    population between rounds (catches changes made by any control).

    ``instrument`` is any event sink — a :class:`Tracer` keeps the events, a
    :class:`~repro.obs.collector.Collector` additionally counts them.
    """

    def __init__(self, instrument: Instrument):
        self.instrument = instrument
        self._known_alive: Optional[set] = None

    def observe(self, network: Network, round_index: int) -> bool:
        alive = set(network.alive_ids())
        if self._known_alive is not None:
            for node_id in sorted(self._known_alive - alive):
                if network.has_node(node_id):
                    self.instrument.emit(_events.EVENT_NODE_CRASH, node=node_id)
                    self.instrument.count("node_crashes")
                else:
                    self.instrument.emit(_events.EVENT_NODE_LEAVE, node=node_id)
                    self.instrument.count("node_leaves")
            for node_id in sorted(alive - self._known_alive):
                self.instrument.emit(_events.EVENT_NODE_UP, node=node_id)
                self.instrument.count("node_ups")
        self._known_alive = alive
        return False


class ConvergenceTracer(Instrument):
    """Engine observer emitting one event per layer convergence transition.

    Wraps a :class:`~repro.core.convergence.ConvergenceTracker`: whenever a
    layer's first-convergence round becomes known, a ``layer_converged``
    event fires; the latest core score and the converged-layer count are
    mirrored as gauges (no-ops on a plain :class:`Tracer`).
    """

    def __init__(self, instrument: Instrument, tracker) -> None:
        self.instrument = instrument
        self.tracker = tracker
        self._reported: set = set()

    def observe(self, network: Network, round_index: int) -> bool:
        converged = 0
        for layer, first in self.tracker.first_converged.items():
            if first is None:
                continue
            converged += 1
            if layer not in self._reported:
                self._reported.add(layer)
                self.instrument.emit(
                    _events.EVENT_LAYER_CONVERGED, layer=layer, at=first
                )
        self.instrument.gauge("layers_converged", converged)
        if self.tracker.core_scores:
            self.instrument.gauge(
                "core_score", self.tracker.core_scores[-1], layer="core"
            )
        return False

    def reset(self) -> None:
        self._reported.clear()


def attach_tracer(deployment) -> Tracer:
    """Wire a fresh :class:`Tracer` into a deployment.

    Emits ``deploy`` immediately, then population and convergence events as
    rounds execute. Returns the tracer; read ``tracer.timeline()`` or
    ``tracer.to_json()`` at any point. For the full metrics pipeline
    (counters, gauges, spans, exporters) attach a collector instead — see
    :func:`repro.obs.hooks.attach_collector`.
    """
    tracer = Tracer()
    tracer.bind_round_source(lambda: deployment.engine.round)
    tracer.emit(
        _events.EVENT_DEPLOY,
        assembly=deployment.assembly.name,
        nodes=deployment.network.size(),
        components=len(deployment.assembly.components),
    )
    deployment.engine.add_observer(PopulationTracer(tracer))
    deployment.engine.add_observer(ConvergenceTracer(tracer, deployment.tracker))
    return tracer
