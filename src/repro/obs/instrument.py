"""The unified instrumentation protocol.

:class:`Instrument` merges the three observation mechanisms that grew
independently — round-boundary measuring hooks (``sim.controls.Observer``),
the structured event log (``sim.trace.Tracer``), and the fault subsystem's
recovery verifier (``faults.recovery.RecoveryObserver``) — into one
interface the whole runtime is written against:

========================  =====================================================
method                    role
========================  =====================================================
``observe``               per-round measurement hook (may request a stop)
``emit``                  typed lifecycle events (:mod:`repro.obs.events`)
``count``                 monotonic per-layer counters (messages, churn)
``gauge``                 last-value per-layer gauges (degrees, occupancy)
``histogram``             bucketed per-layer distributions (RTT, hop counts)
``span_begin``/``span_end``  wall-clock spans (round timing)
========================  =====================================================

Every method is a no-op returning a falsy value, so a subclass implements
only the facets it cares about: :class:`~repro.obs.trace.Tracer` records
events, :class:`~repro.obs.recovery.RecoveryObserver` observes rounds, and
:class:`~repro.obs.collector.Collector` implements everything. Hot paths
guard each call with ``if ctx.obs is not None`` — with no collector
attached, instrumentation costs one attribute check and performs zero
allocations (the contract the tracer always had, now uniform).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.network import Network


class Instrument:
    """Base of every measuring hook; all methods default to no-ops.

    Subclasses attached as engine observers get :meth:`observe` called
    after the node steps of each round; subclasses wired as the engine's
    ``obs`` sink additionally receive ``count``/``gauge``/``emit``/span
    calls from inside the protocol layers.
    """

    # Stateless by construction (and lets NullInstrument stay dict-less);
    # stateful subclasses simply don't declare __slots__ and get a __dict__.
    __slots__ = ()

    #: Causal propagation tracer (:class:`~repro.obs.flow.FlowTracer`), or
    #: ``None``. A class-level default so every instrument — including the
    #: no-op base — answers the hot path's ``obs.flow`` read without a
    #: ``getattr`` dance; sinks that trace set an instance attribute.
    flow: Optional[object] = None

    #: Whether the engine should time each layer's protocol steps as
    #: ``layer:<name>`` spans (the ``repro report --profile`` view). Off by
    #: default: per-layer spans cost two clock reads per (node, layer) step.
    profile_layers: bool = False

    def observe(self, network: "Network", round_index: int) -> bool:
        """Record measurements for ``round_index``; return ``True`` to stop."""
        return False

    def emit(self, kind: str, **details: Any) -> Optional[object]:
        """Record one lifecycle event (see :mod:`repro.obs.events`)."""
        return None

    def count(self, name: str, value: int = 1, layer: str = "") -> None:
        """Add ``value`` to the monotonic counter ``name`` for ``layer``."""

    def count_key(self, key: "tuple", value: int = 1) -> None:
        """Add ``value`` to the counter for a pre-resolved ``(name, layer)``.

        The hot-path twin of :meth:`count`: protocol layers build their
        ``(name, layer)`` key tuples once at construction time, so the
        per-exchange call passes a ready key positionally instead of
        allocating a tuple and binding a keyword argument per increment.
        """

    def gauge(self, name: str, value: float, layer: str = "") -> None:
        """Set the last-value gauge ``name`` for ``layer``."""

    def histogram(self, name: str, value: float, layer: str = "") -> None:
        """Record ``value`` into the bucketed distribution ``name``.

        Used for wire-level measurements whose *shape* matters — gossip
        round-trip times, ANNOUNCE relay hop counts — where a counter
        would lose the tail and a gauge the history. Bucket bounds are
        chosen per metric name by the collector.
        """

    def span_begin(self, name: str) -> None:
        """Open the wall-clock span ``name`` (collector-timed)."""

    def span_end(self, name: str) -> None:
        """Close the wall-clock span ``name``."""


class NullInstrument(Instrument):
    """An explicit do-nothing instrument.

    The runtime's disabled path is ``obs is None`` (cheaper than a method
    call); this class exists for call sites that want an always-valid
    instrument reference instead of an optional one.
    """

    __slots__ = ()


#: Shared no-op instance for optional-instrument call sites.
NULL_INSTRUMENT = NullInstrument()
