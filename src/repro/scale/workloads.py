"""The scale-tier workload matrix and its deterministic runner.

Mirrors :mod:`repro.perf.workloads` one tier up: each cell deploys the
elementary stack (peer sampling + one Vicinity overlay) over a shape, but
runs it on the barrier-synchronous :class:`~repro.scale.engine.ShardedEngine`
instead of the serial engine — the execution model whose digests are
invariant to backend, shard count, and process placement.

Simulation-side module: no wall-clock reads (DET003); timing and RSS live
in :mod:`repro.scale.bench`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.runtime.api import RunnerConfig, make_runner


@dataclass(frozen=True)
class ScaleWorkload:
    """One cell of the scale matrix: a shape at a node count.

    Frozen and primitive-typed so it pickles cleanly into pool workers.
    """

    name: str
    shape: str
    n_nodes: int
    max_rounds: int = 60


@dataclass(frozen=True)
class ScaleResult:
    """Outcome of one (workload, seed, configuration) run — no wall time."""

    workload: str
    seed: int
    backend: str
    n_shards: int
    mode: str
    rounds_to_converge: Optional[int]
    executed: int
    messages: int
    bytes: int
    digest: str

    def to_dict(self) -> Dict:
        return {
            "workload": self.workload,
            "seed": self.seed,
            "backend": self.backend,
            "n_shards": self.n_shards,
            "mode": self.mode,
            "rounds_to_converge": self.rounds_to_converge,
            "executed": self.executed,
            "messages": self.messages,
            "bytes": self.bytes,
            "digest": self.digest,
        }


#: The tier matrices. ``ci`` stays small enough for the default test lane;
#: ``1k`` is the scale-smoke job's workload; ``10k`` is the headline cell
#: (single workload — the acceptance bar is wall time and RSS, not breadth).
_CI_MATRIX: Tuple[ScaleWorkload, ...] = (
    ScaleWorkload("ring-64", "ring", 64),
    ScaleWorkload("grid-64", "grid", 64),
)

_1K_MATRIX: Tuple[ScaleWorkload, ...] = (
    ScaleWorkload("ring-1024", "ring", 1024, max_rounds=90),
    ScaleWorkload("grid-1024", "grid", 1024, max_rounds=90),
)

_10K_MATRIX: Tuple[ScaleWorkload, ...] = (
    ScaleWorkload("ring-10000", "ring", 10000, max_rounds=30),
)

_MATRICES = {"ci": _CI_MATRIX, "1k": _1K_MATRIX, "10k": _10K_MATRIX}


def scale_matrix(tier: str = "ci") -> Tuple[ScaleWorkload, ...]:
    """The fixed matrix for ``tier`` (``ci`` default, ``1k``, or ``10k``)."""
    return _MATRICES.get(tier, _CI_MATRIX)


def run_scale_workload(
    workload: ScaleWorkload,
    seed: int,
    backend: str = "object",
    n_shards: int = 1,
    mode: str = "inline",
) -> ScaleResult:
    """Deploy, run to shape convergence (or ``max_rounds``), and fingerprint.

    The result — digest included — is a pure function of
    ``(workload, seed)``: backend, shard count, and execution mode select a
    representation and a schedule of the *same* computation. Convergence is
    checked after every round in every configuration, so all runs of a cell
    stop at the same round and hash the same final state.
    """
    engine = make_runner(
        RunnerConfig(
            kind="sharded",
            workload=workload.name,
            shape=workload.shape,
            n_nodes=workload.n_nodes,
            seed=seed,
            backend=backend,
            n_shards=n_shards,
            mode=mode,
        )
    )
    converged_at: Optional[int] = None
    try:
        for round_index in range(workload.max_rounds):
            engine.run_round()
            if engine.converged():
                converged_at = round_index + 1
                break
        return ScaleResult(
            workload=workload.name,
            seed=seed,
            backend=backend,
            n_shards=n_shards,
            mode=engine.mode_used,
            rounds_to_converge=converged_at,
            executed=engine.round,
            messages=engine.messages,
            bytes=engine.bytes,
            digest=engine.digest(),
        )
    finally:
        engine.close()
