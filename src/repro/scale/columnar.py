"""Columnar descriptor storage — the array-backed :class:`PartialView` twin.

A :class:`~repro.gossip.views.PartialView` keeps one boxed
:class:`~repro.gossip.descriptors.Descriptor` per entry. At bench scale
(10k nodes × 2 layers × view size ~20) that is hundreds of thousands of
small Python objects churned every round. :class:`ColumnarView` stores the
same state in fixed-width columns — node ids and ages in preallocated
stdlib ``array('q')`` slots, profiles and provenance tags in parallel
lists — and materializes :class:`Descriptor` objects only at the API
boundary. No numpy: the point is the layout (one allocation per column per
view, ids/ages readable without attribute dispatch), not SIMD.

**Equivalence contract.** ColumnarView is *observably identical* to
PartialView, including iteration order: the slot index
(``node_id → slot``) is an insertion-ordered dict that mirrors, operation
for operation, the key order of PartialView's entry dict — so every
order-sensitive consumer (``random``/``sample`` RNG draws, overflow
eviction tie-breaks, ``replace`` semantics, lazy age-debt settlement)
makes byte-identical decisions on either representation. The contract is
pinned by the differential twin suite in tests/perf/test_columnar_twins.py
and, end to end, by the scale bench's digest gate.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.gossip.descriptors import Descriptor
from repro.gossip.selection import batch_distances
from repro.gossip.views import PartialView


class NodeInterner:
    """A bijection between arbitrary hashable node ids and dense indices.

    The sharded engine addresses nodes by dense rank (shard assignment,
    wire batches, adjacency collection); simulations address them by their
    network id. Interning keeps the mapping explicit — and O(1) both ways —
    instead of assuming ids happen to be ``0..n-1``.
    """

    __slots__ = ("_index_of", "_ids")

    def __init__(self, ids: Iterable[Hashable] = ()):
        self._index_of: Dict[Hashable, int] = {}
        self._ids: List[Hashable] = []
        for node_id in ids:
            self.intern(node_id)

    def intern(self, node_id: Hashable) -> int:
        """The dense index of ``node_id``, allocating one if unseen."""
        index = self._index_of.get(node_id)
        if index is None:
            index = len(self._ids)
            self._index_of[node_id] = index
            self._ids.append(node_id)
        return index

    def index_of(self, node_id: Hashable) -> int:
        """The dense index of a known id (KeyError if never interned)."""
        return self._index_of[node_id]

    def resolve(self, index: int) -> Hashable:
        """The node id at dense ``index``."""
        return self._ids[index]

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, node_id: Hashable) -> bool:
        return node_id in self._index_of

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeInterner(size={len(self._ids)})"


class ColumnarView(PartialView):
    """Array-backed twin of :class:`PartialView` (see module docstring).

    Storage: ``capacity`` preallocated slots. ``_slot_of`` maps node id to
    slot and carries the canonical entry order (it mirrors PartialView's
    dict order exactly); ``_free`` is a LIFO of unused slots, so a view
    never allocates after construction.
    """

    __slots__ = ("_ids", "_ages", "_profiles", "_prov", "_slot_of", "_free")

    def __init__(
        self,
        capacity: int,
        entries: Iterable[Descriptor] = (),
        tombstone_ttl: int = 64,
    ):
        if capacity < 1:
            raise ConfigurationError(f"view capacity must be >= 1, got {capacity}")
        if tombstone_ttl < 1:
            raise ConfigurationError(
                f"tombstone_ttl must be >= 1, got {tombstone_ttl}"
            )
        self.capacity = capacity
        self.tombstone_ttl = tombstone_ttl
        self._ids = array("q", bytes(8 * capacity))
        self._ages = array("q", bytes(8 * capacity))
        self._profiles: List[object] = [None] * capacity
        self._prov: List[object] = [None] * capacity
        self._slot_of: Dict[int, int] = {}
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._tombstones: Dict[int, int] = {}
        self._age_debt = 0
        for descriptor in entries:
            self.insert(descriptor)

    # -- internals ------------------------------------------------------------

    def _materialize(self, slot: int) -> Descriptor:
        return Descriptor(
            self._ids[slot], self._ages[slot], self._profiles[slot], self._prov[slot]
        )

    def _write(self, slot: int, descriptor: Descriptor) -> None:
        self._ids[slot] = descriptor.node_id
        self._ages[slot] = descriptor.age
        self._profiles[slot] = descriptor.profile
        self._prov[slot] = descriptor.provenance

    def _release(self, slot: int) -> None:
        self._profiles[slot] = None  # drop the reference, not just the slot
        self._prov[slot] = None
        self._free.append(slot)

    def _settle(self) -> None:
        debt = self._age_debt
        if not debt:
            return
        self._age_debt = 0
        ages = self._ages
        for slot in self._slot_of.values():
            ages[slot] += debt
        if self._tombstones:
            self._tombstones = {
                node_id: remaining - debt
                for node_id, remaining in self._tombstones.items()
                if remaining - debt >= 1
            }

    # -- basic container protocol ---------------------------------------------

    def __len__(self) -> int:
        return len(self._slot_of)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._slot_of

    def __iter__(self) -> Iterator[Descriptor]:
        self._settle()
        for slot in self._slot_of.values():
            yield self._materialize(slot)

    def get(self, node_id: int) -> Optional[Descriptor]:
        self._settle()
        slot = self._slot_of.get(node_id)
        return None if slot is None else self._materialize(slot)

    def ids(self) -> List[int]:
        return list(self._slot_of.keys())

    def id_set(self):
        return self._slot_of.keys()

    def descriptors(self) -> List[Descriptor]:
        self._settle()
        return [self._materialize(slot) for slot in self._slot_of.values()]

    def is_full(self) -> bool:
        return len(self._slot_of) >= self.capacity

    # -- mutation ---------------------------------------------------------------

    def insert(self, descriptor: Descriptor) -> bool:
        self._settle()
        node_id = descriptor.node_id
        remaining = self._tombstones.get(node_id)
        if remaining is not None:
            if descriptor.age > 0:
                return False
            del self._tombstones[node_id]
        slot_of = self._slot_of
        slot = slot_of.get(node_id)
        if slot is not None:
            if descriptor.age < self._ages[slot]:
                self._write(slot, descriptor)
                return True
            return False
        if len(slot_of) < self.capacity:
            slot = self._free.pop()
            self._write(slot, descriptor)
            slot_of[node_id] = slot
            return True
        # Overflow: evict the oldest entry — strictly-greater scan keeps the
        # *first* maximal in entry order, exactly like PartialView's max().
        ages = self._ages
        oldest_id = -1
        oldest_slot = -1
        oldest_age = None
        for nid, nslot in slot_of.items():
            age = ages[nslot]
            if oldest_age is None or age > oldest_age:
                oldest_id, oldest_slot, oldest_age = nid, nslot, age
        if descriptor.age >= oldest_age:
            return False
        del slot_of[oldest_id]
        self._write(oldest_slot, descriptor)
        slot_of[node_id] = oldest_slot
        return True

    def remove(self, node_id: int) -> bool:
        slot = self._slot_of.pop(node_id, None)
        if slot is None:
            return False
        self._release(slot)
        return True

    def purge(self, node_id: int) -> bool:
        self._settle()  # a fresh tombstone must not absorb pre-purge debt
        existed = self.remove(node_id)
        self._tombstones[node_id] = self.tombstone_ttl
        return existed

    def is_purged(self, node_id: int) -> bool:
        self._settle()
        return node_id in self._tombstones

    def discard_where(self, predicate: Callable[[Descriptor], bool]) -> int:
        self._settle()
        doomed = [
            node_id
            for node_id, slot in self._slot_of.items()
            if predicate(self._materialize(slot))
        ]
        for node_id in doomed:
            self._release(self._slot_of.pop(node_id))
        return len(doomed)

    def increase_age(self) -> None:
        self._age_debt += 1

    def clear(self) -> None:
        for slot in self._slot_of.values():
            self._release(slot)
        self._slot_of.clear()
        self._tombstones.clear()
        self._age_debt = 0

    def _clear_entries(self) -> None:
        """Drop entries only (tombstones and settled debt survive)."""
        for slot in self._slot_of.values():
            self._release(slot)
        self._slot_of.clear()

    def replace(self, descriptors: Iterable[Descriptor]) -> None:
        self._settle()  # tombstones must observe pre-replace aging
        self._clear_entries()
        slot_of = self._slot_of
        tombstones = self._tombstones
        capacity = self.capacity
        ages = self._ages
        for descriptor in descriptors:
            node_id = descriptor.node_id
            if tombstones:
                remaining = tombstones.get(node_id)
                if remaining is not None:
                    if descriptor.age > 0:
                        continue
                    del tombstones[node_id]
            slot = slot_of.get(node_id)
            if slot is None:
                if len(slot_of) < capacity:
                    new_slot = self._free.pop()
                    self._write(new_slot, descriptor)
                    slot_of[node_id] = new_slot
                else:
                    self.insert(descriptor)  # overflow: full eviction policy
            elif descriptor.age < ages[slot]:
                self._write(slot, descriptor)

    # -- selection ---------------------------------------------------------------

    def oldest(self) -> Optional[Descriptor]:
        self._settle()
        ages = self._ages
        best_slot = -1
        best_key = None
        for node_id, slot in self._slot_of.items():
            key = (ages[slot], -node_id)
            if best_key is None or key > best_key:
                best_slot, best_key = slot, key
        return None if best_slot < 0 else self._materialize(best_slot)

    def youngest(self) -> Optional[Descriptor]:
        self._settle()
        ages = self._ages
        best_slot = -1
        best_key = None
        for node_id, slot in self._slot_of.items():
            key = (ages[slot], node_id)
            if best_key is None or key < best_key:
                best_slot, best_key = slot, key
        return None if best_slot < 0 else self._materialize(best_slot)

    def random(self, rng) -> Optional[Descriptor]:
        self._settle()
        if not self._slot_of:
            return None
        return self.get(rng.choice(list(self._slot_of.keys())))

    def sample(self, rng, k: int) -> List[Descriptor]:
        self._settle()
        values = self.descriptors()
        if k >= len(values):
            return values
        return rng.sample(values, k)

    def closest(self, k: int, key: Callable[[Descriptor], float]) -> List[Descriptor]:
        self._settle()
        entries = self.descriptors()
        if len(entries) <= 4 * k:
            return sorted(entries, key=lambda d: (key(d), d.node_id))[:k]
        return heapq.nsmallest(k, entries, key=lambda d: (key(d), d.node_id))

    def closest_to(self, k: int, distances) -> List[Descriptor]:
        """Batch ranking: the ``k`` entries nearest under ``distances.to``.

        The columnar win: distances are evaluated over the raw profile
        column — one ``(distance, node_id)`` tuple per entry, no Descriptor
        materialized for anything that does not make the cut. Result is
        exactly :meth:`closest` with ``key=lambda d: distances.to(d.profile)``
        (pinned by the twin suite).
        """
        self._settle()
        profiles = self._profiles
        items = list(self._slot_of.items())
        reference = getattr(distances, "reference", None)
        if reference is not None:
            evaluated = batch_distances(
                reference, [profiles[slot] for _, slot in items], distances
            )
            decorated = [
                (distance, node_id, slot)
                for distance, (node_id, slot) in zip(evaluated, items)
            ]
        else:
            to = distances.to
            decorated = [(to(profiles[slot]), node_id, slot) for node_id, slot in items]
        if len(decorated) <= 4 * k:
            top = sorted(decorated)[:k]
        else:
            top = heapq.nsmallest(k, decorated)
        return [self._materialize(slot) for _, _, slot in top]

    def truncate_closest(self, k: int, key: Callable[[Descriptor], float]) -> None:
        if len(self._slot_of) <= k:
            return
        keep = self.closest(k, key)
        self._clear_entries()
        slot_of = self._slot_of
        for descriptor in keep:
            slot = self._free.pop()
            self._write(slot, descriptor)
            slot_of[descriptor.node_id] = slot

    def drop_oldest(self, count: int) -> None:
        if count <= 0:
            return
        self._settle()
        ages = self._ages
        ranked = heapq.nsmallest(
            count,
            ((-ages[slot], node_id) for node_id, slot in self._slot_of.items()),
        )
        for _, node_id in ranked:
            self._release(self._slot_of.pop(node_id))

    def drop_random(self, rng, count: int) -> None:
        self._settle()
        count = min(count, len(self._slot_of))
        for descriptor in rng.sample(self.descriptors(), count):
            self._release(self._slot_of.pop(descriptor.node_id))

    def __repr__(self) -> str:
        return f"ColumnarView(capacity={self.capacity}, size={len(self)})"
