"""``repro.scale`` — the 10k-node tier: columnar views + a sharded engine.

ROADMAP item 1. Three pieces, each pinned by digest identity:

- :mod:`repro.scale.columnar` — an array-backed, observably *identical*
  twin of :class:`~repro.gossip.views.PartialView` (interned node-id
  slots, fixed-width ``array`` columns for ids and ages), selected via
  ``GossipParams(backend="columnar")`` so every gossip layer runs
  unmodified on top of it;
- :mod:`repro.scale.engine` — a barrier-synchronous sharded engine that
  partitions nodes across workers with per-node RNG streams derived by
  the ``spawn_seeds`` SHA-256 splitter, exchanging cross-shard
  descriptors only at round barriers, so the realized overlay is a pure
  function of ``(workload, seed)`` — independent of shard count and of
  process placement;
- :mod:`repro.scale.bench` — the ``repro bench --scale {ci,1k,10k}``
  tiers recording wall time, peak RSS, and per-round throughput into
  ``BENCH_gossip.json``, gated on serial-object / serial-columnar /
  sharded-columnar digests being byte-identical per cell.
"""

from repro.scale.columnar import ColumnarView, NodeInterner
from repro.scale.engine import ShardedEngine, ShardPlan
from repro.scale.workloads import (
    ScaleResult,
    ScaleWorkload,
    run_scale_workload,
    scale_matrix,
)

__all__ = [
    "ColumnarView",
    "NodeInterner",
    "ShardedEngine",
    "ShardPlan",
    "ScaleResult",
    "ScaleWorkload",
    "run_scale_workload",
    "scale_matrix",
]
