"""The scale-tier timing harness — ``repro bench --scale {ci,1k,10k}``.

The wall-clock side of :mod:`repro.scale` (this module and
:mod:`repro.perf.bench` are the only perf modules allowed to read the
clock; DET003 pins the rest to simulated time). Each tier cell runs three
configurations of the *same* deterministic computation:

- ``serial-object`` — one shard, boxed-descriptor views (the reference);
- ``serial-columnar`` — one shard, array-backed columnar views;
- ``sharded-columnar`` — the tier's shard count, columnar views, on the
  process pool where the tier says so.

The hard gate: all three must produce byte-identical overlay digests. A
mismatch raises :class:`ScaleDigestError` — a bench that cannot prove
digest identity has no business writing a trajectory.

Per configuration the report records wall time, rounds executed, message
and byte counts, per-round throughput (node-rounds per second), and the
process's peak RSS high-water after the run. The 1k tier additionally runs
a tracemalloc probe of the columnar cell and records its peak together
with a 2x ceiling — the budget tests/scale/test_memory.py holds future
changes to.

Results merge into ``BENCH_gossip.json`` under a ``scale_tiers`` section
keyed by tier, preserving whatever the perf bench wrote (and vice versa:
``repro.perf.bench.write_bench`` carries the section across rewrites).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional, Tuple

from repro.scale.workloads import (
    ScaleResult,
    ScaleWorkload,
    run_scale_workload,
    scale_matrix,
)
from repro.sim.rng import spawn_seeds

#: Schema version of the ``scale_tiers`` trajectory section.
SCALE_SCHEMA = 1

#: Per-tier sharded configuration: (n_shards, execution mode). The ci and
#: 1k tiers exercise the real process pool; the 10k tier shards inline —
#: at that message volume pickling costs more than the parallelism buys,
#: and the digest is the same either way (that equivalence is the point).
_TIER_SHARDS: Dict[str, Tuple[int, str]] = {
    "ci": (2, "mp"),
    "1k": (4, "mp"),
    "10k": (4, "inline"),
}

#: The three gated configurations, in reporting order.
_CONFIG_LABELS = ("serial-object", "serial-columnar", "sharded-columnar")


class ScaleDigestError(RuntimeError):
    """The serial/columnar/sharded digests of a cell diverged."""


def _peak_rss_kb() -> Optional[int]:
    """The process's peak RSS high-water, in KiB (None where unsupported)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _run_config(
    workload: ScaleWorkload,
    seed: int,
    label: str,
    backend: str,
    n_shards: int,
    mode: str,
) -> Tuple[ScaleResult, Dict]:
    start = time.perf_counter()
    result = run_scale_workload(
        workload, seed, backend=backend, n_shards=n_shards, mode=mode
    )
    wall = time.perf_counter() - start
    node_rounds = workload.n_nodes * result.executed
    entry = {
        "label": label,
        "backend": backend,
        "n_shards": n_shards,
        "mode": result.mode,
        "wall_s": round(wall, 4),
        "rounds": result.executed,
        "rounds_to_converge": result.rounds_to_converge,
        "messages": result.messages,
        "bytes": result.bytes,
        "node_rounds_per_s": round(node_rounds / wall) if wall > 0 else None,
        "peak_rss_kb": _peak_rss_kb(),
    }
    return result, entry


def _memory_probe(workload: ScaleWorkload, seed: int) -> Dict:
    """Tracemalloc peak of the columnar serial cell, plus its 2x budget.

    Tracemalloc measures Python-level allocations only (not the RSS of
    interned ints or arena overhead), but unlike ru_maxrss it is not a
    process-lifetime high-water — so it regresses cleanly run over run.
    """
    import tracemalloc

    tracemalloc.start()
    try:
        run_scale_workload(workload, seed, backend="columnar", n_shards=1)
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return {
        "workload": workload.name,
        "n_nodes": workload.n_nodes,
        "backend": "columnar",
        "tracemalloc_peak_bytes": peak,
        "tracemalloc_budget_bytes": 2 * peak,
    }


def run_scale_bench(
    tier: str = "ci",
    master_seed: int = 1,
    n_shards: Optional[int] = None,
    memory_probe: Optional[bool] = None,
) -> Dict:
    """Run the tier's matrix through the three gated configurations.

    Raises :class:`ScaleDigestError` on any digest divergence. Returns the
    tier section (see module docstring) ready to merge into the trajectory.
    """
    tier_shards, tier_mode = _TIER_SHARDS.get(tier, _TIER_SHARDS["ci"])
    if n_shards is not None:
        tier_shards = n_shards
    if memory_probe is None:
        memory_probe = tier == "1k"
    cells: List[Dict] = []
    total_wall = 0.0
    probe: Optional[Dict] = None
    for workload in scale_matrix(tier):
        seed = spawn_seeds(master_seed, 1, "scale-bench", workload.name)[0]
        configs = (
            ("serial-object", "object", 1, "inline"),
            ("serial-columnar", "columnar", 1, "inline"),
            ("sharded-columnar", "columnar", tier_shards, tier_mode),
        )
        entries: List[Dict] = []
        digests: List[str] = []
        for label, backend, shards, mode in configs:
            result, entry = _run_config(workload, seed, label, backend, shards, mode)
            entries.append(entry)
            digests.append(result.digest)
            total_wall += entry["wall_s"]
        if len(set(digests)) != 1:
            detail = ", ".join(
                f"{label}={digest[:16]}"
                for label, digest in zip(_CONFIG_LABELS, digests)
            )
            raise ScaleDigestError(
                f"digest divergence on {workload.name} (seed {seed}): {detail}"
            )
        cells.append(
            {
                "workload": workload.name,
                "shape": workload.shape,
                "n_nodes": workload.n_nodes,
                "max_rounds": workload.max_rounds,
                "seed": seed,
                "digest": digests[0],
                "digests_identical": True,
                "configs": entries,
            }
        )
        if memory_probe and probe is None:
            probe = _memory_probe(workload, seed)
    section = {
        "schema": SCALE_SCHEMA,
        "tier": tier,
        "master_seed": master_seed,
        "cells": cells,
        "wall_time_s": round(total_wall, 4),
    }
    if probe is not None:
        section["memory"] = probe
    return section


def write_scale_bench(
    section: Dict, json_path: str = "BENCH_gossip.json"
) -> str:
    """Merge a tier section into the trajectory under ``scale_tiers``.

    Read-modify-write: the perf bench owns the rest of the file, and both
    writers preserve each other's sections.
    """
    path = pathlib.Path(json_path)
    data: Dict = {}
    if path.exists():
        data = json.loads(path.read_text(encoding="utf-8"))
    data.setdefault("scale_tiers", {})[section["tier"]] = section
    if path.parent != pathlib.Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return str(path)


def format_scale_bench(section: Dict) -> str:
    """Render a tier section as the aligned table the CLI prints."""
    from repro.metrics.report import render_table

    headers = (
        "workload",
        "nodes",
        "config",
        "wall s",
        "rounds",
        "node-rounds/s",
        "peak RSS MB",
        "digest",
    )
    rows = []
    for cell in section["cells"]:
        for entry in cell["configs"]:
            rss = entry["peak_rss_kb"]
            rows.append(
                (
                    cell["workload"],
                    cell["n_nodes"],
                    f"{entry['label']} ({entry['mode']} x{entry['n_shards']})",
                    f"{entry['wall_s']:.2f}",
                    entry["rounds"],
                    entry["node_rounds_per_s"],
                    "n/a" if rss is None else f"{rss / 1024:.0f}",
                    cell["digest"][:12],
                )
            )
    title = (
        f"repro bench — scale tier {section['tier']} "
        f"(master_seed={section['master_seed']}, digests identical)"
    )
    return render_table(headers, rows, title=title)
