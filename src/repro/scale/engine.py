"""The barrier-synchronous sharded engine behind the scale tier.

The serial :class:`~repro.sim.engine.Engine` runs exchanges *synchronously*
inside a round: the active node calls straight into its partner, and the
partner replies from whatever state it has at that instant. That semantics
is inherently sequential — the outcome depends on the interleaving of every
exchange in the round — so no shard partition of it can be digest-identical
to the serial run.

The scale tier therefore defines its own round model, chosen so that the
realized overlay is a pure function of ``(workload, seed)`` — independent of
shard count, shard boundaries, and process placement. Each round runs the
two layers in a fixed order (peer sampling, then the shape overlay), and
each layer advances through three globally barriered sub-phases:

- **request** — every node ages its view, picks a gossip partner with its
  *own* RNG stream, and builds its outgoing buffer from pre-round state;
- **respond** — every node answers the requests addressed to it, in
  ascending requester id, computing each reply from its current state and
  merging the received buffer before the next requester is served;
- **absorb** — every requester merges the reply it got with the candidate
  pool it saved at request time.

Within a phase a node touches only its own state, the static profile table,
and the messages addressed to it — so shards can run phases concurrently
and exchange descriptors only at the phase barriers. Determinism then rests
on two invariants, both pinned by tests/scale/:

1. every RNG draw comes from a per-node stream seeded by the
   :func:`~repro.sim.rng.spawn_seeds` SHA-256 splitter (node rank is the
   only key — shard layout never enters the derivation);
2. all order-sensitive processing happens in ascending node id, which is a
   global order no partition can perturb.

Two execution backends share the same :class:`ShardState` logic:
``mode="inline"`` steps every shard in-process (the reference), and
``mode="mp"`` hosts one long-lived :func:`_shard_worker` per shard on a
``ProcessPoolExecutor``, speaking length-delimited pickles over pipes. The
worker keeps all mutable state on its stack — never in module globals
(SHD001) — and the parent degrades to inline execution if the pool cannot
start (sandboxes without working semaphores, platforms without fork).

Simulation-side module: no wall-clock reads (DET003); timing lives in
:mod:`repro.scale.bench`.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.gossip.descriptors import Descriptor
from repro.gossip.selection import Proximity, select_closest
from repro.gossip.views import make_view
from repro.perf.cache import DistanceCache
from repro.scale.columnar import NodeInterner
from repro.shapes import make_shape
from repro.sim.config import GossipParams, TransportCosts
from repro.sim.rng import RandomStreams, spawn_seeds

#: Layer labels of the scale tier's two-protocol stack (the same elementary
#: stack the perf workloads deploy: global peer sampling feeding Vicinity).
PS_LAYER = "peer_sampling"
OVERLAY_LAYER = "overlay"
LAYERS = (PS_LAYER, OVERLAY_LAYER)

#: A routed message: (source node id, destination node id, descriptor buffer).
Message = Tuple[int, int, List[Descriptor]]


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic contiguous partition of node ranks into shards.

    Ranks ``0 .. n_nodes-1`` split into ``n_shards`` contiguous blocks; the
    first ``n_nodes % n_shards`` blocks get the extra node. The plan is a
    pure function of its two integers, so every process — parent and
    workers alike — reconstructs the identical partition from the spec.
    """

    n_nodes: int
    n_shards: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not 1 <= self.n_shards <= self.n_nodes:
            raise ConfigurationError(
                f"n_shards must be in [1, n_nodes], got {self.n_shards}"
            )

    def members(self, shard: int) -> range:
        """The ranks owned by ``shard``, as a contiguous range."""
        if not 0 <= shard < self.n_shards:
            raise ConfigurationError(
                f"shard must be in [0, {self.n_shards}), got {shard}"
            )
        quotient, remainder = divmod(self.n_nodes, self.n_shards)
        start = shard * quotient + min(shard, remainder)
        return range(start, start + quotient + (1 if shard < remainder else 0))

    def shard_of(self, rank: int) -> int:
        """The shard owning ``rank``."""
        if not 0 <= rank < self.n_nodes:
            raise ConfigurationError(
                f"rank must be in [0, {self.n_nodes}), got {rank}"
            )
        quotient, remainder = divmod(self.n_nodes, self.n_shards)
        pivot = remainder * (quotient + 1)
        if rank < pivot:
            return rank // (quotient + 1)
        return remainder + (rank - pivot) // quotient


@dataclass(frozen=True)
class ScaleSpec:
    """Everything a worker needs to rebuild its shard — primitives only, so
    it pickles into the pool without dragging live state across."""

    workload: str
    shape: str
    n_nodes: int
    seed: int
    backend: str = "object"
    n_shards: int = 1


class _ScaleNode:
    """One node of the barrier-synchronous model.

    The gossip semantics mirror :class:`~repro.gossip.peer_sampling.PeerSampling`
    (TOCS 2007 push-pull with healer/swapper selection, oldest-first partner)
    and :class:`~repro.gossip.vicinity.Vicinity` (greedy closest-``k`` merge
    topped up from the random layer) — re-expressed as request/respond/absorb
    halves so an exchange can cross a shard boundary.
    """

    __slots__ = (
        "node_id",
        "profile",
        "target_degree",
        "ps_params",
        "ov_params",
        "descriptor_ttl",
        "ps_view",
        "ov_view",
        "distances",
        "rng_boot",
        "rng_ps",
        "rng_ov",
        "_advert_ps",
        "_advert_ov",
        "_pending_ps",
        "_pending_ov",
    )

    def __init__(
        self,
        node_id: int,
        profile,
        target_degree: int,
        ps_params: GossipParams,
        ov_params: GossipParams,
        node_seed: int,
        proximity: Proximity,
    ):
        self.node_id = node_id
        self.profile = profile
        self.target_degree = target_degree
        self.ps_params = ps_params
        self.ov_params = ov_params
        # Vicinity's default: live neighbours refresh far faster than this.
        self.descriptor_ttl = max(24, 2 * ov_params.view_size)
        self.ps_view = make_view(ps_params)
        self.ov_view = make_view(ov_params)
        self.distances = DistanceCache(proximity, profile)
        streams = RandomStreams(node_seed)
        self.rng_boot = streams.stream("bootstrap")
        self.rng_ps = streams.stream(PS_LAYER)
        self.rng_ov = streams.stream(OVERLAY_LAYER)
        self._advert_ps = Descriptor(node_id, age=0, profile=None)
        self._advert_ov = Descriptor(node_id, age=0, profile=profile)
        self._pending_ps: Optional[List[Descriptor]] = None
        self._pending_ov: Optional[List[Descriptor]] = None

    # -- bootstrap --------------------------------------------------------------

    def bootstrap(self, n_nodes: int) -> None:
        """WireKOut over the full population, without materializing it.

        Sampling indices from ``range(n_nodes - 1)`` and shifting past our
        own id draws the same distribution as sampling an explicit
        candidate list, at O(view_size) instead of O(n_nodes) per node.
        """
        count = min(self.ps_params.view_size, n_nodes - 1)
        if count <= 0:
            return
        for pick in self.rng_boot.sample(range(n_nodes - 1), count):
            node_id = pick if pick < self.node_id else pick + 1
            self.ps_view.insert(Descriptor(node_id, age=0, profile=None))

    # -- peer sampling ----------------------------------------------------------

    def ps_request(self) -> Optional[Tuple[int, List[Descriptor]]]:
        self.ps_view.increase_age()
        partner = self.ps_view.oldest()
        if partner is None:
            return None
        buffer = [self._advert_ps]
        buffer.extend(self.ps_view.sample(self.rng_ps, self.ps_params.gossip_size - 1))
        self._pending_ps = buffer
        return partner.node_id, buffer

    def ps_respond(self, received: List[Descriptor]) -> List[Descriptor]:
        reply = [self._advert_ps]
        reply.extend(self.ps_view.sample(self.rng_ps, self.ps_params.gossip_size - 1))
        self._ps_apply(sent=reply, received=received)
        return reply

    def ps_absorb(self, reply: List[Descriptor]) -> None:
        sent, self._pending_ps = self._pending_ps, None
        self._ps_apply(sent=sent or [], received=reply)

    def _ps_apply(self, sent: List[Descriptor], received: List[Descriptor]) -> None:
        """The TOCS select step (mirrors ``PeerSampling._apply``)."""
        params = self.ps_params
        pool = {d.node_id: d for d in self.ps_view}
        for descriptor in received:
            if descriptor.node_id == self.node_id:
                continue
            current = pool.get(descriptor.node_id)
            if current is None or descriptor.age < current.age:
                pool[descriptor.node_id] = descriptor

        def excess() -> int:
            return len(pool) - params.view_size

        if excess() > 0 and params.healer > 0:
            doomed = heapq.nsmallest(
                min(params.healer, excess()),
                pool.values(),
                key=lambda d: (-d.age, d.node_id),
            )
            for descriptor in doomed:
                del pool[descriptor.node_id]
        if excess() > 0 and params.swapper > 0:
            swaps = min(params.swapper, excess())
            for descriptor in sent:
                if swaps <= 0:
                    break
                if descriptor.node_id == self.node_id:
                    continue
                if pool.pop(descriptor.node_id, None) is not None:
                    swaps -= 1
        while excess() > 0:
            victim = self.rng_ps.choice(list(pool.keys()))
            del pool[victim]
        self.ps_view.replace(pool.values())

    # -- shape overlay ----------------------------------------------------------

    def ov_request(
        self, profiles: List, age0: List[Descriptor]
    ) -> Optional[Tuple[int, List[Descriptor]]]:
        self.ov_view.increase_age()
        partner = self.ov_view.oldest()
        if partner is not None:
            partner_id = partner.node_id
        else:
            # Empty overlay view (round 0): bootstrap from the random layer,
            # exactly Vicinity's fallback.
            candidates = [n for n in self.ps_view.ids() if n != self.node_id]
            if not candidates:
                self._pending_ov = None
                return None
            partner_id = self.rng_ov.choice(candidates)
        pool = self._ov_pool(age0)
        buffer = select_closest(
            self._fresh(pool) + [self._advert_ov],
            profiles[partner_id],
            self.distances,
            self.ov_params.gossip_size,
            exclude_id=partner_id,
        )
        self._pending_ov = pool
        return partner_id, buffer

    def ov_respond(
        self,
        requester_id: int,
        received: List[Descriptor],
        profiles: List,
        age0: List[Descriptor],
    ) -> List[Descriptor]:
        pool = self._ov_pool(age0)
        reply = select_closest(
            self._fresh(pool) + [self._advert_ov],
            profiles[requester_id],
            self.distances,
            self.ov_params.gossip_size,
            exclude_id=requester_id,
        )
        self._ov_merge(pool, received)
        return reply

    def ov_absorb(self, reply: List[Descriptor]) -> None:
        pool, self._pending_ov = self._pending_ov, None
        self._ov_merge(pool or [], reply)

    def _ov_pool(self, age0: List[Descriptor]) -> List[Descriptor]:
        """View entries plus fresh candidates harvested from peer sampling.

        In the serial engine Vicinity peeks its peers' cached self
        descriptors; here profiles are static per run, so the shard keeps
        one immutable age-0 descriptor per node (``age0``) and every pool
        shares those — no cross-shard read, no per-pool minting.
        """
        pool = self.ov_view.descriptors()
        own = self.node_id
        for node_id in self.ps_view.ids():
            if node_id != own:
                pool.append(age0[node_id])
        return pool

    def _ov_merge(self, pool: List[Descriptor], received: List[Descriptor]) -> None:
        best = select_closest(
            self._fresh(pool + [d.aged() for d in received]),
            self.profile,
            self.distances,
            self.ov_params.view_size,
            exclude_id=self.node_id,
        )
        self.ov_view.replace(best)

    def _fresh(self, descriptors: List[Descriptor]) -> List[Descriptor]:
        ttl = self.descriptor_ttl
        return [d for d in descriptors if d.age <= ttl]

    # -- exposure ----------------------------------------------------------------

    def neighbors(self, layer: str) -> List[int]:
        if layer == PS_LAYER:
            return self.ps_view.ids()
        best = self.ov_view.closest_to(self.target_degree, self.distances)
        return [descriptor.node_id for descriptor in best]


class ShardState:
    """One shard's nodes plus the static tables shared by every shard.

    The same class backs both execution modes: the inline engine holds a
    list of these, the pool worker builds exactly one from the pickled
    :class:`ScaleSpec` on its own stack.
    """

    def __init__(self, spec: ScaleSpec, shard_index: int):
        self.spec = spec
        self.shard_index = shard_index
        plan = ShardPlan(spec.n_nodes, spec.n_shards)
        shape = make_shape(spec.shape)
        n = spec.n_nodes
        base = GossipParams(backend=spec.backend)
        view_size = shape.view_size(n, base.view_size)
        sized = GossipParams(
            view_size=view_size,
            gossip_size=min(base.gossip_size, view_size + 1),
            healer=base.healer,
            swapper=base.swapper,
            backend=spec.backend,
        )
        proximity = Proximity(shape.metric(n))
        # Interned identity: ranks are the dense ids, and the interner keeps
        # the rank <-> node-id bijection explicit for adjacency collection.
        self.interner = NodeInterner(range(n))
        self.profiles = [shape.coordinate(rank, n) for rank in range(n)]
        # One immutable age-0 descriptor per node, shared by every harvest
        # pool this shard builds (descriptors are immutable, so sharing is
        # free) — the static table the BSP model reads instead of peeking
        # live peers.
        self.age0 = [
            Descriptor(rank, age=0, profile=self.profiles[rank]) for rank in range(n)
        ]
        self._targets = {
            rank: shape.target_neighbors(rank, n) for rank in plan.members(shard_index)
        }
        node_seeds = spawn_seeds(spec.seed, n, "scale", spec.workload)
        self.nodes: Dict[int, _ScaleNode] = {}
        for rank in plan.members(shard_index):
            node = _ScaleNode(
                node_id=rank,
                profile=self.profiles[rank],
                target_degree=max(1, shape.rank_degree(rank, n)),
                ps_params=base,
                ov_params=sized,
                node_seed=node_seeds[rank],
                proximity=proximity,
            )
            node.bootstrap(n)
            self.nodes[rank] = node

    # -- the three phases ------------------------------------------------------

    def request(self, layer: str) -> List[Message]:
        """Phase A: every owned node builds its outgoing request."""
        out: List[Message] = []
        for rank, node in self.nodes.items():  # insertion order == ascending
            if layer == PS_LAYER:
                built = node.ps_request()
            else:
                built = node.ov_request(self.profiles, self.age0)
            if built is not None:
                partner_id, buffer = built
                out.append((rank, partner_id, buffer))
        return out

    def respond(self, layer: str, incoming: List[Message]) -> List[Message]:
        """Phase B: owned nodes answer, ascending node then requester id."""
        by_dst: Dict[int, List[Tuple[int, List[Descriptor]]]] = {}
        for src, dst, buffer in incoming:
            by_dst.setdefault(dst, []).append((src, buffer))
        replies: List[Message] = []
        for dst in sorted(by_dst):
            node = self.nodes[dst]
            for src, buffer in sorted(by_dst[dst], key=lambda item: item[0]):
                if layer == PS_LAYER:
                    reply = node.ps_respond(buffer)
                else:
                    reply = node.ov_respond(src, buffer, self.profiles, self.age0)
                replies.append((dst, src, reply))
        return replies

    def absorb(self, layer: str, replies: List[Message]) -> None:
        """Phase C: owned requesters merge their replies, ascending id."""
        for _, requester, reply in sorted(replies, key=lambda item: item[1]):
            node = self.nodes[requester]
            if layer == PS_LAYER:
                node.ps_absorb(reply)
            else:
                node.ov_absorb(reply)

    def converged(self) -> bool:
        """Whether every owned node covers its target neighbourhood.

        The shard-local half of ``Shape.converged``: the global check is
        exactly the conjunction over shards, and keeping it shard-side
        avoids shipping the full adjacency across the pool every round.
        """
        for rank, node in self.nodes.items():
            wanted = self._targets[rank]
            if wanted and not wanted <= set(node.neighbors(OVERLAY_LAYER)):
                return False
        return True

    def adjacency(self) -> Dict[int, Dict[str, List[int]]]:
        """The (node -> layer -> neighbour ids) record of this shard."""
        record: Dict[int, Dict[str, List[int]]] = {}
        for rank, node in self.nodes.items():
            record[self.interner.resolve(rank)] = {
                layer: node.neighbors(layer) for layer in LAYERS
            }
        return record


def _shard_worker(conn, spec: ScaleSpec, shard_index: int) -> None:
    """The long-lived pool task hosting one shard.

    All mutable state — the shard, its views, its RNG streams — lives in
    this frame; the function never writes a module global (SHD001), so a
    worker process can host shards of successive runs without bleed.
    """
    try:
        shard = ShardState(spec, shard_index)
        conn.send(("ready", shard_index))
        while True:
            command, payload = conn.recv()
            if command == "request":
                conn.send(("ok", shard.request(payload)))
            elif command == "respond":
                layer, routed = payload
                conn.send(("ok", shard.respond(layer, routed)))
            elif command == "absorb":
                layer, routed = payload
                shard.absorb(layer, routed)
                conn.send(("ok", None))
            elif command == "adjacency":
                conn.send(("ok", shard.adjacency()))
            elif command == "converged":
                conn.send(("ok", shard.converged()))
            else:  # "stop" (or anything unknown): acknowledge and exit
                conn.send(("ok", None))
                return
    except EOFError:  # parent went away: nothing to report to
        return
    except BaseException as error:  # surface the failure at the barrier
        try:
            conn.send(("error", repr(error)))
        except OSError:
            pass
        raise
    finally:
        conn.close()


class _InlineShards:
    """Reference execution backend: every shard stepped in this process."""

    def __init__(self, spec: ScaleSpec):
        self._shards = [ShardState(spec, index) for index in range(spec.n_shards)]

    def request(self, layer: str) -> List[List[Message]]:
        return [shard.request(layer) for shard in self._shards]

    def respond(self, layer: str, routed: List[List[Message]]) -> List[List[Message]]:
        return [
            shard.respond(layer, batch)
            for shard, batch in zip(self._shards, routed)
        ]

    def absorb(self, layer: str, routed: List[List[Message]]) -> None:
        for shard, batch in zip(self._shards, routed):
            shard.absorb(layer, batch)

    def adjacency(self) -> Dict[int, Dict[str, List[int]]]:
        record: Dict[int, Dict[str, List[int]]] = {}
        for shard in self._shards:
            record.update(shard.adjacency())
        return record

    def converged(self) -> bool:
        return all(shard.converged() for shard in self._shards)

    def close(self) -> None:
        pass


class _ProcessShards:
    """Pool-backed execution: one pipe-driven worker per shard.

    The parent's side of the phase protocol. Every phase is one
    send/receive per shard — requests fan out before any reply is awaited,
    so shards genuinely overlap between barriers.
    """

    def __init__(self, spec: ScaleSpec):
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            context = multiprocessing.get_context()
        self._executor = ProcessPoolExecutor(
            max_workers=spec.n_shards, mp_context=context
        )
        self._conns = []
        self._futures = []
        child_ends = []
        try:
            for index in range(spec.n_shards):
                parent_end, child_end = context.Pipe()
                future = self._executor.submit(
                    _shard_worker, child_end, spec, index
                )
                self._conns.append(parent_end)
                self._futures.append(future)
                child_ends.append(child_end)
            for conn in self._conns:
                if not conn.poll(60):
                    raise RuntimeError("shard worker failed to report ready")
                status, _ = conn.recv()
                if status != "ready":
                    raise RuntimeError(f"shard worker failed to start: {status}")
            # Only now is it safe to drop the child ends: "ready" proves the
            # submission was pickled and delivered (the executor's feeder
            # thread pickles asynchronously — closing earlier races it).
            for child_end in child_ends:
                child_end.close()
        except BaseException:
            for child_end in child_ends:
                try:
                    child_end.close()
                except OSError:
                    pass
            self.close()
            raise

    def _broadcast(self, command: str, payloads) -> List:
        for conn, payload in zip(self._conns, payloads):
            conn.send((command, payload))
        results = []
        for conn in self._conns:
            status, value = conn.recv()
            if status != "ok":
                raise RuntimeError(f"shard worker failed: {value}")
            results.append(value)
        return results

    def request(self, layer: str) -> List[List[Message]]:
        return self._broadcast("request", [layer] * len(self._conns))

    def respond(self, layer: str, routed: List[List[Message]]) -> List[List[Message]]:
        return self._broadcast("respond", [(layer, batch) for batch in routed])

    def absorb(self, layer: str, routed: List[List[Message]]) -> None:
        self._broadcast("absorb", [(layer, batch) for batch in routed])

    def adjacency(self) -> Dict[int, Dict[str, List[int]]]:
        record: Dict[int, Dict[str, List[int]]] = {}
        for partial in self._broadcast("adjacency", [None] * len(self._conns)):
            record.update(partial)
        return record

    def converged(self) -> bool:
        return all(self._broadcast("converged", [None] * len(self._conns)))

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop", None))
            except OSError:
                pass
        for conn in self._conns:
            try:
                if conn.poll(5):
                    conn.recv()
            except (OSError, EOFError):
                pass
            conn.close()
        self._executor.shutdown(wait=False, cancel_futures=True)


class ShardedEngine:
    """The scale tier's engine: BSP rounds over a sharded node population.

    Parameters
    ----------
    workload, shape, n_nodes:
        The deployed cell — same vocabulary as the perf workload matrix.
    seed:
        Master seed; per-node streams derive from it via ``spawn_seeds``.
    backend:
        Partial-view representation (``"object"`` or ``"columnar"``).
    n_shards:
        How many contiguous rank blocks the population splits into.
    mode:
        ``"inline"`` steps shards sequentially in-process (the reference);
        ``"mp"`` hosts one worker per shard on a process pool, degrading to
        inline if the pool cannot start. ``mode_used`` records the outcome.

    Digest invariant (pinned by tests/scale/test_digests.py): for a fixed
    ``(workload, seed)``, :meth:`digest` is byte-identical across every
    combination of ``backend``, ``n_shards``, and ``mode``.
    """

    def __init__(
        self,
        workload: str,
        shape: str,
        n_nodes: int,
        seed: int,
        backend: str = "object",
        n_shards: int = 1,
        mode: str = "inline",
        costs: Optional[TransportCosts] = None,
    ):
        if type(self) is ShardedEngine:
            # Direct construction is the legacy path; the canonical entry
            # point is repro.runtime.api.make_runner (kind="sharded").
            warnings.warn(
                "constructing ShardedEngine directly is deprecated; use "
                "repro.runtime.make_runner(RunnerConfig(kind='sharded'), ...)",
                DeprecationWarning,
                stacklevel=2,
            )
        if mode not in ("inline", "mp"):
            raise ConfigurationError(f"mode must be 'inline' or 'mp', got {mode!r}")
        self.spec = ScaleSpec(
            workload=workload,
            shape=shape,
            n_nodes=n_nodes,
            seed=seed,
            backend=backend,
            n_shards=n_shards,
        )
        self.plan = ShardPlan(n_nodes, n_shards)
        self.costs = costs or TransportCosts()
        self.round = 0
        self.messages = 0
        self.bytes = 0
        self.mode_used = mode
        #: Optional observability sink (:class:`~repro.obs.instrument.Instrument`).
        #: When set, :meth:`run_round` times each BSP phase as ``shard:*``
        #: spans. Pure observation: the digest invariant holds with or
        #: without a sink attached (pinned by tests/scale/test_spans.py).
        self.obs: Optional[Any] = None
        if mode == "mp":
            try:
                self._shards = _ProcessShards(self.spec)
            except Exception:
                # No usable pool (sandboxed semaphores, missing fork):
                # the inline backend computes the identical rounds.
                self.mode_used = "inline"
                self._shards = _InlineShards(self.spec)
        else:
            self._shards = _InlineShards(self.spec)

    # -- rounds ------------------------------------------------------------------

    def run_round(self) -> None:
        """One BSP round: both layers, three barriered phases each.

        With an ``obs`` sink attached, every phase is timed as a span:
        ``shard:request`` / ``shard:respond`` / ``shard:absorb`` cover the
        shard-side compute (including, in ``mp`` mode, the pipe round
        trips), and ``shard:barrier`` covers the supervisor-side gather and
        routing between phases — the time every shard's output must be in
        hand before the next phase can start.
        """
        obs = self.obs
        shard_of = self.plan.shard_of
        n_shards = self.spec.n_shards
        if obs is not None:
            obs.span_begin("round")
        for layer in LAYERS:
            if obs is not None:
                obs.span_begin("shard:request")
            requests = self._shards.request(layer)
            if obs is not None:
                obs.span_end("shard:request")
                obs.span_begin("shard:barrier")
            routed: List[List[Message]] = [[] for _ in range(n_shards)]
            for batch in requests:
                for message in batch:
                    self._account(message)
                    routed[shard_of(message[1])].append(message)
            if obs is not None:
                obs.span_end("shard:barrier")
                obs.span_begin("shard:respond")
            replies = self._shards.respond(layer, routed)
            if obs is not None:
                obs.span_end("shard:respond")
                obs.span_begin("shard:barrier")
            returned: List[List[Message]] = [[] for _ in range(n_shards)]
            for batch in replies:
                for message in batch:
                    self._account(message)
                    returned[shard_of(message[1])].append(message)
            if obs is not None:
                obs.span_end("shard:barrier")
                obs.span_begin("shard:absorb")
            self._shards.absorb(layer, returned)
            if obs is not None:
                obs.span_end("shard:absorb")
        if obs is not None:
            obs.span_end("round")
            obs.gauge("shard_messages", self.messages)
            obs.gauge("shard_bytes", self.bytes)
        self.round += 1

    def _account(self, message: Message) -> None:
        self.messages += 1
        self.bytes += self.costs.message_bytes(len(message[2]))

    # -- observation -------------------------------------------------------------

    def adjacency(self) -> Dict[int, Dict[str, List[int]]]:
        """The merged (node -> layer -> neighbours) record, all shards."""
        return self._shards.adjacency()

    def converged(self) -> bool:
        """Whether the shape's every target edge is realized (all shards)."""
        return self._shards.converged()

    def overlay_adjacency(self) -> Dict[int, List[int]]:
        """Just the shape overlay's neighbour lists (convergence checks)."""
        return {
            node_id: per_layer[OVERLAY_LAYER]
            for node_id, per_layer in self.adjacency().items()
        }

    def digest(self) -> str:
        """Canonical SHA-256 of the full adjacency (the determinism gate)."""
        from repro.perf.digest import adjacency_digest

        return adjacency_digest(self.adjacency())

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self._shards.close()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
