"""A request/delivery facade over the router.

``MessageService`` is what an application embedded in the assembly would
use: node-to-node sends, port-addressed calls ("send this to
``storage.ingest``, whoever manages it"), and aggregate delivery statistics
for QoS measurements (mean hops, link crossings, success rate).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Sequence, Union

from repro.app.routing import Route, Router
from repro.core.layers import LAYER_PORT_SELECTION
from repro.core.link import PortRef
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Deployment


@dataclass
class DeliveryReport:
    """Outcome of one send."""

    source: int
    destination: Optional[int]
    delivered: bool
    route: Optional[Route] = None
    error: str = ""

    @property
    def hops(self) -> Optional[int]:
        return self.route.hops if self.route is not None else None


@dataclass
class TrafficStats:
    """Aggregate over many deliveries."""

    attempted: int
    delivered: int
    mean_hops: float
    max_hops: int
    link_crossings: int

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.attempted if self.attempted else 1.0


class MessageService:
    """Application messaging bound to one deployment."""

    def __init__(self, deployment: "Deployment", max_hops: int = 256):
        self.deployment = deployment
        self.router = Router(deployment, max_hops=max_hops)

    # -- sends ---------------------------------------------------------------

    def send(self, source: int, destination: int) -> DeliveryReport:
        """Route one message node-to-node."""
        try:
            route = self.router.route(source, destination)
        except ReproError as exc:
            # RoutingError, but also e.g. role lookups racing a failure
            # wave: any overlay-state error is a failed delivery, not a
            # crash of the application layer.
            return DeliveryReport(
                source=source,
                destination=destination,
                delivered=False,
                error=str(exc),
            )
        return DeliveryReport(
            source=source, destination=destination, delivered=True, route=route
        )

    def call(
        self, source: int, port: Union[str, PortRef]
    ) -> DeliveryReport:
        """Send to *whoever currently manages* a port (``"comp.port"``).

        The port manager is resolved with the **source's local knowledge**
        when the port belongs to its own component, and with the managing
        component's own (converged) election otherwise — mirroring how a
        real request would be addressed through the assembly.
        """
        ref = PortRef.parse(port) if isinstance(port, str) else port
        network = self.deployment.network
        role_map = self.deployment.role_map
        source_component = role_map.role(source).component
        manager: Optional[int] = None
        if source_component == ref.component:
            selection = network.node(source).protocol(LAYER_PORT_SELECTION)
            manager = selection.manager_of(ref.port)
        else:
            members = role_map.members(ref.component)
            live = [
                (node_id, rank)
                for node_id, rank in members
                if network.is_alive(node_id)
            ]
            selector = self.deployment.assembly.port(ref).selector
            manager = selector.choose(live)
        if manager is None or not network.is_alive(manager):
            return DeliveryReport(
                source=source,
                destination=None,
                delivered=False,
                error=f"no live manager for {ref}",
            )
        return self.send(source, manager)

    # -- aggregate traffic ---------------------------------------------------------

    def run_traffic(
        self, pairs: Sequence[Sequence[int]]
    ) -> TrafficStats:
        """Deliver a batch of (source, destination) pairs and aggregate."""
        reports: List[DeliveryReport] = [
            self.send(source, destination) for source, destination in pairs
        ]
        delivered = [report for report in reports if report.delivered]
        hop_counts = [report.route.hops for report in delivered]
        return TrafficStats(
            attempted=len(reports),
            delivered=len(delivered),
            mean_hops=(sum(hop_counts) / len(hop_counts)) if hop_counts else 0.0,
            max_hops=max(hop_counts) if hop_counts else 0,
            link_crossings=sum(
                report.route.link_crossings for report in delivered
            ),
        )

    def random_traffic(self, n_messages: int, seed: int = 0) -> TrafficStats:
        """Uniform random source/destination traffic over live nodes."""
        import random

        rng = random.Random(seed)
        alive = self.deployment.network.alive_ids()
        pairs = [
            rng.sample(alive, 2)
            for _ in range(n_messages)
        ]
        return self.run_traffic(pairs)
