"""Dissemination over the realized topology.

Broadcast is the workload the paper's cited application classes (streaming,
pub/sub, decentralized social networks) run on their overlays. Two
mechanisms are provided, both operating purely on realized neighbour
relations:

- :func:`flood` — deterministic flooding along core-overlay edges and
  realized links: every informed node forwards to all its neighbours each
  round. Reaches everything reachable, at ``O(edges)`` message cost.
- :func:`gossip_broadcast` — probabilistic infect-and-push: each informed
  node pushes to ``fanout`` random neighbours per round (core ∪ UO1 ∪ link
  ∪ UO2 contacts). The classic epidemic trade-off: ~``fanout × n`` messages
  per round, latency logarithmic in the component size.

Both return a :class:`BroadcastResult` with per-round infection counts, so
benches can compare cost/latency — a QoS decision the paper's future work
gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Set

from repro.errors import ConfigurationError
from repro.core.layers import (
    LAYER_CORE,
    LAYER_PORT_CONNECTION,
    LAYER_UO1,
    LAYER_UO2,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Deployment


@dataclass
class BroadcastResult:
    """Outcome of one dissemination."""

    origin: int
    informed: Set[int] = field(default_factory=set)
    per_round: List[int] = field(default_factory=list)
    messages: int = 0

    @property
    def rounds(self) -> int:
        return len(self.per_round)

    def coverage(self, population: int) -> float:
        return len(self.informed) / population if population else 1.0


def _neighbors_of(deployment: "Deployment", node_id: int, include_uo2: bool) -> List[int]:
    """A node's forwarding set: core shape neighbours, realized links where
    it is a manager, and (optionally) UO2 long-distance contacts."""
    node = deployment.network.node(node_id)
    out: Set[int] = set()
    out.update(node.protocol(LAYER_CORE).neighbors())
    out.update(node.protocol(LAYER_PORT_CONNECTION).neighbors())
    if include_uo2:
        out.update(node.protocol(LAYER_UO2).neighbors())
        out.update(node.protocol(LAYER_UO1).neighbors())
    out.discard(node_id)
    return [other for other in out if deployment.network.is_alive(other)]


def flood(
    deployment: "Deployment",
    origin: int,
    max_rounds: int = 64,
    include_uo2: bool = False,
) -> BroadcastResult:
    """Flood from ``origin`` along realized edges; returns infection trace."""
    if not deployment.network.is_alive(origin):
        raise ConfigurationError(f"origin {origin} is not alive")
    result = BroadcastResult(origin=origin, informed={origin})
    frontier = [origin]
    for _ in range(max_rounds):
        if not frontier:
            break
        next_frontier: List[int] = []
        for node_id in frontier:
            for neighbor in _neighbors_of(deployment, node_id, include_uo2):
                result.messages += 1
                if neighbor not in result.informed:
                    result.informed.add(neighbor)
                    next_frontier.append(neighbor)
        result.per_round.append(len(result.informed))
        frontier = next_frontier
    return result


def gossip_broadcast(
    deployment: "Deployment",
    origin: int,
    fanout: int = 2,
    max_rounds: int = 64,
    seed: int = 0,
    include_uo2: bool = True,
) -> BroadcastResult:
    """Epidemic push from ``origin``: each informed node pushes to ``fanout``
    random neighbours per round, until a round infects nobody new (and the
    frontier has no chance left) or the budget runs out."""
    if fanout < 1:
        raise ConfigurationError(f"fanout must be >= 1, got {fanout}")
    if not deployment.network.is_alive(origin):
        raise ConfigurationError(f"origin {origin} is not alive")
    rng = deployment.streams.fork("broadcast").stream("push", origin, seed)
    result = BroadcastResult(origin=origin, informed={origin})
    population = deployment.network.alive_count()
    stale_rounds = 0
    for _ in range(max_rounds):
        newly: Set[int] = set()
        for node_id in list(result.informed):
            neighbors = _neighbors_of(deployment, node_id, include_uo2)
            if not neighbors:
                continue
            targets = (
                neighbors
                if len(neighbors) <= fanout
                else rng.sample(neighbors, fanout)
            )
            for target in targets:
                result.messages += 1
                if target not in result.informed:
                    newly.add(target)
        result.informed.update(newly)
        result.per_round.append(len(result.informed))
        if len(result.informed) >= population:
            break
        stale_rounds = stale_rounds + 1 if not newly else 0
        if stale_rounds >= 3:
            break  # converged short of full coverage (partition or bad luck)
    return result
