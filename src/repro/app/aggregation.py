"""Component-scoped gossip aggregation (push-sum).

The paper's future work calls for "a common framework and new tools [...]
to detect and evaluate such composition opportunities" — i.e. components
must be able to *measure themselves* (load, size, latency) to drive QoS
decisions. The standard decentralized tool is push-sum gossip averaging
(Kempe, Dobra & Gehrke, FOCS 2003): every node holds a ``(sum, weight)``
pair and repeatedly splits it with a random neighbour; all estimates
``sum/weight`` converge exponentially to the true average, and
``average × member count`` recovers totals.

:class:`PushSum` runs as one more protocol on the node stack, gossiping
with UO1 neighbours so the aggregate stays scoped to the node's component.
:func:`attach_push_sum` / :func:`component_average` wrap the lifecycle for
applications.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.core.layers import LAYER_UO1
from repro.core.profiles import NodeProfile
from repro.sim.engine import RoundContext
from repro.sim.protocol import Protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Deployment

#: Attachment label for the aggregation layer.
LAYER_AGGREGATION = "aggregation_pushsum"


class PushSum(Protocol):
    """One node's push-sum instance, scoped to its component.

    Parameters
    ----------
    node_id, profile:
        Identity and role of the hosting node.
    value:
        The local measurement contributed to the average.
    layer, uo1_layer:
        Attachment labels of this protocol and the same-component overlay
        supplying gossip partners.
    """

    def __init__(
        self,
        node_id: int,
        profile: NodeProfile,
        value: float,
        layer: str = LAYER_AGGREGATION,
        uo1_layer: str = LAYER_UO1,
    ):
        self.node_id = node_id
        self.profile = profile
        self.layer = layer
        self.uo1_layer = uo1_layer
        self.sum = float(value)
        self.weight = 1.0

    # -- queries -------------------------------------------------------------

    @property
    def estimate(self) -> float:
        """This node's current estimate of the component average."""
        if self.weight == 0.0:
            return 0.0
        return self.sum / self.weight

    # -- protocol -------------------------------------------------------------

    def step(self, ctx: RoundContext) -> None:
        # A lost push is modelled as a skipped turn, never as lost mass —
        # keeping the push-sum invariant exact (real deployments pair the
        # push with an ack/rollback for the same reason).
        if not ctx.exchange_ok():
            return
        partner_id = self._choose_partner(ctx)
        if partner_id is None:
            return
        # Push half of the mass to the partner, keep half.
        half_sum, half_weight = self.sum / 2.0, self.weight / 2.0
        self.sum, self.weight = half_sum, half_weight
        partner = ctx.network.node(partner_id).protocol(self.layer)
        assert isinstance(partner, PushSum)
        partner.on_push(half_sum, half_weight)
        # One scalar pair per message in the byte model (≈ one descriptor).
        ctx.transport.record_message(self.layer, 1)

    def on_push(self, pushed_sum: float, pushed_weight: float) -> None:
        self.sum += pushed_sum
        self.weight += pushed_weight

    def _choose_partner(self, ctx: RoundContext) -> Optional[int]:
        if not ctx.node.has_protocol(self.uo1_layer):
            return None
        candidates = []
        for node_id in ctx.node.protocol(self.uo1_layer).neighbors():
            if not ctx.network.is_alive(node_id):
                continue
            peer = ctx.network.node(node_id)
            if peer.has_protocol(self.layer):
                candidates.append(node_id)
        if not candidates:
            return None
        return ctx.rng().choice(candidates)


def attach_push_sum(
    deployment: "Deployment",
    component: str,
    value_of: Callable[[int], float],
) -> None:
    """Attach a push-sum instance to every live member of ``component``.

    ``value_of(node_id)`` supplies each member's local measurement.
    Idempotent per deployment/component pair is *not* attempted: attaching
    twice raises, like any duplicate layer.
    """
    members = deployment.role_map.member_ids(component)
    if not members:
        raise ConfigurationError(f"component {component!r} has no members")
    for node_id in members:
        if not deployment.network.is_alive(node_id):
            continue
        node = deployment.network.node(node_id)
        role = deployment.role_map.role(node_id)
        profile = deployment._profile_for(role)
        node.attach(
            LAYER_AGGREGATION,
            PushSum(node_id, profile, value_of(node_id)),
        )


def estimates(deployment: "Deployment", component: str) -> Dict[int, float]:
    """Current per-member estimates of the component average."""
    out: Dict[int, float] = {}
    for node_id in deployment.role_map.member_ids(component):
        if not deployment.network.is_alive(node_id):
            continue
        node = deployment.network.node(node_id)
        if node.has_protocol(LAYER_AGGREGATION):
            protocol = node.protocol(LAYER_AGGREGATION)
            assert isinstance(protocol, PushSum)
            out[node_id] = protocol.estimate
    return out


def component_average(
    deployment: "Deployment",
    component: str,
    value_of: Callable[[int], float],
    rounds: int = 30,
    tolerance: float = 1e-3,
) -> Tuple[float, int]:
    """Attach push-sum, run until all estimates agree, return (average, rounds).

    Convergence: the spread of member estimates falls below ``tolerance``
    relative to their mean (or the round budget runs out; the best estimate
    so far is returned either way).
    """
    attach_push_sum(deployment, component, value_of)
    executed = 0
    for _ in range(rounds):
        deployment.run(1)
        executed += 1
        values: List[float] = list(estimates(deployment, component).values())
        if not values:
            break
        spread = max(values) - min(values)
        scale = max(1e-12, abs(sum(values) / len(values)))
        if spread / scale <= tolerance:
            break
    values = list(estimates(deployment, component).values())
    average = sum(values) / len(values) if values else 0.0
    return average, executed
