"""Application layer: communicating over a realized assembly.

The point of maintaining a topology is running traffic on it. This package
provides the messaging surface the paper's motivation sketches — services
composed of components exchanging requests through ports and links, plus
the future-work idea of *opportunistic* cross-component reach through UO2's
long-distance contacts:

- :class:`~repro.app.routing.Router` — hop-by-hop routing over the realized
  overlays, using only knowledge each node locally holds (core-protocol
  neighbours, port bindings, UO2 contacts);
- :class:`~repro.app.messaging.MessageService` — a request/delivery facade
  with hop accounting, used by the examples and the QoS ablation.
"""

from repro.app.aggregation import PushSum, attach_push_sum, component_average
from repro.app.broadcast import BroadcastResult, flood, gossip_broadcast
from repro.app.messaging import DeliveryReport, MessageService
from repro.app.routing import Route, Router, RoutingError

__all__ = [
    "BroadcastResult",
    "DeliveryReport",
    "MessageService",
    "PushSum",
    "Route",
    "Router",
    "RoutingError",
    "attach_push_sum",
    "component_average",
    "flood",
    "gossip_broadcast",
]
