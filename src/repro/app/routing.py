"""Hop-by-hop routing over the realized assembly.

Routing uses only state the involved nodes actually hold:

- **intra-component**: greedy forwarding on the component shape's metric —
  each hop moves to the core-protocol neighbour strictly closest to the
  destination's coordinate (the standard routing scheme on metric overlays:
  rings, grids, tori, trees and hypercubes are all greedy-routable; cliques
  are one hop);
- **inter-component**: the assembly's link graph is walked component by
  component. Within each component the message is routed to the manager of
  the port that links toward the next component (known locally through port
  selection), crosses the link (known through port connection), and
  continues;
- **opportunistic**: when no link path exists, UO2's long-distance contacts
  are used as a direct shortcut — the paper's future-work idea of leveraging
  "a third-party system as relays".

A :class:`Route` records the node path plus which mechanism produced each
hop, so examples and benches can report hop counts and link crossings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.core.layers import (
    LAYER_CORE,
    LAYER_PORT_CONNECTION,
    LAYER_PORT_SELECTION,
    LAYER_UO1,
    LAYER_UO2,
)
from repro.core.link import PortRef

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Deployment


class RoutingError(ReproError):
    """No route could be constructed with the nodes' current knowledge."""


@dataclass
class Route:
    """A realized path through the overlay.

    ``mechanisms`` labels each hop: ``greedy`` (intra-component metric
    descent), ``link`` (port-to-port crossing), ``uo2`` (opportunistic
    long-distance contact).
    """

    path: List[int] = field(default_factory=list)
    mechanisms: List[str] = field(default_factory=list)

    @property
    def hops(self) -> int:
        return max(0, len(self.path) - 1)

    @property
    def link_crossings(self) -> int:
        return sum(1 for mechanism in self.mechanisms if mechanism == "link")

    def extend(self, node_id: int, mechanism: str) -> None:
        self.path.append(node_id)
        self.mechanisms.append(mechanism)

    def __repr__(self) -> str:
        return f"Route(hops={self.hops}, path={self.path})"


class Router:
    """Routes between live nodes of a converged deployment."""

    def __init__(
        self,
        deployment: "Deployment",
        max_hops: int = 256,
        allow_flooding: bool = True,
    ):
        self.deployment = deployment
        self.max_hops = max_hops
        # Shapes without a routable gradient (the random graph: every pair
        # is equidistant) fall back to bounded flooding — a BFS over the
        # same neighbour knowledge — unless disabled.
        self.allow_flooding = allow_flooding

    # -- public API ---------------------------------------------------------

    def route(self, source: int, destination: int) -> Route:
        """A route from ``source`` to ``destination``; raises on failure."""
        network = self.deployment.network
        if not network.is_alive(source) or not network.is_alive(destination):
            raise RoutingError("source and destination must be alive")
        role_map = self.deployment.role_map
        route = Route(path=[source], mechanisms=[])
        if source == destination:
            return route
        src_component = role_map.role(source).component
        dst_component = role_map.role(destination).component
        if src_component == dst_component:
            self._route_within(route, destination)
            return route
        component_path = self._component_path(src_component, dst_component)
        if component_path is None:
            self._route_opportunistic(route, dst_component)
        else:
            self._route_over_links(route, component_path)
        self._route_within(route, destination)
        return route

    # -- intra-component greedy ------------------------------------------------

    def _coordinate_of(self, node_id: int):
        role = self.deployment.role_map.role(node_id)
        shape = self.deployment.assembly.component(role.component).shape
        return shape.coordinate(role.rank, role.comp_size), shape.metric(
            role.comp_size
        )

    def _route_within(self, route: Route, destination: int) -> None:
        """Greedy metric descent inside the current (= destination's) component."""
        network = self.deployment.network
        role_map = self.deployment.role_map
        current = route.path[-1]
        if current == destination:
            return
        target_coord, metric = self._coordinate_of(destination)
        component = role_map.role(destination).component
        visited = {current}
        while current != destination:
            if route.hops >= self.max_hops:
                raise RoutingError(
                    f"hop budget exhausted en route to {destination}"
                )
            node = network.node(current)
            neighbors = [
                neighbor
                for neighbor in node.protocol(LAYER_CORE).neighbors()
                if network.is_alive(neighbor)
                and role_map.has_role(neighbor)
                and role_map.role(neighbor).component == component
            ]
            if destination in neighbors:
                route.extend(destination, "greedy")
                return
            current_role = role_map.role(current)
            shape = self.deployment.assembly.component(component).shape
            current_coord = shape.coordinate(
                current_role.rank, current_role.comp_size
            )
            best: Optional[Tuple[float, int]] = None
            for neighbor in neighbors:
                if neighbor in visited:
                    continue
                neighbor_role = role_map.role(neighbor)
                coord = shape.coordinate(
                    neighbor_role.rank, neighbor_role.comp_size
                )
                distance = metric(coord, target_coord)
                if best is None or distance < best[0]:
                    best = (distance, neighbor)
            if best is None or best[0] >= metric(current_coord, target_coord):
                if self.allow_flooding:
                    self._route_flood(route, destination, component)
                    return
                raise RoutingError(
                    f"greedy routing stuck at node {current} "
                    f"(component {component!r})"
                )
            current = best[1]
            visited.add(current)
            route.extend(current, "greedy")

    def _route_flood(self, route: Route, destination: int, component: str) -> None:
        """Bounded-BFS fallback over the same core/UO1 neighbour knowledge.

        Models a scoped flood inside the component (the honest mechanism on
        gradient-free shapes); the recorded path is the first discovery
        path, each hop labelled ``flood``.
        """
        network = self.deployment.network
        role_map = self.deployment.role_map
        start = route.path[-1]
        parents: Dict[int, int] = {}
        queue = deque([start])
        seen = {start}
        found = False
        while queue and not found:
            current = queue.popleft()
            node = network.node(current)
            neighbors = list(node.protocol(LAYER_CORE).neighbors())
            if node.has_protocol("uo1"):
                neighbors.extend(node.protocol("uo1").neighbors())
            for neighbor in neighbors:
                if neighbor in seen or not network.is_alive(neighbor):
                    continue
                if not role_map.has_role(neighbor):
                    continue
                if role_map.role(neighbor).component != component:
                    continue
                parents[neighbor] = current
                if neighbor == destination:
                    found = True
                    break
                seen.add(neighbor)
                queue.append(neighbor)
        if not found:
            raise RoutingError(
                f"flooding from {start} did not reach {destination} "
                f"in component {component!r}"
            )
        hops: List[int] = []
        cursor = destination
        while cursor != start:
            hops.append(cursor)
            cursor = parents[cursor]
        for node_id in reversed(hops):
            if route.hops >= self.max_hops:
                raise RoutingError("hop budget exhausted during flood")
            route.extend(node_id, "flood")

    # -- inter-component over links ------------------------------------------------

    def _component_path(
        self, src_component: str, dst_component: str
    ) -> Optional[List[Tuple[str, PortRef, PortRef]]]:
        """BFS over the assembly's logical link graph.

        Returns a list of ``(next_component, local_port, remote_port)``
        crossings, or ``None`` when the components are not link-connected.
        """
        assembly = self.deployment.assembly
        parents: Dict[str, Tuple[str, PortRef, PortRef]] = {}
        queue = deque([src_component])
        seen = {src_component}
        while queue:
            component = queue.popleft()
            if component == dst_component:
                break
            for link in assembly.links_of(component):
                local = link.a if link.a.component == component else link.b
                remote = link.other(local)
                neighbor = remote.component
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                parents[neighbor] = (component, local, remote)
                queue.append(neighbor)
        if dst_component not in seen:
            return None
        crossings: List[Tuple[str, PortRef, PortRef]] = []
        cursor = dst_component
        while cursor != src_component:
            previous, local, remote = parents[cursor]
            crossings.append((cursor, local, remote))
            cursor = previous
        crossings.reverse()
        return crossings

    def _route_over_links(
        self, route: Route, crossings: List[Tuple[str, PortRef, PortRef]]
    ) -> None:
        network = self.deployment.network
        for _, local_port, remote_port in crossings:
            # 1. reach the local port's manager (greedy within component);
            current = route.path[-1]
            selection = network.node(current).protocol(LAYER_PORT_SELECTION)
            manager = selection.manager_of(local_port.port)
            if manager is None or not network.is_alive(manager):
                # Local election knowledge is stale (the manager just died):
                # ask live UO1 neighbours for a second opinion before giving
                # up — one extra local lookup instead of a failed delivery.
                manager = self._alternate_port_manager(current, local_port)
            if manager is None:
                raise RoutingError(f"no live manager known for {local_port}")
            if manager != current:
                self._route_within(route, manager)
            # 2. cross the link through the manager's binding.
            connection = network.node(manager).protocol(LAYER_PORT_CONNECTION)
            remote_manager = connection.binding_for(remote_port)
            if remote_manager is None or not network.is_alive(remote_manager):
                remote_manager = self._alternate_binding(manager, remote_port)
            if remote_manager is None:
                raise RoutingError(f"link {local_port} -- {remote_port} not bound")
            route.extend(remote_manager, "link")

    def _alternate_port_manager(self, at_node: int, ref: PortRef) -> Optional[int]:
        """A live manager for ``ref`` per the UO1 neighbours of ``at_node``.

        Port-selection beliefs heal asynchronously after a manager crash;
        a same-component peer may already have validated and re-elected.
        """
        network = self.deployment.network
        node = network.node(at_node)
        if not node.has_protocol(LAYER_UO1):
            return None
        for peer_id in node.protocol(LAYER_UO1).neighbors():
            if not network.is_alive(peer_id):
                continue
            peer = network.node(peer_id)
            if not peer.has_protocol(LAYER_PORT_SELECTION):
                continue
            candidate = peer.protocol(LAYER_PORT_SELECTION).manager_of(ref.port)
            if candidate is not None and network.is_alive(candidate):
                return candidate
        return None

    def _alternate_binding(self, manager: int, remote_port: PortRef) -> Optional[int]:
        """A live binding for ``remote_port`` per the manager's UO1 peers."""
        network = self.deployment.network
        node = network.node(manager)
        if not node.has_protocol(LAYER_UO1):
            return None
        for peer_id in node.protocol(LAYER_UO1).neighbors():
            if not network.is_alive(peer_id):
                continue
            peer = network.node(peer_id)
            if not peer.has_protocol(LAYER_PORT_CONNECTION):
                continue
            candidate = peer.protocol(LAYER_PORT_CONNECTION).binding_for(
                remote_port
            )
            if candidate is not None and network.is_alive(candidate):
                return candidate
        return None

    # -- opportunistic (UO2) -----------------------------------------------------------

    def _route_opportunistic(self, route: Route, dst_component: str) -> None:
        """Shortcut into ``dst_component`` through a UO2 contact.

        Walks the current component over UO1/core is unnecessary: any node
        with a live contact in the destination component can jump directly;
        we use the current node's own contacts, which a converged UO2 makes
        overwhelmingly likely to exist.
        """
        network = self.deployment.network
        current = route.path[-1]
        contacts = network.node(current).protocol(LAYER_UO2).contacts(dst_component)
        for descriptor in contacts:
            if network.is_alive(descriptor.node_id):
                route.extend(descriptor.node_id, "uo2")
                return
        raise RoutingError(
            f"node {current} holds no live UO2 contact in {dst_component!r}"
        )
