"""repro — assembly-based construction of complex distributed topologies.

A complete reimplementation of the framework described in Simon Bouget,
*Position paper: Toward an holistic approach of Systems of Systems*
(Middleware 2016 Doctoral Symposium, DOI 10.1145/3009925.3009935): a
component library of elementary topology shapes, a DSL to assemble them
through ports and links, and a self-stabilizing runtime of layered
self-organizing gossip overlays — plus the round-based simulator the
evaluation runs on, the monolithic baselines, and the experiment drivers
reproducing every figure of the paper.

Quickstart
----------
>>> from repro import TopologyBuilder, Runtime
>>> builder = TopologyBuilder("Demo")
>>> _ = builder.component("core", "ring", size=32)
>>> assembly = builder.build()
>>> deployment = Runtime(assembly, seed=1).deploy(32)
>>> report = deployment.run_until_converged(max_rounds=60)
>>> report.converged
True

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
reproduction of the paper's evaluation.
"""

from repro.errors import (
    AssemblyError,
    ConfigurationError,
    ConvergenceTimeout,
    DslError,
    DslSemanticError,
    DslSyntaxError,
    ReproError,
    SimulationError,
    TopologyError,
)
from repro.core import (
    Assembly,
    ComponentSpec,
    ConvergenceReport,
    Deployment,
    HashAssignment,
    LinkSpec,
    NodeProfile,
    PortRef,
    PortSpec,
    ProportionalAssignment,
    Runtime,
    RuntimeConfig,
    make_selector,
)
from repro.core.reconfigure import reconfigure, reconfigure_and_measure
from repro.dsl import TopologyBuilder, compile_source, parse_source, to_source
from repro.shapes import Shape, available_shapes, make_shape
from repro.sim import GossipParams, SimulationConfig, TransportCosts

__version__ = "1.0.0"

__all__ = [
    # errors
    "AssemblyError",
    "ConfigurationError",
    "ConvergenceTimeout",
    "DslError",
    "DslSemanticError",
    "DslSyntaxError",
    "ReproError",
    "SimulationError",
    "TopologyError",
    # core IR & runtime
    "Assembly",
    "ComponentSpec",
    "ConvergenceReport",
    "Deployment",
    "HashAssignment",
    "LinkSpec",
    "NodeProfile",
    "PortRef",
    "PortSpec",
    "ProportionalAssignment",
    "Runtime",
    "RuntimeConfig",
    "make_selector",
    "reconfigure",
    "reconfigure_and_measure",
    # DSL
    "TopologyBuilder",
    "compile_source",
    "parse_source",
    "to_source",
    # shapes
    "Shape",
    "available_shapes",
    "make_shape",
    # simulator config
    "GossipParams",
    "SimulationConfig",
    "TransportCosts",
    "__version__",
]
