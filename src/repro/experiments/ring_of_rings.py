"""Experiment (ii) — per-layer convergence on the Ring-of-Rings topology.

Paper §4: "(ii) convergence speed for the different sub-procedures of our
framework in a Ring of Rings topology". This driver converges one
ring-of-rings deployment per seed and reports each sub-procedure's
rounds-to-converge — the component core protocols ("Elementary Topology"),
UO1, UO2, port selection and port connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.runtime import RuntimeConfig
from repro.experiments import harness
from repro.experiments.harness import (
    ALL_SERIES,
    SERIES_TO_LAYER,
    ExperimentScale,
)
from repro.experiments.topologies import ring_of_rings
from repro.metrics.report import render_table
from repro.metrics.stats import Stats


@dataclass
class RingOfRingsResult:
    n_rings: int
    ring_size: int
    series: Dict[str, Stats]


def run_ring_of_rings(
    n_rings: int = 8,
    ring_size: int = 16,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    config: Optional[RuntimeConfig] = None,
) -> RingOfRingsResult:
    """Measure per-sub-procedure convergence on a ring of rings."""
    scale = scale or harness.current_scale()
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds
    assembly = ring_of_rings(n_rings=n_rings, ring_size=ring_size)
    total = n_rings * ring_size
    layer_stats = harness.measure_convergence(
        assembly, total, seeds, max_rounds, config
    )
    series: Dict[str, Stats] = {
        name: layer_stats[layer] for name, layer in SERIES_TO_LAYER.items()
    }
    return RingOfRingsResult(n_rings=n_rings, ring_size=ring_size, series=series)


def format_ring_of_rings(result: RingOfRingsResult) -> str:
    rows = [
        (name, str(result.series[name]))
        for name in ALL_SERIES
    ]
    return render_table(
        ("Sub-procedure", "Rounds to converge"),
        rows,
        title=(
            f"Experiment (ii): convergence on a ring of {result.n_rings} rings "
            f"of {result.ring_size} nodes (mean ±90% CI over seeds)"
        ),
    )
