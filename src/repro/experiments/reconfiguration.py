"""Experiment (iii) — dynamic reconfiguration under evolving needs.

Paper §4: "(iii) ability to dynamically reconfigure in presence of evolving
needs". Scenario: a deployment converges to topology A (a ring of rings),
then the assembly is rewritten to topology B (a star of cliques — the
MongoDB shape) *without restarting any node*, and the runtime re-converges.

Two observations the bench reports:

- re-convergence completes (the headline claim);
- re-convergence is *cheaper than a cold start* of topology B, because the
  global peer-sampling layer and every still-valid contact survive the
  switch — the payoff of layering the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.reconfigure import reconfigure
from repro.core.runtime import Runtime, RuntimeConfig
from repro.experiments import harness
from repro.experiments.harness import ExperimentScale
from repro.experiments.topologies import ring_of_rings, star_of_cliques
from repro.metrics.report import render_table
from repro.metrics.stats import Stats, summarize


@dataclass
class ReconfigurationResult:
    """Per-phase convergence statistics (rounds, seed-averaged)."""

    initial: Stats
    reconfigured: Stats
    cold_start: Stats
    per_layer_reconfigured: Dict[str, Stats]


def run_reconfiguration(
    n_nodes: int = 128,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    config: Optional[RuntimeConfig] = None,
) -> ReconfigurationResult:
    """Converge topology A, switch to topology B, measure re-convergence."""
    scale = scale or harness.current_scale()
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds

    n_rings = 8
    ring_size = max(2, n_nodes // n_rings)
    total = n_rings * ring_size
    shard_size = max(3, (total - total // 5) // 4)
    router_size = total - 4 * shard_size

    initial_rounds = []
    reconfig_rounds = []
    cold_rounds = []
    per_layer: Dict[str, list] = {}
    for seed in seeds:
        topology_a = ring_of_rings(n_rings=n_rings, ring_size=ring_size)
        topology_b = star_of_cliques(
            n_shards=4, shard_size=shard_size, router_size=router_size
        )
        deployment = Runtime(topology_a, config=config, seed=seed).deploy(total)
        report_a = deployment.run_until_converged(max_rounds)
        initial_rounds.append(report_a.slowest)

        reconfigure(deployment, topology_b)
        report_b = deployment.run_until_converged(max_rounds)
        reconfig_rounds.append(report_b.slowest)
        for layer, value in report_b.rounds.items():
            per_layer.setdefault(layer, []).append(value)

        cold = Runtime(topology_b, config=config, seed=seed + 1000).deploy(total)
        report_cold = cold.run_until_converged(max_rounds)
        cold_rounds.append(report_cold.slowest)

    return ReconfigurationResult(
        initial=summarize(initial_rounds),
        reconfigured=summarize(reconfig_rounds),
        cold_start=summarize(cold_rounds),
        per_layer_reconfigured={
            layer: summarize(samples) for layer, samples in per_layer.items()
        },
    )


def format_reconfiguration(result: ReconfigurationResult) -> str:
    rows = [
        ("converge topology A (ring-of-rings)", str(result.initial)),
        ("reconfigure A -> B (star-of-cliques)", str(result.reconfigured)),
        ("cold start of topology B", str(result.cold_start)),
    ]
    rows.extend(
        (f"  B per-layer: {layer}", str(stats))
        for layer, stats in sorted(result.per_layer_reconfigured.items())
    )
    return render_table(
        ("Phase", "Rounds to converge"),
        rows,
        title="Experiment (iii): dynamic reconfiguration (mean ±90% CI over seeds)",
    )
