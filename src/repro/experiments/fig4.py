"""Figure 4 — bandwidth of the runtime vs the core-protocol baseline.

Paper: "Comparison of bandwidth consumption (in bytes) between the core
protocol and our runtime's sub-procedures, for a system of 20 components and
25,600 nodes. Both follow the same pattern, and both are very small." The
plot shows two per-round series, each under ~1 000 bytes per node per round.

We run the 20-component ring-of-rings for a fixed number of rounds and split
the transport's byte accounting into the core-protocol *baseline* and the
runtime *overhead* (peer sampling + UO1 + UO2 + port selection + port
connection), averaged per node and over seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.runtime import Runtime, RuntimeConfig
from repro.experiments import harness
from repro.experiments.harness import ExperimentScale
from repro.experiments.topologies import ring_of_rings
from repro.metrics.bandwidth import total_split
from repro.metrics.report import render_table


@dataclass
class Fig4Result:
    """Per-round byte series (per node, seed-averaged)."""

    n_nodes: int
    n_components: int
    rounds: int
    baseline: List[float]
    overhead: List[float]


def run_fig4(
    n_nodes: Optional[int] = None,
    n_components: Optional[int] = None,
    rounds: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    scale: Optional[ExperimentScale] = None,
    config: Optional[RuntimeConfig] = None,
) -> Fig4Result:
    """Run the Figure 4 measurement; parameters default to the current scale."""
    scale = scale or harness.current_scale()
    n_nodes = n_nodes or scale.fig4_node_count
    n_components = n_components or scale.fig4_components
    rounds = rounds or scale.fig4_rounds
    seeds = tuple(seeds or scale.seeds)

    ring_size = max(2, n_nodes // n_components)
    assembly = ring_of_rings(n_rings=n_components, ring_size=ring_size)
    total = n_components * ring_size

    baseline_acc = [0.0] * rounds
    overhead_acc = [0.0] * rounds
    for seed in seeds:
        deployment = Runtime(assembly, config=config, seed=seed).deploy(total)
        deployment.run(rounds)
        split = total_split(deployment.transport, rounds, total)
        for index in range(rounds):
            baseline_acc[index] += split["baseline"][index]
            overhead_acc[index] += split["overhead"][index]
    n_seeds = len(seeds)
    return Fig4Result(
        n_nodes=total,
        n_components=n_components,
        rounds=rounds,
        baseline=[value / n_seeds for value in baseline_acc],
        overhead=[value / n_seeds for value in overhead_acc],
    )


def format_fig4(result: Fig4Result) -> str:
    """Render the Figure 4 series as the paper plots them (table + sketch)."""
    from repro.metrics.plot import ascii_chart

    rows = [
        (
            round_index,
            f"{result.baseline[round_index]:.0f}",
            f"{result.overhead[round_index]:.0f}",
        )
        for round_index in range(result.rounds)
    ]
    table = render_table(
        ("Round", "Baseline (bytes/node)", "Overhead (bytes/node)"),
        rows,
        title=(
            f"Figure 4: per-node bandwidth per round "
            f"({result.n_components} components, {result.n_nodes} nodes; "
            "baseline = core protocols + peer sampling, "
            "overhead = UO1 + UO2 + port selection + port connection)"
        ),
    )
    chart = ascii_chart(
        {"Baseline": result.baseline, "Overhead": result.overhead},
        width=min(64, max(16, result.rounds * 3)),
        height=12,
        y_label="bytes/node/round",
        x_label="rounds ->",
    )
    return f"{table}\n\n{chart}"
