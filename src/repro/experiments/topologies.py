"""The complex assemblies of the paper's experiment (i).

"Building various topologies comparable to those used in real world
applications" — each builder here returns a validated
:class:`~repro.core.Assembly` modelled on a system the paper cites:

- :func:`star_of_cliques` — the MongoDB sharded cluster ("MongoDB relies on
  a star of cliques"): a router star whose hub links to the head of every
  shard replica-set clique;
- :func:`ring_of_rings` — the hierarchical ring used by the paper's
  convergence experiment (ii), a Scatter/Overnesia-style super-ring of
  replica rings;
- :func:`grid_of_rings` — a geo-distributed mesh of replica rings (Riak-style
  multi-datacenter arrangement);
- :func:`line_of_stars` — a staged pipeline whose stages are star-shaped
  worker pools (stream-processing style);
- :func:`iot_composite` — the heterogeneous IoT scenario of the paper's
  future-work section: sensors (random pool), an aggregation tree, a storage
  ring and a gateway clique, linked opportunistically.
"""

from __future__ import annotations

from repro.core.assembly import Assembly
from repro.dsl.builder import TopologyBuilder


def star_of_cliques(
    n_shards: int = 4,
    shard_size: int = 12,
    router_size: int = 8,
    name: str = "StarOfCliques",
) -> Assembly:
    """A MongoDB-style sharded cluster: router star + shard cliques."""
    builder = TopologyBuilder(name)
    builder.component("router", "star", size=router_size).port("hub", "hub")
    for index in range(n_shards):
        shard = f"shard{index}"
        builder.component(shard, "clique", size=shard_size).port(
            "head", "lowest_id"
        )
        builder.link(("router", "hub"), (shard, "head"))
    return builder.nodes(router_size + n_shards * shard_size).build()


def ring_of_rings(
    n_rings: int = 8,
    ring_size: int = 16,
    name: str = "RingOfRings",
) -> Assembly:
    """A super-ring of rings: ring *i*'s east port links to ring *i+1*'s west.

    Each ring exposes a ``west`` port at rank 0 and an ``east`` port at the
    diametrically opposite rank, so the inter-ring links traverse each ring.
    """
    builder = TopologyBuilder(name)
    east_rank = max(1, ring_size // 2) if ring_size > 1 else 0
    for index in range(n_rings):
        builder.component(f"ring{index}", "ring", size=ring_size).port(
            "west", "rank(0)"
        ).port("east", f"rank({east_rank})")
    if n_rings > 1:
        for index in range(n_rings):
            builder.link(
                (f"ring{index}", "east"),
                (f"ring{(index + 1) % n_rings}", "west"),
            )
    return builder.nodes(n_rings * ring_size).build()


def grid_of_rings(
    rows: int = 3,
    cols: int = 3,
    ring_size: int = 12,
    name: str = "GridOfRings",
) -> Assembly:
    """A ``rows × cols`` mesh of replica rings (multi-datacenter style)."""
    builder = TopologyBuilder(name)
    for row in range(rows):
        for col in range(cols):
            builder.component(f"dc_{row}_{col}", "ring", size=ring_size).port(
                "peer", "lowest_id"
            )
    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                builder.link(
                    (f"dc_{row}_{col}", "peer"), (f"dc_{row}_{col + 1}", "peer")
                )
            if row + 1 < rows:
                builder.link(
                    (f"dc_{row}_{col}", "peer"), (f"dc_{row + 1}_{col}", "peer")
                )
    return builder.nodes(rows * cols * ring_size).build()


def line_of_stars(
    n_stages: int = 4,
    stage_size: int = 10,
    name: str = "LineOfStars",
) -> Assembly:
    """A staged pipeline: each stage a star pool, hubs chained by links."""
    builder = TopologyBuilder(name)
    for index in range(n_stages):
        builder.component(f"stage{index}", "star", size=stage_size).port(
            "hub", "hub"
        )
    for index in range(n_stages - 1):
        builder.link((f"stage{index}", "hub"), (f"stage{index + 1}", "hub"))
    return builder.nodes(n_stages * stage_size).build()


def iot_composite(
    n_sensors: int = 32,
    tree_size: int = 15,
    storage_size: int = 12,
    gateway_size: int = 5,
    name: str = "IotComposite",
) -> Assembly:
    """The paper's IoT motivation: heterogeneous sub-systems composed.

    Sensors form an unstructured pool; an aggregation tree collects their
    readings; a storage ring persists aggregates; a gateway clique exposes
    the system. Links wire pool → tree root → storage → gateway.
    """
    builder = TopologyBuilder(name)
    builder.component("sensors", "random", size=n_sensors, min_degree=3).port(
        "uplink", "lowest_id"
    )
    builder.component("aggregation", "tree", size=tree_size).port(
        "root", "rank(0)"
    ).port("sink", "highest_id")
    builder.component("storage", "ring", size=storage_size).port(
        "ingest", "lowest_id"
    ).port("serve", "highest_id")
    builder.component("gateway", "clique", size=gateway_size).port(
        "south", "lowest_id"
    )
    builder.link(("sensors", "uplink"), ("aggregation", "root"))
    builder.link(("aggregation", "sink"), ("storage", "ingest"))
    builder.link(("storage", "serve"), ("gateway", "south"))
    return builder.nodes(
        n_sensors + tree_size + storage_size + gateway_size
    ).build()
