"""Figure 3 — convergence time vs component count (fixed population).

Paper: "Convergence time of the various sub-procedures for a system of
25,600 nodes. It is fast and increases slowly with the number of
components." The x-axis is 0 → 20 components, values stay within ~2-16
rounds, growing slowly (roughly linearly).

Same assembly family as Figure 2 — a ring of *k* rings over a fixed node
budget — so the two figures are two cuts of the same parameter plane.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.runtime import RuntimeConfig
from repro.experiments import harness
from repro.experiments.harness import (
    ALL_SERIES,
    SERIES_TO_LAYER,
    ExperimentScale,
)
from repro.experiments.topologies import ring_of_rings
from repro.metrics.report import render_table
from repro.metrics.stats import Stats


@dataclass
class Fig3Row:
    """One x-axis point: a component count with its per-series statistics."""

    n_components: int
    n_nodes: int
    series: Dict[str, Stats]


def run_fig3(
    component_counts: Optional[Sequence[int]] = None,
    n_nodes: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    config: Optional[RuntimeConfig] = None,
) -> List[Fig3Row]:
    """Run the Figure 3 sweep; parameters default to the current scale."""
    scale = scale or harness.current_scale()
    component_counts = tuple(component_counts or scale.fig3_component_counts)
    n_nodes = n_nodes or scale.fig3_node_count
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds

    rows: List[Fig3Row] = []
    for n_components in component_counts:
        ring_size = max(2, n_nodes // n_components)
        assembly = ring_of_rings(n_rings=n_components, ring_size=ring_size)
        total = n_components * ring_size
        layer_stats = harness.measure_convergence(
            assembly, total, seeds, max_rounds, config
        )
        series: Dict[str, Stats] = {
            name: layer_stats[layer] for name, layer in SERIES_TO_LAYER.items()
        }
        rows.append(Fig3Row(n_components=n_components, n_nodes=total, series=series))
    return rows


def format_fig3(rows: Sequence[Fig3Row]) -> str:
    """Render the Figure 3 series as the paper plots them (table + sketch)."""
    from repro.metrics.plot import ascii_chart

    headers: Tuple = ("# of Components", "# of Nodes") + ALL_SERIES
    table = []
    for row in rows:
        cells = [row.n_components, row.n_nodes]
        for name in ALL_SERIES:
            cells.append(str(row.series[name]))
        table.append(cells)
    rendered = render_table(
        headers,
        table,
        title=(
            "Figure 3: rounds to converge vs number of components "
            "(ring-of-rings, fixed node budget; mean ±90% CI over seeds)"
        ),
    )
    chart = ascii_chart(
        {name: [row.series[name].mean for row in rows] for name in ALL_SERIES},
        width=48,
        height=12,
        y_label="rounds",
        x_label="# of components ->",
    )
    return f"{rendered}\n\n{chart}"
