"""Ablation studies of the design choices the paper leaves open (DESIGN.md §4).

- **A1 view size** — Vicinity's view capacity trades memory/bandwidth for
  convergence speed;
- **A2 random feed** — the peer-sampling candidate feed (Vicinity's "pinch
  of randomness") is load-bearing: without it the greedy overlay starves;
- **A3 churn** — convergence under continuous churn and recovery from a
  catastrophic correlated failure (self-healing);
- **A4 core flavor** — Vicinity vs T-Man as the component core protocol;
- **A5 monolithic** — one distance function for the whole assembly (the
  design the paper argues against) vs the layered runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.monolithic import MonolithicComposite
from repro.core.convergence import core_score
from repro.core.runtime import Runtime, RuntimeConfig
from repro.experiments import harness
from repro.experiments.harness import ExperimentScale
from repro.experiments.topologies import ring_of_rings, star_of_cliques
from repro.metrics.stats import Stats, summarize
from repro.shapes.ring import Ring
from repro.sim.churn import CatastrophicFailure, RandomChurn
from repro.sim.config import GossipParams


def view_size_sweep(
    view_sizes: Sequence[int] = (4, 8, 12, 16, 24),
    n_nodes: int = 256,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
) -> List[Tuple[int, Stats]]:
    """A1: elementary ring convergence vs Vicinity view size."""
    scale = scale or harness.current_scale()
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds
    rows = []
    for view_size in view_sizes:
        params = GossipParams(
            view_size=view_size,
            gossip_size=max(2, view_size // 2),
            healer=1,
            swapper=min(4, view_size - 1),
        )
        stats = harness.measure_elementary(
            Ring(), n_nodes, seeds, max_rounds, params=params
        )
        rows.append((view_size, stats))
    return rows


def random_feed_ablation(
    n_nodes: int = 256,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
) -> Dict[str, Stats]:
    """A2: elementary ring convergence with and without the random feed."""
    scale = scale or harness.current_scale()
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds
    return {
        "with_random_feed": harness.measure_elementary(
            Ring(), n_nodes, seeds, max_rounds, random_feed=True
        ),
        "without_random_feed": harness.measure_elementary(
            Ring(), n_nodes, seeds, max_rounds, random_feed=False
        ),
    }


@dataclass
class ChurnResult:
    """A3 outcome: convergence under churn and post-catastrophe recovery."""

    crash_rate: float
    converged_runs: int
    total_runs: int
    rounds: Stats
    health_after_catastrophe: float
    health_after_recovery: float


def churn_study(
    crash_rate: float = 0.01,
    catastrophe_fraction: float = 0.5,
    n_nodes: int = 192,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    config: Optional[RuntimeConfig] = None,
) -> ChurnResult:
    """A3: the runtime under continuous churn, then a catastrophic failure.

    Phase 1: converge a ring-of-rings while ``crash_rate`` of the population
    crashes every round (with joins replacing them). Phase 2: kill
    ``catastrophe_fraction`` of the nodes at once and measure the core
    layer's health score before and after a recovery window.
    """
    scale = scale or harness.current_scale()
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds

    n_rings = 6
    ring_size = max(4, n_nodes // n_rings)
    total = n_rings * ring_size
    assembly = ring_of_rings(n_rings=n_rings, ring_size=ring_size)

    rounds_samples: List[Optional[float]] = []
    health_drop = 0.0
    health_recovered = 0.0
    for seed in seeds:
        deployment = Runtime(assembly, config=config, seed=seed).deploy(total)
        churn = RandomChurn(
            deployment.streams.fork("churn").stream("crash"),
            crash_rate=crash_rate,
            join_count=max(1, int(total * crash_rate)),
            provisioner=deployment.provisioner(),
            min_population=total // 2,
        )
        deployment.engine.add_control(churn)
        # Churn reshapes roles continuously; track the core layer only (the
        # port layers chase a moving oracle under heavy churn).
        deployment.tracker.layers = ["core", "uo1"]
        deployment.tracker.reset()
        report = deployment.run_until_converged(max_rounds)
        rounds_samples.append(report.slowest)

        # Phase 2: catastrophic correlated failure, then a recovery window.
        deployment.engine.controls.remove(churn)
        catastrophe = CatastrophicFailure(
            deployment.streams.fork("catastrophe").stream("kill"),
            at_round=deployment.engine.round,
            fraction=catastrophe_fraction,
        )
        deployment.engine.add_control(catastrophe)
        deployment.run(1)
        deployment.rebalance()  # surviving nodes take over the vacated ranks
        health_drop += core_score(
            deployment.network, deployment.role_map, deployment.assembly
        )
        deployment.run(30)
        health_recovered += core_score(
            deployment.network, deployment.role_map, deployment.assembly
        )

    n_seeds = len(seeds)
    stats = summarize(rounds_samples)
    return ChurnResult(
        crash_rate=crash_rate,
        converged_runs=stats.n,
        total_runs=n_seeds,
        rounds=stats,
        health_after_catastrophe=health_drop / n_seeds,
        health_after_recovery=health_recovered / n_seeds,
    )


def core_flavor_comparison(
    n_nodes: int = 128,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
) -> Dict[str, Dict[str, Stats]]:
    """A4: the full runtime with Vicinity vs T-Man core protocols."""
    scale = scale or harness.current_scale()
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds
    n_rings = 8
    ring_size = max(2, n_nodes // n_rings)
    assembly = ring_of_rings(n_rings=n_rings, ring_size=ring_size)
    total = n_rings * ring_size
    out = {}
    for flavor in ("vicinity", "tman"):
        config = RuntimeConfig(core_flavor=flavor)
        out[flavor] = harness.measure_convergence(
            assembly, total, seeds, max_rounds, config
        )
    return out


def loss_tolerance_sweep(
    loss_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.4),
    n_nodes: int = 128,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
) -> List[Tuple[float, Dict[str, Stats]]]:
    """A7: full-runtime convergence under message loss.

    Gossip's probabilistic resilience claim, quantified: a fraction of all
    active exchanges is dropped each round (lost requests/replies) and the
    runtime must still converge — just more slowly.
    """
    scale = scale or harness.current_scale()
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds
    n_rings = 8
    ring_size = max(2, n_nodes // n_rings)
    assembly = ring_of_rings(n_rings=n_rings, ring_size=ring_size)
    total = n_rings * ring_size
    rows = []
    for loss_rate in loss_rates:
        config = RuntimeConfig(loss_rate=loss_rate)
        rows.append(
            (
                loss_rate,
                harness.measure_convergence(
                    assembly, total, seeds, max_rounds, config
                ),
            )
        )
    return rows


def heterogeneity_study(
    n_nodes: int = 160,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
) -> Dict[str, Dict[str, Stats]]:
    """A8: uniform vs heavily skewed component sizes.

    Real assemblies are not uniform (the paper's MongoDB example has one
    small router and large shards). This study compares the runtime on a
    balanced 8×20 ring-of-rings against a skewed assembly — one giant ring
    holding half the population plus seven small ones — at equal node count
    and link structure.
    """
    scale = scale or harness.current_scale()
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds

    from repro.dsl import TopologyBuilder

    def skewed_assembly() -> "object":
        builder = TopologyBuilder("SkewedRings")
        sizes = [n_nodes // 2] + [max(2, (n_nodes // 2) // 7)] * 7
        total = sum(sizes)
        for index, size in enumerate(sizes):
            east = max(1, size // 2)
            builder.component(f"ring{index}", "ring", size=size).port(
                "west", "rank(0)"
            ).port("east", f"rank({east})")
        for index in range(len(sizes)):
            builder.link(
                (f"ring{index}", "east"),
                (f"ring{(index + 1) % len(sizes)}", "west"),
            )
        return builder.nodes(total).build(), total

    balanced = ring_of_rings(n_rings=8, ring_size=n_nodes // 8)
    skewed, skewed_total = skewed_assembly()
    return {
        "balanced": harness.measure_convergence(
            balanced, n_nodes, seeds, max_rounds
        ),
        "skewed": harness.measure_convergence(
            skewed, skewed_total, seeds, max_rounds
        ),
    }


def monolithic_comparison(
    n_nodes: int = 104,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
) -> Dict[str, Stats]:
    """A5: layered runtime vs one monolithic overlay on a star of cliques.

    The monolithic baseline is only asked to realize the component shapes
    (it cannot express links at all); the layered runtime's number is its
    core-layer convergence, so the comparison is apples-to-apples.
    """
    scale = scale or harness.current_scale()
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds
    shard_size = max(3, (n_nodes - max(4, n_nodes // 13)) // 4)
    router_size = n_nodes - 4 * shard_size
    assembly = star_of_cliques(
        n_shards=4, shard_size=shard_size, router_size=router_size
    )
    layered_samples: List[Optional[float]] = []
    monolithic_samples: List[Optional[float]] = []
    for seed in seeds:
        deployment = Runtime(assembly, seed=seed).deploy(n_nodes)
        report = deployment.run_until_converged(max_rounds)
        layered_samples.append(report.round_of("core"))
        monolithic = MonolithicComposite(assembly, n_nodes, seed)
        monolithic_samples.append(monolithic.run(max_rounds))
    return {
        "layered_runtime_core": summarize(layered_samples),
        "monolithic_overlay": summarize(monolithic_samples),
    }
