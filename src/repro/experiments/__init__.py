"""Experiment drivers reproducing the paper's evaluation (§4).

One module per experiment / figure (see DESIGN.md §4 for the full index):

- :mod:`~repro.experiments.topologies` — the complex real-world-like
  assemblies of experiment (i): star-of-cliques (MongoDB), ring-of-rings,
  grid-of-rings, an IoT composite;
- :mod:`~repro.experiments.ring_of_rings` — experiment (ii), per-layer
  convergence on the Ring-of-Rings topology;
- :mod:`~repro.experiments.reconfiguration` — experiment (iii), dynamic
  reconfiguration;
- :mod:`~repro.experiments.fig2` — Figure 2, convergence vs node count;
- :mod:`~repro.experiments.fig3` — Figure 3, convergence vs component count;
- :mod:`~repro.experiments.fig4` — Figure 4, bandwidth baseline vs overhead;
- :mod:`~repro.experiments.ablations` — the A1-A4 design-choice studies.

Scales are environment-controlled (``REPRO_SCALE=ci|full``, see
:mod:`~repro.experiments.harness`); the full scale matches the paper's
25 600 nodes / 25 seeds.
"""

from repro.experiments.harness import (
    ExperimentScale,
    current_scale,
    measure_convergence,
    measure_elementary,
)
from repro.experiments.topologies import (
    grid_of_rings,
    iot_composite,
    line_of_stars,
    ring_of_rings,
    star_of_cliques,
)

__all__ = [
    "ExperimentScale",
    "current_scale",
    "grid_of_rings",
    "iot_composite",
    "line_of_stars",
    "measure_convergence",
    "measure_elementary",
    "ring_of_rings",
    "star_of_cliques",
]
