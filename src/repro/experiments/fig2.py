"""Figure 2 — convergence time vs total node count (20 components).

Paper: "Convergence time of the various sub-procedures for a system of 20
components. It is fast and scales well with the number of nodes." The x-axis
is logarithmic (100 → 25 600 nodes); all five series stay below ~30 rounds
and grow roughly logarithmically.

The assembly is a ring of 20 rings (the paper's recurring example of a
complex topology); the five series are the five runtime sub-procedures:
the per-component core protocols ("Elementary Topology"), UO1, UO2, port
selection, and port connection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.runtime import RuntimeConfig
from repro.experiments import harness
from repro.experiments.harness import (
    ALL_SERIES,
    SERIES_TO_LAYER,
    ExperimentScale,
)
from repro.experiments.topologies import ring_of_rings
from repro.metrics.report import render_table
from repro.metrics.stats import Stats


@dataclass
class Fig2Row:
    """One x-axis point: a node count with its per-series statistics."""

    n_nodes: int
    series: Dict[str, Stats]


def run_fig2(
    node_counts: Optional[Sequence[int]] = None,
    n_components: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    max_rounds: Optional[int] = None,
    scale: Optional[ExperimentScale] = None,
    config: Optional[RuntimeConfig] = None,
) -> List[Fig2Row]:
    """Run the Figure 2 sweep; parameters default to the current scale."""
    scale = scale or harness.current_scale()
    node_counts = tuple(node_counts or scale.fig2_node_counts)
    n_components = n_components or scale.fig2_components
    seeds = tuple(seeds or scale.seeds)
    max_rounds = max_rounds or scale.max_rounds

    rows: List[Fig2Row] = []
    for n_nodes in node_counts:
        ring_size = max(2, n_nodes // n_components)
        assembly = ring_of_rings(n_rings=n_components, ring_size=ring_size)
        total = n_components * ring_size
        layer_stats = harness.measure_convergence(
            assembly, total, seeds, max_rounds, config
        )
        series: Dict[str, Stats] = {
            name: layer_stats[layer] for name, layer in SERIES_TO_LAYER.items()
        }
        rows.append(Fig2Row(n_nodes=total, series=series))
    return rows


def format_fig2(rows: Sequence[Fig2Row]) -> str:
    """Render the Figure 2 series as the paper plots them (table + sketch)."""
    from repro.metrics.plot import ascii_chart

    headers: Tuple = ("# of Nodes",) + ALL_SERIES
    table = []
    for row in rows:
        cells = [row.n_nodes]
        for name in ALL_SERIES:
            cells.append(str(row.series[name]))
        table.append(cells)
    rendered = render_table(
        headers,
        table,
        title=(
            "Figure 2: rounds to converge vs number of nodes "
            "(ring-of-rings, 20 components; mean ±90% CI over seeds)"
        ),
    )
    chart = ascii_chart(
        {name: [row.series[name].mean for row in rows] for name in ALL_SERIES},
        width=48,
        height=12,
        y_label="rounds",
        x_label="# of nodes (log axis) ->",
    )
    return f"{rendered}\n\n{chart}"
