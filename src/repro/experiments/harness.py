"""Multi-seed experiment harness and scale control.

The paper runs every experiment at up to 25 600 nodes, averaged over 25
seeds. A pure-Python substrate cannot do that inside a CI test budget, so
the harness supports two scales selected by the ``REPRO_SCALE`` environment
variable:

- ``ci`` (default) — reduced node counts and seed counts; every trend the
  paper reports is already visible here;
- ``full`` — the paper's parameters (25 600 nodes, 25 seeds); identical
  code, just bigger sweeps. Expect hours of wall clock.

Every experiment driver takes its parameters from
:func:`current_scale`, so EXPERIMENTS.md documents exactly one code path.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.baselines.monolithic import elementary_convergence
from repro.core.assembly import Assembly
from repro.core.convergence import ConvergenceTracker
from repro.core.runtime import Runtime, RuntimeConfig
from repro.metrics.stats import Stats, summarize
from repro.shapes.base import Shape
from repro.sim.config import GossipParams

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: Series names as they appear in the paper's figure legends. The five
#: series of Figures 2 and 3 are the five *sub-procedures* of the runtime:
#: "Elementary Topology" is the per-component core protocol realizing the
#: basic shapes, the other four are UO1, UO2, port selection and port
#: connection (§3.3 / Figure 1).
SERIES_ELEMENTARY = "Elementary Topology"
SERIES_UO1 = "Same-component (UO1)"
SERIES_UO2 = "Distant-component (UO2)"
SERIES_PORT_SELECTION = "Port Selection"
SERIES_PORT_CONNECTION = "Port Connection"

#: Map from figure series to convergence-tracker layer keys.
SERIES_TO_LAYER = {
    SERIES_ELEMENTARY: "core",
    SERIES_UO1: "uo1",
    SERIES_UO2: "uo2",
    SERIES_PORT_SELECTION: "port_selection",
    SERIES_PORT_CONNECTION: "port_connection",
}

ALL_SERIES = (
    SERIES_ELEMENTARY,
    SERIES_UO1,
    SERIES_UO2,
    SERIES_PORT_SELECTION,
    SERIES_PORT_CONNECTION,
)


@dataclass(frozen=True)
class ExperimentScale:
    """The knobs that differ between CI and paper-scale runs."""

    name: str
    seeds: Tuple[int, ...]
    fig2_node_counts: Tuple[int, ...]
    fig2_components: int
    fig3_node_count: int
    fig3_component_counts: Tuple[int, ...]
    fig4_node_count: int
    fig4_components: int
    fig4_rounds: int
    max_rounds: int


_CI_SCALE = ExperimentScale(
    name="ci",
    seeds=(1, 2),
    fig2_node_counts=(100, 200, 400, 800, 1600),
    fig2_components=20,
    fig3_node_count=640,
    fig3_component_counts=(2, 4, 8, 12, 16, 20),
    fig4_node_count=640,
    fig4_components=20,
    fig4_rounds=20,
    max_rounds=120,
)

_FULL_SCALE = ExperimentScale(
    name="full",
    seeds=tuple(range(1, 26)),
    fig2_node_counts=(100, 200, 400, 800, 1600, 3200, 6400, 12800, 25600),
    fig2_components=20,
    fig3_node_count=25600,
    fig3_component_counts=(1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    fig4_node_count=25600,
    fig4_components=20,
    fig4_rounds=20,
    max_rounds=200,
)


def current_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (``ci`` default, or ``full``)."""
    name = os.environ.get("REPRO_SCALE", "ci").strip().lower()
    if name == "full":
        return _FULL_SCALE
    return _CI_SCALE


def resolve_parallelism(parallel: Optional[int] = None) -> int:
    """How many worker processes a multi-seed run should use.

    Explicit ``parallel`` wins; then the ``REPRO_PARALLEL`` environment
    variable; then all cores at ``full`` scale (the paper's 25-seed sweeps
    are embarrassingly parallel) and 1 at ``ci`` scale, where runs are
    short enough that process start-up would dominate.
    """
    if parallel is not None:
        return max(1, parallel)
    env = os.environ.get("REPRO_PARALLEL", "").strip()
    if env:
        return max(1, int(env))
    if current_scale().name == "full":
        return os.cpu_count() or 1
    return 1


def run_parallel_seeds(
    worker: Callable[[_Task], _Result],
    tasks: Sequence[_Task],
    parallel: Optional[int] = None,
) -> List[_Result]:
    """Run ``worker`` over ``tasks`` across processes, preserving task order.

    The multi-seed fan-out: simulations are embarrassingly parallel across
    seeds, so each task runs in its own process under
    :class:`~concurrent.futures.ProcessPoolExecutor`. Determinism is
    unaffected — every task derives its own random universe from its seed
    (see :func:`repro.sim.rng.spawn_seeds`) and results come back in task
    order, so parallel and serial runs are byte-identical (pinned by
    tests/sim/test_determinism.py).

    ``worker`` and every task must be picklable (module-level callables,
    primitive/dataclass tasks). If the platform refuses process pools (a
    sandbox without semaphores) or something in the task graph cannot be
    pickled, the run silently degrades to the serial loop — same results,
    only wall-clock changes.
    """
    tasks = list(tasks)
    workers = resolve_parallelism(parallel)
    workers = min(workers, len(tasks))
    if workers <= 1:
        return [worker(task) for task in tasks]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(worker, tasks))
    except (OSError, pickle.PicklingError, AttributeError, BrokenProcessPool):
        return [worker(task) for task in tasks]


def _convergence_worker(task) -> Dict[str, Optional[int]]:
    """One seed of :func:`measure_convergence` (module-level: must pickle)."""
    assembly, n_nodes, seed, max_rounds, config = task
    runtime = Runtime(assembly, config=config, seed=seed)
    deployment = runtime.deploy(n_nodes)
    report = deployment.run_until_converged(max_rounds)
    return {
        layer: report.round_of(layer) for layer in ConvergenceTracker.ALL_LAYERS
    }


def measure_convergence(
    assembly: Assembly,
    n_nodes: int,
    seeds: Sequence[int],
    max_rounds: int = 120,
    config: Optional[RuntimeConfig] = None,
    parallel: Optional[int] = None,
    instrument=None,
) -> Dict[str, Stats]:
    """Per-layer rounds-to-converge of the full runtime, averaged over seeds.

    Returns a mapping from tracker layer name (``core``, ``uo1``, ``uo2``,
    ``port_selection``, ``port_connection``) to :class:`Stats`; seeds that
    miss the budget count as failures, never as numbers. Seeds fan out
    across processes per :func:`resolve_parallelism` (all cores at ``full``
    scale); per-seed results are identical either way.

    ``instrument`` (any :class:`~repro.obs.instrument.Instrument`) receives
    one ``seed_measured`` event per completed seed. Events are emitted
    post-hoc from the collected results — worker processes cannot share a
    sink — so the stream is identical for serial and parallel runs.
    """
    tasks = [(assembly, n_nodes, seed, max_rounds, config) for seed in seeds]
    reports = run_parallel_seeds(_convergence_worker, tasks, parallel=parallel)
    per_layer: Dict[str, list] = {
        layer: [] for layer in ConvergenceTracker.ALL_LAYERS
    }
    for report in reports:
        for layer in per_layer:
            per_layer[layer].append(report[layer])
    if instrument is not None:
        for seed, report in zip(seeds, reports):
            instrument.emit(
                "seed_measured",
                assembly=assembly.name,
                nodes=n_nodes,
                seed=seed,
                rounds={layer: report[layer] for layer in sorted(report)},
            )
            instrument.count("seeds_measured")
    return {layer: summarize(samples) for layer, samples in per_layer.items()}


def measure_elementary(
    shape: Shape,
    n_nodes: int,
    seeds: Sequence[int],
    max_rounds: int = 120,
    params: Optional[GossipParams] = None,
    random_feed: bool = True,
) -> Stats:
    """Rounds-to-converge of the monolithic elementary baseline."""
    samples = [
        elementary_convergence(
            shape,
            n_nodes,
            seed,
            max_rounds=max_rounds,
            params=params,
            random_feed=random_feed,
        ).rounds_to_converge
        for seed in seeds
    ]
    return summarize(samples)


def series_table(
    rows: Iterable[Tuple[object, Dict[str, Stats]]],
    x_label: str,
) -> Tuple[list, list]:
    """Arrange sweep results as (headers, rows) for the report renderer."""
    headers = [x_label] + [series for series in ALL_SERIES]
    table = []
    for x_value, cells in rows:
        row = [x_value]
        for series in ALL_SERIES:
            stat = cells.get(series)
            row.append("n/a" if stat is None else f"{stat.mean:.1f}")
        table.append(row)
    return headers, table
