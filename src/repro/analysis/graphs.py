"""Realized-topology graphs and structural quality metrics."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

import networkx as nx

from repro.core.layers import LAYER_CORE, LAYER_PORT_CONNECTION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Deployment


def realized_graph(
    deployment: "Deployment",
    layer: str = LAYER_CORE,
    include_links: bool = True,
) -> "nx.Graph":
    """The realized overlay of ``layer`` as an undirected networkx graph.

    Nodes carry ``component`` and ``rank`` attributes; an edge exists when
    either endpoint lists the other among its layer neighbours (gossip
    views are directed; the realized topology is their symmetric closure,
    which is what a connection-oriented application would open).

    With ``include_links`` (and the core layer), the inter-component edges
    realized by the port-connection layer are added with ``kind='link'``.
    """
    graph = nx.Graph()
    role_map = deployment.role_map
    for node in deployment.network.alive_nodes():
        if not role_map.has_role(node.node_id):
            continue
        role = role_map.role(node.node_id)
        graph.add_node(
            node.node_id, component=role.component, rank=role.rank
        )
    for node in deployment.network.alive_nodes():
        if not node.has_protocol(layer) or node.node_id not in graph:
            continue
        for neighbor in node.protocol(layer).neighbors():
            if neighbor in graph:
                graph.add_edge(node.node_id, neighbor, kind="overlay")
    if include_links and layer == LAYER_CORE:
        for node in deployment.network.alive_nodes():
            if not node.has_protocol(LAYER_PORT_CONNECTION):
                continue
            connection = node.protocol(LAYER_PORT_CONNECTION)
            for _, local_manager, remote_manager in connection.realized_links():
                # Only the local manager's own report is authoritative —
                # other members may briefly hold stale manager pairs.
                if local_manager != node.node_id:
                    continue
                if local_manager in graph and remote_manager in graph:
                    graph.add_edge(local_manager, remote_manager, kind="link")
    return graph


def component_subgraph(
    deployment: "Deployment", component: str, layer: str = LAYER_CORE
) -> "nx.Graph":
    """The realized overlay restricted to one component's members."""
    graph = realized_graph(deployment, layer, include_links=False)
    members = [
        node_id
        for node_id in graph.nodes
        if graph.nodes[node_id]["component"] == component
    ]
    return graph.subgraph(members).copy()


def shape_accuracy(deployment: "Deployment", component: str) -> float:
    """Fraction of the component's target edges realized (1.0 = perfect)."""
    spec = deployment.assembly.component(component)
    members = deployment.role_map.members(component)
    size = len(members)
    if size == 0:
        return 1.0
    id_of = {rank: node_id for node_id, rank in members}
    graph = component_subgraph(deployment, component)
    target = spec.shape.target_edges(size)
    if not target:
        return 1.0
    realized = sum(
        1
        for a, b in target
        if graph.has_edge(id_of.get(a), id_of.get(b))
    )
    return realized / len(target)


def topology_summary(deployment: "Deployment") -> Dict[str, Any]:
    """Structural health report of the whole realized topology.

    Keys: ``connected`` (is the union overlay one partition?), ``diameter``
    (of the largest connected part), ``n_nodes``/``n_edges``, per-component
    ``accuracy`` (realized fraction of target edges), and the count of
    realized inter-component ``links``.
    """
    graph = realized_graph(deployment)
    summary: Dict[str, Any] = {
        "n_nodes": graph.number_of_nodes(),
        "n_edges": graph.number_of_edges(),
        "connected": nx.is_connected(graph) if graph.number_of_nodes() else False,
        "links": sum(
            1 for _, _, data in graph.edges(data=True) if data.get("kind") == "link"
        ),
        "accuracy": {
            name: round(shape_accuracy(deployment, name), 4)
            for name in deployment.assembly.components
        },
    }
    if graph.number_of_nodes():
        largest = max(nx.connected_components(graph), key=len)
        summary["diameter"] = nx.diameter(graph.subgraph(largest))
    else:
        summary["diameter"] = None
    return summary


def degree_histogram(
    deployment: "Deployment", layer: str = LAYER_CORE
) -> Dict[int, int]:
    """Degree → node count of the realized overlay of ``layer``."""
    graph = realized_graph(deployment, layer, include_links=False)
    histogram: Dict[int, int] = {}
    for _, degree in graph.degree():
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))
