"""Analysis and export of realized overlay topologies.

The runtime's layers expose their realized neighbour relations; this package
turns them into inspectable artifacts:

- :mod:`~repro.analysis.graphs` — build ``networkx`` graphs of any layer,
  compute structural quality metrics (connectivity, diameter, degree
  distributions, shape accuracy);
- :mod:`~repro.analysis.export` — serialize realized topologies to DOT or
  edge-list text for external visualization.
"""

from repro.analysis.export import to_dot, to_edge_list
from repro.analysis.graphs import (
    component_subgraph,
    realized_graph,
    shape_accuracy,
    topology_summary,
)

__all__ = [
    "component_subgraph",
    "realized_graph",
    "shape_accuracy",
    "to_dot",
    "to_edge_list",
    "topology_summary",
]
