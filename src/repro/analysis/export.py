"""Serialization of realized topologies for external tooling."""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.analysis.graphs import realized_graph
from repro.core.layers import LAYER_CORE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.runtime import Deployment

#: A stable palette for per-component colouring in DOT output.
_PALETTE = (
    "#4e79a7",
    "#f28e2b",
    "#e15759",
    "#76b7b2",
    "#59a14f",
    "#edc948",
    "#b07aa1",
    "#ff9da7",
    "#9c755f",
    "#bab0ac",
)


def to_dot(deployment: "Deployment", layer: str = LAYER_CORE) -> str:
    """Render the realized topology as Graphviz DOT text.

    Nodes are coloured per component; realized inter-component links are
    drawn bold. Pipe into ``dot -Tsvg`` (or ``neato`` for force layout).
    """
    graph = realized_graph(deployment, layer)
    components = sorted(deployment.assembly.components)
    color_of = {
        name: _PALETTE[index % len(_PALETTE)]
        for index, name in enumerate(components)
    }
    lines: List[str] = [
        f'graph "{deployment.assembly.name}" {{',
        "    node [style=filled, shape=circle, fontsize=9];",
    ]
    for node_id, data in sorted(graph.nodes(data=True)):
        color = color_of.get(data["component"], "#cccccc")
        lines.append(
            f'    n{node_id} [label="{node_id}", fillcolor="{color}", '
            f'tooltip="{data["component"]}#{data["rank"]}"];'
        )
    for a, b, data in sorted(graph.edges(data=True)):
        style = ' [penwidth=3, color="#333333"]' if data.get("kind") == "link" else ""
        lines.append(f"    n{a} -- n{b}{style};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def to_edge_list(deployment: "Deployment", layer: str = LAYER_CORE) -> str:
    """Render the realized topology as ``a b kind`` edge-list text."""
    graph = realized_graph(deployment, layer)
    lines = [
        f"{a} {b} {data.get('kind', 'overlay')}"
        for a, b, data in sorted(graph.edges(data=True))
    ]
    return "\n".join(lines) + ("\n" if lines else "")
