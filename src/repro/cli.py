"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``validate FILE``
    Parse + compile a DSL topology file; report errors with positions.
``lint [PATHS…]``
    Static verification without deploying anything: run every assembly
    rule (``RPR…``) over the given ``.topo`` files/directories; with
    ``--self-check`` the per-file determinism rules (``DET0xx``) over
    ``repro``'s own source; with ``--deep`` the whole-program analyzer —
    call-graph taint propagation of nondeterminism sources from the
    engine-round entry points (``DET1xx``) plus the shard-safety pass
    (``SHD…``). ``--format sarif`` emits SARIF 2.1.0 for code-scanning
    UIs, ``--baseline``/``--write-baseline`` manage the suppression file,
    ``--no-pragmas`` ignores inline ``# repro-lint:`` pragmas. Exits 1
    when any non-baselined error-severity diagnostic is found.
``show FILE``
    Print the normalized (pretty-printed) form of a topology file.
``shapes``
    List the shapes available in the component library.
``run FILE``
    Deploy the topology on the simulator, converge, and report per-layer
    rounds, bandwidth split, and a structural summary.
``export FILE``
    Converge the topology and dump the realized overlay as Graphviz DOT or
    an edge list.
``bench [gossip|fig2|fig3|fig4|e2|e3]``
    Without a target (or with ``gossip``), run the deterministic gossip
    hot-path workload matrix, print its table, and write the
    ``BENCH_gossip.json`` trajectory. With a figure/experiment target,
    regenerate it at the current ``REPRO_SCALE`` and print its table.
``faults --scenario NAME``
    Run one scenario of the fault-injection suite (or the whole matrix)
    and print its self-healing report: per-layer time-to-repair, residual
    dead-descriptor fraction, and partition-merge time.
``heal --scenario NAME``
    Close the loop: start the overlay from a corrupted state (segregated /
    poisoned / stale views), let the remediation engine repair it, and
    print the remediation timeline, time-to-stabilize, and verdict.
    ``matrix`` pairs managed vs unmanaged across every corruption mode and
    writes ``BENCH_heal.json``; ``partition-churn`` is the compound
    end-to-end scenario (cut + kill wave); ``--compare`` adds the
    unmanaged baseline to a single mode; ``--timeline PATH`` exports the
    remediation timeline as JSONL.
``report FILE``
    Deploy, converge, and print the consolidated metrics report —
    convergence rounds, bandwidth split, and live telemetry — through the
    :class:`~repro.metrics.registry.MetricsRegistry` facade. With
    ``--profile``, time every layer's protocol steps and append the
    sorted self-time span table.
``obs TARGET``
    The observability window. With a ``.topo`` file: run it instrumented
    and print/export the telemetry (``--jsonl``, ``--prom``; ``--flow``
    adds causal propagation tracing). With a ``.jsonl`` event stream:
    summarize it post-mortem. ``bench`` and ``faults`` take ``--obs PATH``
    to capture telemetry as they run.
``watch FILE``
    Live terminal view of a converging run: population, per-layer
    counters and degrees, information flow, and active health alerts,
    re-rendered every ``--interval`` rounds (``--once`` renders a single
    snapshot after the run; ``--alerts PATH`` writes the alert stream;
    ``--heal`` attaches the remediation engine and adds its panel —
    verdict, active incidents, escalation state).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.core.runtime import Runtime
from repro.dsl import compile_source, to_source
from repro.shapes import available_shapes


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return compile_source(handle.read())


def _cmd_validate(args: argparse.Namespace) -> int:
    assembly = _load(args.file)
    print(
        f"OK: topology {assembly.name!r} — "
        f"{len(assembly.components)} component(s), {len(assembly.links)} link(s), "
        f"min {assembly.min_nodes()} node(s)"
        + (f", declared nodes {assembly.total_nodes}" if assembly.total_nodes else "")
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.diagnostics import has_errors
    from repro.lint import lint_paths, render_json, render_sarif, render_text

    if not args.paths and not args.self_check and not args.deep:
        print(
            "error: lint needs at least one path, --self-check, or --deep",
            file=sys.stderr,
        )
        return 2
    roots = None
    if args.roots is not None:
        from repro.lint import load_roots

        roots = load_roots(args.roots)
    run = lint_paths(
        args.paths,
        with_self_check=args.self_check,
        deep=args.deep,
        respect_pragmas=not args.no_pragmas,
        baseline_path=None if args.write_baseline else args.baseline,
        roots=roots,
    )
    if args.write_baseline:
        from repro.lint import write_baseline

        count = write_baseline(args.baseline, run.diagnostics)
        print(f"wrote {args.baseline} ({count} baselined finding(s))")
        return 0
    render = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.format]
    print(render(run.diagnostics))
    if run.baseline_suppressed:
        print(
            f"baseline: {run.baseline_suppressed} finding(s) suppressed by "
            f"{args.baseline}",
            file=sys.stderr,
        )
    for entry in run.baseline_stale:
        print(
            f"baseline: stale entry {entry['code']} at "
            f"{entry['file']}:{entry['line']} (finding fixed — prune it)",
            file=sys.stderr,
        )
    return 1 if has_errors(run.diagnostics) else 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(to_source(_load(args.file)), end="")
    return 0


def _cmd_shapes(args: argparse.Namespace) -> int:
    for name in available_shapes():
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    assembly = _load(args.file)
    deployment = Runtime(assembly, seed=args.seed).deploy(args.nodes)
    report = deployment.run_until_converged(args.max_rounds)
    print(f"converged: {report.converged} (executed {report.executed} rounds)")
    for layer, rounds in sorted(report.rounds.items()):
        print(f"  {layer:>16}: {rounds}")
    if report.executed:
        split = deployment.bandwidth_split(report.executed)
        population = max(1, deployment.network.alive_count())
        print(
            "bandwidth/node/round — baseline: "
            f"{sum(split['baseline']) / report.executed / population:.0f} B, "
            f"overhead: {sum(split['overhead']) / report.executed / population:.0f} B"
        )
    if args.summary:
        from repro.analysis import topology_summary

        print(f"summary: {topology_summary(deployment)}")
    return 0 if report.converged else 1


def _cmd_export(args: argparse.Namespace) -> int:
    assembly = _load(args.file)
    deployment = Runtime(assembly, seed=args.seed).deploy(args.nodes)
    report = deployment.run_until_converged(args.max_rounds)
    if not report.converged:
        print(f"warning: not converged within {args.max_rounds} rounds", file=sys.stderr)
    from repro.analysis import to_dot, to_edge_list

    output = to_dot(deployment) if args.format == "dot" else to_edge_list(deployment)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"wrote {args.output}")
    else:
        print(output, end="")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    target = args.target
    if target == "scale" or (target == "gossip" and args.scale in ("1k", "10k")):
        # The scale tiers run the sharded-engine bench: the 'scale' target
        # accepts every tier (ci included); the default gossip target routes
        # its 1k/10k scales here so `repro bench --scale 1k` just works.
        from repro.scale.bench import (
            format_scale_bench,
            run_scale_bench,
            write_scale_bench,
        )

        tier = args.scale if args.scale in ("ci", "1k", "10k") else "ci"
        section = run_scale_bench(
            tier=tier, master_seed=args.seed, n_shards=args.shards
        )
        print(format_scale_bench(section))
        print(f"wrote {write_scale_bench(section, json_path=args.output)}")
        return 0
    if target == "gossip":
        from repro.perf.bench import format_bench, run_bench, write_bench

        report = run_bench(
            scale=args.scale,
            seeds=args.seeds,
            master_seed=args.seed,
            parallel=args.parallel,
            obs=args.obs is not None,
        )
        print(format_bench(report))
        if args.check:
            # Regression gate: compare against the committed trajectory at
            # --output instead of rewriting it.
            import json as _json

            from repro.perf.bench import check_bench, format_check

            try:
                baseline = _json.loads(
                    open(args.output, "r", encoding="utf-8").read()
                )
            except (OSError, ValueError) as exc:
                print(f"error: cannot read baseline {args.output}: {exc}",
                      file=sys.stderr)
                return 2
            regressions = check_bench(report, baseline, tolerance=args.tolerance)
            print(format_check(regressions, tolerance=args.tolerance))
            return 1 if regressions else 0
        written = write_bench(report, json_path=args.output)
        if report.obs is not None:
            obs = report.obs
            flow_frac = obs.get("flow_overhead_fraction")
            print(
                "obs: digests "
                + ("identical" if obs["digests_identical"] else "DIVERGED")
                + f", instrumentation overhead {obs['overhead_fraction']:+.1%}"
                + (
                    f", provenance tracing {flow_frac:+.1%}"
                    if flow_frac is not None
                    else ""
                )
            )
            written.extend(_write_obs_exports(args.obs, report.obs_collector))
        for path in written:
            print(f"wrote {path}")
    elif target == "fig2":
        from repro.experiments.fig2 import format_fig2, run_fig2

        print(format_fig2(run_fig2()))
    elif target == "fig3":
        from repro.experiments.fig3 import format_fig3, run_fig3

        print(format_fig3(run_fig3()))
    elif target == "fig4":
        from repro.experiments.fig4 import format_fig4, run_fig4

        print(format_fig4(run_fig4()))
    elif target == "e2":
        from repro.experiments.ring_of_rings import (
            format_ring_of_rings,
            run_ring_of_rings,
        )

        print(format_ring_of_rings(run_ring_of_rings()))
    elif target == "e3":
        from repro.experiments.reconfiguration import (
            format_reconfiguration,
            run_reconfiguration,
        )

        print(format_reconfiguration(run_reconfiguration()))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.scenarios import SCENARIOS, format_scenario, run_fault_matrix

    collector = None
    if args.obs is not None or args.alerts is not None:
        from repro.obs.collector import Collector

        collector = Collector(gauge_every=args.gauge_every)
    kwargs = {"n_nodes": args.nodes, "seed": args.seed, "collector": collector}
    if args.scenario == "matrix":
        results = run_fault_matrix(**kwargs)
    else:
        results = [SCENARIOS[args.scenario](**kwargs)]
    for index, result in enumerate(results):
        if index:
            print()
        print(format_scenario(result))
    if collector is not None:
        if args.obs is not None:
            for path in _write_obs_exports(args.obs, collector):
                print(f"wrote {path}")
        if args.alerts is not None:
            from repro.obs.export import write_jsonl

            alerts = [
                event
                for event in collector.events
                if event.kind in ("alert", "alert_cleared")
            ]
            write_jsonl(args.alerts, alerts)
            print(f"wrote {args.alerts} ({len(alerts)} alert event(s))")
    return 0 if all(result.healed for result in results) else 1


def _write_timeline(path: str, results) -> int:
    """Remediation timelines of ``results`` as JSONL; returns entry count."""
    import json

    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for result in results:
            for entry in result.timeline:
                handle.write(
                    json.dumps(
                        {"mode": result.mode, "seed": result.seed, **entry},
                        sort_keys=True,
                    )
                    + "\n"
                )
                count += 1
    return count


def _cmd_heal(args: argparse.Namespace) -> int:
    from repro.heal.scenarios import (
        format_heal_matrix,
        format_heal_scenario,
        run_heal_matrix,
        run_heal_scenario,
        run_partition_churn,
        write_heal_bench,
    )

    collector = None
    if args.obs is not None and args.scenario != "matrix":
        from repro.obs.collector import Collector

        collector = Collector(gauge_every=args.gauge_every)
    results = []
    if args.scenario == "matrix":
        if args.obs is not None:
            print(
                "warning: --obs is ignored for the matrix (each run has its "
                "own collector)",
                file=sys.stderr,
            )
        from repro.heal.harness import corruption_modes

        degrees = (
            None
            if args.degree is None
            else {mode: args.degree for mode in corruption_modes()}
        )
        entries = run_heal_matrix(
            n_nodes=args.nodes, seed=args.seed, budget=args.budget,
            degrees=degrees,
        )
        print(format_heal_matrix(entries))
        results = [entry["managed"] for entry in entries]
        path = write_heal_bench(entries, json_path=args.output)
        print(f"wrote {path}")
    elif args.scenario == "partition-churn":
        result = run_partition_churn(
            n_nodes=args.nodes, seed=args.seed, budget=args.budget,
            collector=collector,
        )
        print(format_heal_scenario(result))
        results = [result]
    else:
        flavors = (
            (True, False) if args.compare else ((not args.unmanaged),)
        )
        for index, managed in enumerate(flavors):
            if index:
                print()
            result = run_heal_scenario(
                args.scenario,
                n_nodes=args.nodes,
                seed=args.seed,
                degree=args.degree,
                budget=args.budget,
                managed=managed,
                collector=collector if managed else None,
            )
            print(format_heal_scenario(result))
            if managed:
                results.append(result)
    if args.timeline is not None:
        count = _write_timeline(args.timeline, results)
        print(f"wrote {args.timeline} ({count} timeline entr(y/ies))")
    if collector is not None and args.obs is not None:
        for path in _write_obs_exports(args.obs, collector):
            print(f"wrote {path}")
    return 0 if all(result.verdict == "recovered" for result in results) else 1


def _write_obs_exports(jsonl_path: str, collector) -> List[str]:
    """Write the JSONL stream at ``jsonl_path`` and a Prometheus snapshot
    next to it (same path + ``.prom``); returns the written paths."""
    from repro.obs.export import write_jsonl, write_prometheus

    written = [jsonl_path]
    write_jsonl(jsonl_path, collector)
    prom_path = jsonl_path + ".prom"
    write_prometheus(prom_path, collector)
    written.append(prom_path)
    return written


def _instrumented_run(args: argparse.Namespace):
    """Deploy + converge ``args.file`` with a collector attached.

    Honors the optional ``profile`` (per-layer step spans), ``flow``
    (provenance tracing), and ``health`` (alert rules) attributes when the
    calling command defines them.
    """
    from repro.obs.hooks import attach_collector

    flow = None
    if getattr(args, "flow", False):
        from repro.obs.flow import FlowTracer

        flow = FlowTracer()
    assembly = _load(args.file)
    deployment = Runtime(assembly, seed=args.seed).deploy(args.nodes)
    collector = attach_collector(
        deployment,
        gauge_every=args.gauge_every,
        flow=flow,
        health=getattr(args, "health", False),
    )
    collector.profile_layers = bool(getattr(args, "profile", False))
    report = deployment.run_until_converged(args.max_rounds)
    return deployment, report, collector


def _cmd_report(args: argparse.Namespace) -> int:
    import os as _os

    from repro.metrics.registry import MetricsRegistry

    if _os.path.isdir(args.file):
        return _report_swarm_dir(args.file)
    if args.file.endswith(".jsonl"):
        from repro.obs.export import read_jsonl

        registry = MetricsRegistry.from_events(read_jsonl(args.file))
        print(registry.render())
        return 0
    deployment, report, collector = _instrumented_run(args)
    registry = MetricsRegistry.for_deployment(deployment, report, collector)
    if args.profile:
        registry.add_profile(collector)
    print(registry.render())
    return 0 if report.converged else 1


def _report_swarm_dir(status_dir: str) -> int:
    """``repro report <swarm-dir>``: the post-mortem cross-node view.

    Merges every node's incremental JSONL stream into one chronological
    event table, rebuilds the swarm-wide flow tracer and wire histograms
    from the final status files, and renders through the same registry the
    simulator reports use.
    """
    import pathlib as _pathlib

    from repro.metrics.registry import MetricsRegistry
    from repro.obs.collector import Collector
    from repro.runtime.swarm import merge_node_events, merge_telemetry, read_statuses

    directory = _pathlib.Path(status_dir)
    statuses = read_statuses(directory)
    events = merge_node_events(status_dir)
    if not statuses and not events:
        print(f"error: no swarm telemetry under {status_dir}", file=sys.stderr)
        return 2
    collector = Collector(gauge_every=0)
    merge_telemetry(collector, statuses)
    registry = MetricsRegistry.from_events(events) if events else MetricsRegistry()
    flow = collector.flow
    if flow is not None and flow.layers():
        registry.add_flow(flow)
    rtt_rows = [
        (
            layer or "-",
            histogram.count,
            f"{histogram.mean() * 1000:.2f}",
            f"{histogram.percentile(0.95) * 1000:.2f}",
            f"{histogram.vmax * 1000:.2f}",
        )
        for (name, layer), histogram in sorted(collector.histograms.items())
        if name == "gossip_rtt" and histogram.count
    ]
    if rtt_rows:
        registry.add_section(
            "gossip rtt (wire spans)",
            ("layer", "count", "mean ms", "p95 ms", "max ms"),
            rtt_rows,
        )
    print(registry.render())
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.metrics.registry import MetricsRegistry

    if args.target.endswith(".jsonl"):
        from repro.obs.export import read_jsonl

        registry = MetricsRegistry.from_events(read_jsonl(args.target))
        print(registry.render())
        return 0
    deployment, report, collector = _instrumented_run(
        argparse.Namespace(
            file=args.target,
            nodes=args.nodes,
            seed=args.seed,
            max_rounds=args.max_rounds,
            gauge_every=args.gauge_every,
            flow=args.flow,
        )
    )
    registry = MetricsRegistry.from_collector(collector)
    print(registry.render())
    written = []
    if args.jsonl:
        from repro.obs.export import write_jsonl

        write_jsonl(args.jsonl, collector)
        written.append(args.jsonl)
    if args.prom:
        from repro.obs.export import write_prometheus

        write_prometheus(args.prom, collector)
        written.append(args.prom)
    for path in written:
        print(f"wrote {path}")
    return 0 if report.converged else 1


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.flow import FlowTracer
    from repro.obs.hooks import attach_collector
    from repro.obs.watch import render_dashboard

    if getattr(args, "swarm", None):
        return _watch_swarm(args)
    if args.file is None:
        print("error: a topology file (or --swarm DIR) is required", file=sys.stderr)
        return 2
    assembly = _load(args.file)
    deployment = Runtime(assembly, seed=args.seed).deploy(args.nodes)
    collector = attach_collector(
        deployment,
        gauge_every=args.gauge_every,
        flow=FlowTracer(),
        health=True,
    )
    health = collector.health
    engine = None
    if args.heal:
        from repro.heal.engine import RemediationEngine

        engine = RemediationEngine.for_deployment(deployment, health)
    deployment.tracker.stop_when_converged = True
    title = f"repro watch {args.file}"

    def frame() -> str:
        return render_dashboard(
            collector,
            health,
            round_index=deployment.engine.round,
            title=title,
            heal=engine,
        )

    if args.once:
        deployment.engine.run(args.max_rounds)
        print(frame(), end="")
    else:
        clear = sys.stdout.isatty()
        executed = 0
        while executed < args.max_rounds:
            chunk = min(args.interval, args.max_rounds - executed)
            ran = deployment.engine.run(chunk)
            executed += ran
            if clear:
                sys.stdout.write("\x1b[2J\x1b[H")
            print(frame())
            if ran < chunk:
                break  # an observer (convergence) requested a stop
    if args.alerts:
        from repro.obs.export import write_jsonl

        alerts = [
            event
            for event in collector.events
            if event.kind in ("alert", "alert_cleared")
        ]
        write_jsonl(args.alerts, alerts)
        print(f"wrote {args.alerts} ({len(alerts)} alert event(s))")
    return 0 if deployment.tracker.report().converged else 1


def _watch_swarm(args: argparse.Namespace) -> int:
    """Attach the watch dashboard to a running (or finished) swarm directory."""
    import json as _json
    import pathlib

    from repro.obs.collector import Collector
    from repro.obs.health import HealthMonitor
    from repro.obs.watch import render_dashboard
    from repro.runtime.net import _now, _sleep
    from repro.runtime.swarm import (
        STOP_FLAG,
        SWARM_LAYERS,
        feed_collector,
        read_statuses,
    )
    from repro.shapes import make_shape

    directory = pathlib.Path(args.swarm)
    meta_path = directory / "swarm.json"
    deadline = _now() + 10.0
    while not meta_path.exists():
        if _now() > deadline:
            print(f"error: no swarm metadata at {meta_path}", file=sys.stderr)
            return 2
        _sleep(0.1)
    meta = _json.loads(meta_path.read_text(encoding="utf-8"))
    n_nodes, shape = meta["n_nodes"], meta["shape"]
    interval = float(meta.get("round_interval", 0.2))
    shape_obj = make_shape(shape)
    collector = Collector(gauge_every=1)
    monitor = HealthMonitor(collector, expected_layers=SWARM_LAYERS)
    title = f"repro watch --swarm {directory} ({shape}-{n_nodes})"
    statuses: Dict[int, Dict[str, Any]] = {}

    def frame(round_index: int) -> str:
        return render_dashboard(
            collector,
            monitor,
            round_index=round_index,
            title=title,
            nodes=statuses,
        )

    observed_round = -1
    converged = False
    clear = sys.stdout.isatty() and not args.once
    polls = 0
    max_polls = max(4, int(2 * args.max_rounds))
    while polls < max_polls:
        statuses = read_statuses(directory)
        seen_round = max(
            (record.get("round", 0) for record in statuses.values()), default=0
        )
        # Sticky: the swarm "reached the shape" even if the overlay churns
        # an edge during wind-down after the supervisor raises STOP.
        converged = feed_collector(collector, statuses, shape_obj, n_nodes) or converged
        if statuses and seen_round > observed_round:
            observed_round = seen_round
            monitor.observe(None, seen_round)
        if args.once:
            print(frame(seen_round), end="")
            return 0 if converged else 1
        if clear:
            sys.stdout.write("\x1b[2J\x1b[H")
        print(frame(seen_round))
        finished = statuses and all(
            record.get("done") for record in statuses.values()
        )
        if converged or finished or (directory / STOP_FLAG).exists():
            break
        _sleep(interval)
        polls += 1
    return 0 if converged else 1


def _cmd_swarm(args: argparse.Namespace) -> int:
    from repro.runtime.swarm import run_swarm, write_swarm_bench

    def progress(poll: int, statuses, verdict: str) -> None:
        if args.quiet:
            return
        seen = max((r.get("round", 0) for r in statuses.values()), default=0)
        sys.stdout.write(
            f"\rround {seen:>3}  nodes {len(statuses)}/{args.nodes}  "
            f"verdict {verdict}   "
        )
        sys.stdout.flush()

    report, collector = run_swarm(
        n_nodes=args.nodes,
        shape=args.shape,
        seed=args.seed,
        round_interval=args.round_interval,
        max_rounds=args.max_rounds,
        status_dir=args.status_dir,
        progress=progress if not args.quiet else None,
    )
    if not args.quiet:
        sys.stdout.write("\n")
    verdict = report.verdict
    print(
        f"swarm {args.shape}-{args.nodes} seed={args.seed}: "
        f"{'converged' if report.converged else 'NOT converged'} "
        f"in {report.rounds} round(s), verdict {verdict}"
    )
    bandwidth = report.bandwidth()
    print(
        f"  wire: {bandwidth['datagrams_sent']} datagrams / "
        f"{bandwidth['bytes_sent']} bytes sent, "
        f"{bandwidth['malformed']} malformed, "
        f"{bandwidth['duplicates']} duplicates"
    )
    for node in sorted(report.nodes):
        record = report.nodes[node]
        wire = record.get("wire", {})
        print(
            f"  node {node}: round {record.get('round', 0)}, "
            f"neighbors {record.get('neighbors', [])}, "
            f"{wire.get('bytes_sent', 0)} B out / "
            f"{wire.get('bytes_received', 0)} B in"
        )
    for layer, data in sorted((report.flow or {}).items()):
        latency = data.get("latency") or {}
        line = (
            f"  flow {layer}: {data['deliveries']} deliveries over "
            f"{data['flow_edges']} edge(s), {data['known_pairs']} pair(s)"
        )
        if latency:
            line += (
                f", latency mean {latency['mean']:.1f} / "
                f"p95 {latency['p95']} round(s)"
            )
        print(line)
    for layer, stats in sorted(report.rtt.items()):
        print(
            f"  rtt {layer}: {stats['count']} exchange(s), "
            f"mean {stats['mean_seconds'] * 1000:.2f} ms, "
            f"p95 {stats['p95_seconds'] * 1000:.2f} ms"
        )
    for alert in report.alerts:
        print(f"  alert: {alert['rule']} ({alert['severity']}) {alert['evidence']}")
    written = []
    if args.bench:
        written.append(write_swarm_bench(report, args.bench))
    if args.prom:
        from repro.obs.export import write_prometheus

        write_prometheus(args.prom, collector)
        written.append(args.prom)
    if args.jsonl:
        from repro.obs.export import write_jsonl
        from repro.runtime.swarm import merge_node_events

        events = merge_node_events(report.status_dir)
        write_jsonl(args.jsonl, events)
        written.append(f"{args.jsonl} ({len(events)} event(s))")
    for path in written:
        print(f"wrote {path}")
    print(f"status dir: {report.status_dir}")
    return 0 if report.converged and verdict == "healthy" else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Assembly-based construction of complex distributed topologies",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    validate = subparsers.add_parser("validate", help="check a DSL topology file")
    validate.add_argument("file")
    validate.set_defaults(func=_cmd_validate)

    lint = subparsers.add_parser(
        "lint", help="statically verify topology files and/or the framework itself"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help=".topo files or directories to scan recursively",
    )
    lint.add_argument(
        "--self-check",
        action="store_true",
        help="run the per-file determinism (DET0xx) rules over the repro "
        "package source",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="run the whole-program passes over the repro package source: "
        "interprocedural determinism taint (DET1xx) and shard safety (SHD)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    lint.add_argument(
        "--no-pragmas",
        action="store_true",
        help="strict mode: ignore inline '# repro-lint: disable=…' pragmas",
    )
    lint.add_argument(
        "--baseline",
        default=".repro-lint-baseline.json",
        metavar="PATH",
        help="suppression file subtracted from the findings (missing file "
        "= empty baseline; default: .repro-lint-baseline.json)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="freeze the current findings into the --baseline file and exit 0",
    )
    lint.add_argument(
        "--roots",
        default=None,
        metavar="PATH",
        help="custom engine-round entry-point roots file for --deep (one "
        "'<path-glob>::<qualname-glob>' pattern per line; default: the "
        "built-in roots in repro.lint.roots)",
    )
    lint.set_defaults(func=_cmd_lint)

    show = subparsers.add_parser("show", help="pretty-print a topology file")
    show.add_argument("file")
    show.set_defaults(func=_cmd_show)

    shapes = subparsers.add_parser("shapes", help="list available shapes")
    shapes.set_defaults(func=_cmd_shapes)

    run = subparsers.add_parser("run", help="deploy a topology and converge it")
    run.add_argument("file")
    run.add_argument("--nodes", type=int, default=None)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--max-rounds", type=int, default=120)
    run.add_argument("--summary", action="store_true", help="print graph metrics")
    run.set_defaults(func=_cmd_run)

    export = subparsers.add_parser("export", help="dump the realized overlay")
    export.add_argument("file")
    export.add_argument("--format", choices=("dot", "edges"), default="dot")
    export.add_argument("--output", default=None)
    export.add_argument("--nodes", type=int, default=None)
    export.add_argument("--seed", type=int, default=1)
    export.add_argument("--max-rounds", type=int, default=120)
    export.set_defaults(func=_cmd_export)

    bench = subparsers.add_parser(
        "bench", help="run the perf workload matrix or regenerate a paper figure"
    )
    bench.add_argument(
        "target",
        nargs="?",
        default="gossip",
        choices=("gossip", "scale", "fig2", "fig3", "fig4", "e2", "e3"),
        help="'gossip' (default) runs the hot-path workload matrix; "
        "'scale' runs the sharded-engine tier bench",
    )
    bench.add_argument(
        "--scale",
        choices=("ci", "full", "1k", "10k"),
        default="ci",
        help="workload matrix size: ci/full select the gossip matrix, "
        "1k/10k the scale tiers (default: ci)",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for the scale tiers (default: per-tier preset)",
    )
    bench.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="seeds per workload cell (default: per-scale preset)",
    )
    bench.add_argument("--seed", type=int, default=1, help="master seed (default: 1)")
    bench.add_argument(
        "--parallel",
        type=int,
        default=None,
        help="worker processes for the gossip target (default: auto)",
    )
    bench.add_argument(
        "--output",
        default="BENCH_gossip.json",
        help="trajectory path for the gossip target (default: BENCH_gossip.json)",
    )
    bench.add_argument(
        "--obs",
        default=None,
        metavar="PATH",
        help="verify the zero-interference contract (digest identity + "
        "overhead) and write the telemetry stream to PATH (JSONL; a "
        "Prometheus snapshot lands at PATH.prom)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="regression gate (gossip target): compare the fresh run "
        "against the committed trajectory at --output instead of "
        "rewriting it; exit 1 when any cell's mean wall time regresses "
        "past --tolerance",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed per-cell wall-time regression fraction for --check "
        "(default: 0.20)",
    )
    bench.set_defaults(func=_cmd_bench)

    from repro.faults.scenarios import SCENARIOS

    faults = subparsers.add_parser(
        "faults", help="run a fault-injection scenario and report recovery"
    )
    faults.add_argument(
        "--scenario",
        choices=tuple(SCENARIOS) + ("matrix",),
        default="partition",
        help="which fault to inject ('matrix' runs the whole suite)",
    )
    faults.add_argument("--nodes", type=int, default=128)
    faults.add_argument("--seed", type=int, default=1)
    faults.add_argument(
        "--obs",
        default=None,
        metavar="PATH",
        help="capture telemetry and write the event stream to PATH (JSONL; "
        "a Prometheus snapshot lands at PATH.prom)",
    )
    faults.add_argument(
        "--gauge-every",
        type=int,
        default=5,
        help="structural gauge sampling period in rounds, 0 disables "
        "(default: 5)",
    )
    faults.add_argument(
        "--alerts",
        default=None,
        metavar="PATH",
        help="write just the alert/alert_cleared events (JSONL) to PATH "
        "(attaches the health monitor even without --obs)",
    )
    faults.set_defaults(func=_cmd_faults)

    from repro.heal.harness import corruption_modes

    heal = subparsers.add_parser(
        "heal",
        help="start from a corrupted overlay state and close the "
        "observe-decide-act loop",
    )
    heal.add_argument(
        "--scenario",
        choices=tuple(corruption_modes()) + ("matrix", "partition-churn"),
        default="matrix",
        help="corruption mode to start from; 'matrix' pairs managed vs "
        "unmanaged across all modes, 'partition-churn' runs the compound "
        "end-to-end scenario (default: matrix)",
    )
    heal.add_argument("--nodes", type=int, default=64)
    heal.add_argument("--seed", type=int, default=7)
    heal.add_argument(
        "--degree",
        type=float,
        default=None,
        help="corruption severity in [0, 1] (default: per-mode preset)",
    )
    heal.add_argument(
        "--budget",
        type=int,
        default=80,
        help="re-convergence round budget after corruption (default: 80)",
    )
    heal.add_argument(
        "--compare",
        action="store_true",
        help="also run the unmanaged baseline (single-mode scenarios)",
    )
    heal.add_argument(
        "--unmanaged",
        action="store_true",
        help="run only the unmanaged baseline (single-mode scenarios)",
    )
    heal.add_argument(
        "--timeline",
        default=None,
        metavar="PATH",
        help="write the remediation timeline(s) (JSONL) to PATH",
    )
    heal.add_argument(
        "--output",
        default="BENCH_heal.json",
        help="stabilization numbers path for the matrix "
        "(default: BENCH_heal.json)",
    )
    heal.add_argument(
        "--obs",
        default=None,
        metavar="PATH",
        help="capture telemetry of a single-scenario run and write the "
        "event stream to PATH (JSONL; a Prometheus snapshot lands at "
        "PATH.prom)",
    )
    heal.add_argument(
        "--gauge-every",
        type=int,
        default=5,
        help="structural gauge sampling period in rounds, 0 disables "
        "(default: 5)",
    )
    heal.set_defaults(func=_cmd_heal)

    report = subparsers.add_parser(
        "report",
        help="converge a topology and print the consolidated metrics "
        "(also accepts a swarm status dir or a .jsonl event stream)",
    )
    report.add_argument(
        "file",
        help="a .topo file to converge, a swarm status directory to "
        "post-mortem (merged node-*.jsonl + flow/RTT), or a .jsonl stream",
    )
    report.add_argument("--nodes", type=int, default=None)
    report.add_argument("--seed", type=int, default=1)
    report.add_argument("--max-rounds", type=int, default=120)
    report.add_argument(
        "--gauge-every",
        type=int,
        default=1,
        help="structural gauge sampling period in rounds, 0 disables "
        "(default: 1)",
    )
    report.add_argument(
        "--profile",
        action="store_true",
        help="time each layer's protocol steps and append the sorted "
        "self-time span table",
    )
    report.set_defaults(func=_cmd_report)

    obs = subparsers.add_parser(
        "obs",
        help="run a topology instrumented, or summarize a .jsonl event stream",
    )
    obs.add_argument(
        "target",
        help="a .topo file to run instrumented, or a .jsonl stream to summarize",
    )
    obs.add_argument("--nodes", type=int, default=None)
    obs.add_argument("--seed", type=int, default=1)
    obs.add_argument("--max-rounds", type=int, default=120)
    obs.add_argument(
        "--gauge-every",
        type=int,
        default=1,
        help="structural gauge sampling period in rounds, 0 disables "
        "(default: 1)",
    )
    obs.add_argument(
        "--jsonl", default=None, metavar="PATH", help="write the event stream"
    )
    obs.add_argument(
        "--prom",
        default=None,
        metavar="PATH",
        help="write a Prometheus-style text snapshot",
    )
    obs.add_argument(
        "--flow",
        action="store_true",
        help="trace causal propagation (per-layer latency distributions, "
        "information-flow graph, convergence critical path)",
    )
    obs.set_defaults(func=_cmd_obs)

    swarm = subparsers.add_parser(
        "swarm",
        help="launch a local UDP swarm (one process per node) and supervise "
        "it to convergence",
    )
    swarm.add_argument("--nodes", type=int, default=8)
    swarm.add_argument(
        "--shape",
        default="ring",
        help="target overlay shape the swarm must converge to (default: ring)",
    )
    swarm.add_argument("--seed", type=int, default=1)
    swarm.add_argument(
        "--round-interval",
        type=float,
        default=0.2,
        help="seconds between gossip rounds on each node (default: 0.2)",
    )
    swarm.add_argument("--max-rounds", type=int, default=120)
    swarm.add_argument(
        "--status-dir",
        default=None,
        metavar="DIR",
        help="directory for per-node status files (default: a fresh temp "
        "dir; pass it to 'repro watch --swarm' to attach)",
    )
    swarm.add_argument(
        "--bench",
        default="BENCH_gossip.json",
        metavar="PATH",
        help="merge per-node bandwidth into the bench trajectory's 'swarm' "
        "section (default: BENCH_gossip.json; empty string disables)",
    )
    swarm.add_argument(
        "--prom",
        default=None,
        metavar="PATH",
        help="write a Prometheus-style snapshot of the supervisor telemetry",
    )
    swarm.add_argument(
        "--jsonl",
        default=None,
        metavar="PATH",
        help="merge every node's incremental node-*.jsonl stream into one "
        "chronological event file at PATH",
    )
    swarm.add_argument(
        "--quiet", action="store_true", help="suppress the live progress line"
    )
    swarm.set_defaults(func=_cmd_swarm)

    watch = subparsers.add_parser(
        "watch",
        help="live terminal view of a converging run (health + flow included)",
    )
    watch.add_argument(
        "file",
        nargs="?",
        default=None,
        help="topology file to run (omit when attaching with --swarm)",
    )
    watch.add_argument(
        "--swarm",
        default=None,
        metavar="DIR",
        help="attach to a running UDP swarm's status directory instead of "
        "simulating a topology",
    )
    watch.add_argument("--nodes", type=int, default=None)
    watch.add_argument("--seed", type=int, default=1)
    watch.add_argument("--max-rounds", type=int, default=120)
    watch.add_argument(
        "--interval",
        type=int,
        default=5,
        help="rounds between dashboard refreshes (default: 5)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot after the run instead of live frames",
    )
    watch.add_argument(
        "--gauge-every",
        type=int,
        default=1,
        help="structural gauge sampling period in rounds, 0 disables "
        "(default: 1)",
    )
    watch.add_argument(
        "--alerts",
        default=None,
        metavar="PATH",
        help="write the alert/alert_cleared event stream (JSONL) to PATH",
    )
    watch.add_argument(
        "--heal",
        action="store_true",
        help="attach the remediation engine and show its panel (verdict, "
        "active incidents, escalation state)",
    )
    watch.set_defaults(func=_cmd_watch)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
