"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``validate FILE``
    Parse + compile a DSL topology file; report errors with positions.
``lint [PATHS…]``
    Static verification without deploying anything: run every assembly
    rule (``RPR…``) over the given ``.topo`` files/directories, and with
    ``--self-check`` the determinism rules (``DET…``) over ``repro``'s own
    source. Exits 1 when any error-severity diagnostic is found.
``show FILE``
    Print the normalized (pretty-printed) form of a topology file.
``shapes``
    List the shapes available in the component library.
``run FILE``
    Deploy the topology on the simulator, converge, and report per-layer
    rounds, bandwidth split, and a structural summary.
``export FILE``
    Converge the topology and dump the realized overlay as Graphviz DOT or
    an edge list.
``bench [gossip|fig2|fig3|fig4|e2|e3]``
    Without a target (or with ``gossip``), run the deterministic gossip
    hot-path workload matrix, print its table, and write the
    ``BENCH_gossip.json`` trajectory. With a figure/experiment target,
    regenerate it at the current ``REPRO_SCALE`` and print its table.
``faults --scenario NAME``
    Run one scenario of the fault-injection suite (or the whole matrix)
    and print its self-healing report: per-layer time-to-repair, residual
    dead-descriptor fraction, and partition-merge time.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.core.runtime import Runtime
from repro.dsl import compile_source, to_source
from repro.shapes import available_shapes


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return compile_source(handle.read())


def _cmd_validate(args: argparse.Namespace) -> int:
    assembly = _load(args.file)
    print(
        f"OK: topology {assembly.name!r} — "
        f"{len(assembly.components)} component(s), {len(assembly.links)} link(s), "
        f"min {assembly.min_nodes()} node(s)"
        + (f", declared nodes {assembly.total_nodes}" if assembly.total_nodes else "")
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.diagnostics import has_errors
    from repro.lint import lint_paths, render_json, render_text

    if not args.paths and not args.self_check:
        print("error: lint needs at least one path or --self-check", file=sys.stderr)
        return 2
    diagnostics = lint_paths(args.paths, with_self_check=args.self_check)
    render = render_json if args.format == "json" else render_text
    print(render(diagnostics))
    return 1 if has_errors(diagnostics) else 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(to_source(_load(args.file)), end="")
    return 0


def _cmd_shapes(args: argparse.Namespace) -> int:
    for name in available_shapes():
        print(name)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    assembly = _load(args.file)
    deployment = Runtime(assembly, seed=args.seed).deploy(args.nodes)
    report = deployment.run_until_converged(args.max_rounds)
    print(f"converged: {report.converged} (executed {report.executed} rounds)")
    for layer, rounds in sorted(report.rounds.items()):
        print(f"  {layer:>16}: {rounds}")
    if report.executed:
        split = deployment.bandwidth_split(report.executed)
        population = max(1, deployment.network.alive_count())
        print(
            "bandwidth/node/round — baseline: "
            f"{sum(split['baseline']) / report.executed / population:.0f} B, "
            f"overhead: {sum(split['overhead']) / report.executed / population:.0f} B"
        )
    if args.summary:
        from repro.analysis import topology_summary

        print(f"summary: {topology_summary(deployment)}")
    return 0 if report.converged else 1


def _cmd_export(args: argparse.Namespace) -> int:
    assembly = _load(args.file)
    deployment = Runtime(assembly, seed=args.seed).deploy(args.nodes)
    report = deployment.run_until_converged(args.max_rounds)
    if not report.converged:
        print(f"warning: not converged within {args.max_rounds} rounds", file=sys.stderr)
    from repro.analysis import to_dot, to_edge_list

    output = to_dot(deployment) if args.format == "dot" else to_edge_list(deployment)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output)
        print(f"wrote {args.output}")
    else:
        print(output, end="")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    target = args.target
    if target == "gossip":
        from repro.perf.bench import format_bench, run_bench, write_bench

        report = run_bench(
            scale=args.scale,
            seeds=args.seeds,
            master_seed=args.seed,
            parallel=args.parallel,
        )
        print(format_bench(report))
        written = write_bench(report, json_path=args.output)
        for path in written:
            print(f"wrote {path}")
    elif target == "fig2":
        from repro.experiments.fig2 import format_fig2, run_fig2

        print(format_fig2(run_fig2()))
    elif target == "fig3":
        from repro.experiments.fig3 import format_fig3, run_fig3

        print(format_fig3(run_fig3()))
    elif target == "fig4":
        from repro.experiments.fig4 import format_fig4, run_fig4

        print(format_fig4(run_fig4()))
    elif target == "e2":
        from repro.experiments.ring_of_rings import (
            format_ring_of_rings,
            run_ring_of_rings,
        )

        print(format_ring_of_rings(run_ring_of_rings()))
    elif target == "e3":
        from repro.experiments.reconfiguration import (
            format_reconfiguration,
            run_reconfiguration,
        )

        print(format_reconfiguration(run_reconfiguration()))
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults.scenarios import SCENARIOS, format_scenario, run_fault_matrix

    kwargs = {"n_nodes": args.nodes, "seed": args.seed}
    if args.scenario == "matrix":
        results = run_fault_matrix(**kwargs)
    else:
        results = [SCENARIOS[args.scenario](**kwargs)]
    for index, result in enumerate(results):
        if index:
            print()
        print(format_scenario(result))
    return 0 if all(result.healed for result in results) else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Assembly-based construction of complex distributed topologies",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    validate = subparsers.add_parser("validate", help="check a DSL topology file")
    validate.add_argument("file")
    validate.set_defaults(func=_cmd_validate)

    lint = subparsers.add_parser(
        "lint", help="statically verify topology files and/or the framework itself"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help=".topo files or directories to scan recursively",
    )
    lint.add_argument(
        "--self-check",
        action="store_true",
        help="run the determinism (DET) rules over the repro package source",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="diagnostic output format (default: text)",
    )
    lint.set_defaults(func=_cmd_lint)

    show = subparsers.add_parser("show", help="pretty-print a topology file")
    show.add_argument("file")
    show.set_defaults(func=_cmd_show)

    shapes = subparsers.add_parser("shapes", help="list available shapes")
    shapes.set_defaults(func=_cmd_shapes)

    run = subparsers.add_parser("run", help="deploy a topology and converge it")
    run.add_argument("file")
    run.add_argument("--nodes", type=int, default=None)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--max-rounds", type=int, default=120)
    run.add_argument("--summary", action="store_true", help="print graph metrics")
    run.set_defaults(func=_cmd_run)

    export = subparsers.add_parser("export", help="dump the realized overlay")
    export.add_argument("file")
    export.add_argument("--format", choices=("dot", "edges"), default="dot")
    export.add_argument("--output", default=None)
    export.add_argument("--nodes", type=int, default=None)
    export.add_argument("--seed", type=int, default=1)
    export.add_argument("--max-rounds", type=int, default=120)
    export.set_defaults(func=_cmd_export)

    bench = subparsers.add_parser(
        "bench", help="run the perf workload matrix or regenerate a paper figure"
    )
    bench.add_argument(
        "target",
        nargs="?",
        default="gossip",
        choices=("gossip", "fig2", "fig3", "fig4", "e2", "e3"),
        help="'gossip' (default) runs the hot-path workload matrix",
    )
    bench.add_argument(
        "--scale",
        choices=("ci", "full"),
        default="ci",
        help="workload matrix size for the gossip target (default: ci)",
    )
    bench.add_argument(
        "--seeds",
        type=int,
        default=None,
        help="seeds per workload cell (default: per-scale preset)",
    )
    bench.add_argument("--seed", type=int, default=1, help="master seed (default: 1)")
    bench.add_argument(
        "--parallel",
        type=int,
        default=None,
        help="worker processes for the gossip target (default: auto)",
    )
    bench.add_argument(
        "--output",
        default="BENCH_gossip.json",
        help="trajectory path for the gossip target (default: BENCH_gossip.json)",
    )
    bench.set_defaults(func=_cmd_bench)

    from repro.faults.scenarios import SCENARIOS

    faults = subparsers.add_parser(
        "faults", help="run a fault-injection scenario and report recovery"
    )
    faults.add_argument(
        "--scenario",
        choices=tuple(SCENARIOS) + ("matrix",),
        default="partition",
        help="which fault to inject ('matrix' runs the whole suite)",
    )
    faults.add_argument("--nodes", type=int, default=128)
    faults.add_argument("--seed", type=int, default=1)
    faults.set_defaults(func=_cmd_faults)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
