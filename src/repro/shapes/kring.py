"""The k-regular ring shape (each node adjacent to its k nearest per side)."""

from __future__ import annotations

from typing import Any, ClassVar, Dict, FrozenSet

from repro.errors import TopologyError
from repro.shapes.base import Metric, Shape


class KRegularRing(Shape):
    """A ring where rank *r* is adjacent to ranks *r±1 .. r±k* (mod size).

    The classic fault-tolerant ring of the gossip literature: with ``k``
    neighbours per side, up to ``2k - 1`` consecutive failures leave the
    ring connected, and greedy routing makes ``k``-sized strides. ``k = 1``
    degenerates to the plain :class:`~repro.shapes.ring.Ring`.
    """

    name = "kring"
    min_size: ClassVar[int] = 3  # same cycle minimum as the plain ring

    def __init__(self, k: int = 2):
        if k < 1:
            raise TopologyError(f"kring: k must be >= 1, got {k}")
        self.k = k

    def params(self) -> Dict[str, Any]:
        return {"k": self.k}

    def metric(self, size: int) -> Metric:
        self.validate_size(size)

        def circular(a: int, b: int) -> float:
            delta = abs(a - b) % size
            return float(min(delta, size - delta))

        return circular

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        neighbors = set()
        for offset in range(1, self.k + 1):
            neighbors.add((rank + offset) % size)
            neighbors.add((rank - offset) % size)
        neighbors.discard(rank)  # size <= k wraps back onto itself
        return frozenset(neighbors)
