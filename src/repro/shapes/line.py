"""The line (chain) shape."""

from __future__ import annotations

from typing import ClassVar, FrozenSet

from repro.shapes.base import Metric, Shape


class Line(Shape):
    """An open chain: rank *r* is adjacent to *r-1* and *r+1* (no wrap).

    Useful as a pipeline backbone (e.g. a staged stream-processing assembly).
    """

    name = "line"
    min_size: ClassVar[int] = 2  # a chain needs two endpoints

    def metric(self, size: int) -> Metric:
        self.validate_size(size)

        def linear(a: int, b: int) -> float:
            return float(abs(a - b))

        return linear

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        neighbors = set()
        if rank > 0:
            neighbors.add(rank - 1)
        if rank < size - 1:
            neighbors.add(rank + 1)
        return frozenset(neighbors)
