"""The 2-D torus shape (a grid with wraparound)."""

from __future__ import annotations

from typing import Any, ClassVar, Dict, FrozenSet, Optional

from repro.shapes.base import Coord, Metric, Shape
from repro.shapes.grid import grid_dimensions, mesh_feasibility


class Torus(Shape):
    """A ``rows × cols`` torus: 4-neighbour adjacency with wraparound.

    One of the elementary shapes the paper names explicitly ("a ring or
    torus [22, 11]"). The metric is Manhattan distance on the torus; the
    wraparound terms are baked into the metric closure, so coordinates stay
    plain ``(row, col)`` pairs.
    """

    name = "torus"
    min_size: ClassVar[int] = 4  # a wrapping mesh needs at least a 2×2 cell

    def __init__(self, rows: Optional[int] = None):
        self.rows = rows

    def params(self) -> Dict[str, Any]:
        return {} if self.rows is None else {"rows": self.rows}

    def size_feasibility(self, size: int) -> Optional[str]:
        return mesh_feasibility(size, self.rows)

    def coordinate(self, rank: int, size: int) -> Coord:
        self._check_rank(rank, size)
        _, cols = grid_dimensions(size, self.rows)
        return (rank // cols, rank % cols)

    def metric(self, size: int) -> Metric:
        self.validate_size(size)
        rows, cols = grid_dimensions(size, self.rows)

        def toroidal(a: Coord, b: Coord) -> float:
            dr = abs(a[0] - b[0])
            dc = abs(a[1] - b[1])
            return float(min(dr, rows - dr) + min(dc, cols - dc))

        return toroidal

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        rows, cols = grid_dimensions(size, self.rows)
        row, col = rank // cols, rank % cols
        neighbors = {
            ((row - 1) % rows) * cols + col,
            ((row + 1) % rows) * cols + col,
            row * cols + (col - 1) % cols,
            row * cols + (col + 1) % cols,
        }
        neighbors.discard(rank)  # degenerate 1-wide dimensions
        return frozenset(neighbors)
