"""The random-graph "shape" — no structural preference.

A component with this shape only requires connectivity through random links,
i.e. exactly what the peer-sampling substrate maintains. It exists so an
assembly can include unstructured service pools (worker fleets, caches)
alongside structured components, and as the "random network" endpoint of the
paper's shape spectrum.
"""

from __future__ import annotations

from typing import Any, ClassVar, Dict, FrozenSet, Iterable, Mapping

from repro.errors import TopologyError
from repro.shapes.base import Metric, Shape


class RandomGraph(Shape):
    """An unstructured component: any ``min_degree`` live neighbours will do.

    ``target_neighbors`` is empty (no specific adjacency is required);
    convergence instead demands that every member knows at least
    ``min_degree`` other members.
    """

    name = "random"
    min_size: ClassVar[int] = 1  # any population can gossip unstructured

    def __init__(self, min_degree: int = 3):
        if min_degree < 0:
            raise TopologyError(f"random: min_degree must be >= 0, got {min_degree}")
        self.min_degree = min_degree

    def params(self) -> Dict[str, Any]:
        return {"min_degree": self.min_degree}

    def metric(self, size: int) -> Metric:
        self.validate_size(size)

        def indifferent(a: int, b: int) -> float:
            return 0.0 if a == b else 1.0

        return indifferent

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        return frozenset()

    def degree(self, size: int) -> int:
        self.validate_size(size)
        return min(self.min_degree, size - 1)

    def converged(
        self, adjacency: Mapping[int, Iterable[int]], size: int
    ) -> bool:
        self.validate_size(size)
        needed = min(self.min_degree, size - 1)
        return all(
            len(set(adjacency.get(rank, ()))) >= needed for rank in range(size)
        )
