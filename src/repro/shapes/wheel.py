"""The wheel shape — a hub inside a rim ring."""

from __future__ import annotations

from typing import ClassVar, FrozenSet

from repro.shapes.base import Coord, Metric, Shape

#: Rank 0 is the hub, ranks 1..size-1 form the rim ring.
HUB_RANK = 0


class Wheel(Shape):
    """A wheel: rank 0 (hub) adjacent to every rim node; the rim is a ring.

    Models broker-plus-peers arrangements (a coordinator that must reach
    everyone, while workers keep a resilient peer ring among themselves).
    The metric places the hub at distance 1 from every rim node and rim
    nodes at their circular rim distance scaled to keep ring neighbours
    (distance 1) as attractive as the hub.
    """

    name = "wheel"
    min_size: ClassVar[int] = 4  # a hub plus the smallest rim ring

    def coordinate(self, rank: int, size: int) -> Coord:
        self._check_rank(rank, size)
        return ("hub",) if rank == HUB_RANK else ("rim", rank - 1)

    def metric(self, size: int) -> Metric:
        self.validate_size(size)
        rim = max(1, size - 1)

        def wheelwise(a: Coord, b: Coord) -> float:
            if a == b:
                return 0.0
            if a[0] == "hub" or b[0] == "hub":
                return 1.0
            delta = abs(a[1] - b[1]) % rim
            return float(min(delta, rim - delta))

        return wheelwise

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        if size == 1:
            return frozenset()
        if rank == HUB_RANK:
            return frozenset(range(1, size))
        rim = size - 1
        neighbors = {HUB_RANK}
        if rim >= 2:
            position = rank - 1
            neighbors.add(1 + (position - 1) % rim)
            neighbors.add(1 + (position + 1) % rim)
        neighbors.discard(rank)
        return frozenset(neighbors)

    def view_size(self, size: int, base: int) -> int:
        # The hub must hold the whole rim.
        return max(base, size + 1)
