"""The ring shape — the canonical self-organizing overlay target."""

from __future__ import annotations

from typing import ClassVar, FrozenSet

from repro.shapes.base import Metric, Shape


class Ring(Shape):
    """A bidirectional ring: rank *r* is adjacent to *r±1 (mod size)*.

    The metric is circular distance on ranks, the classic T-Man/Vicinity
    ring example; the greedy overlay converges to each node holding its two
    ring successors/predecessors at the top of its view.
    """

    name = "ring"
    min_size: ClassVar[int] = 3  # below 3 the cycle degenerates to an edge or a point

    def metric(self, size: int) -> Metric:
        self.validate_size(size)

        def circular(a: int, b: int) -> float:
            delta = abs(a - b) % size
            return float(min(delta, size - delta))

        return circular

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        if size == 1:
            return frozenset()
        if size == 2:
            return frozenset({1 - rank})
        return frozenset({(rank - 1) % size, (rank + 1) % size})
