"""The shape interface: everything a component needs to realize a topology."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    FrozenSet,
    Iterable,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.errors import ShapeSizeError, TopologyError

#: A rank's coordinate in the shape's profile space (int, tuple, ...).
Coord = Any

#: A metric over coordinates; smaller means "should be closer in the overlay".
Metric = Callable[[Coord, Coord], float]


class Shape(ABC):
    """An elementary topology over ``size`` member ranks ``0 .. size-1``.

    A shape is *stateless with respect to deployment*: the same instance can
    drive components of different sizes (the size is passed to every method),
    which is what lets one DSL component declaration be re-deployed at
    different scales.
    """

    #: Registry name (``ring``, ``star``, ...), set by each concrete shape.
    name: ClassVar[str] = ""

    #: Smallest size at which the shape is structurally meaningful (a ring
    #: needs 3 members to be a cycle, a wheel needs a hub plus a 3-rim, ...).
    #: Sizes below this still *deploy* — degenerate instances are sometimes
    #: wanted (a 1-member bootstrap clique) — but ``repro lint`` warns
    #: (``RPR206``). Hard infeasibility goes through :meth:`size_feasibility`.
    min_size: ClassVar[int] = 1

    # -- validation -------------------------------------------------------------

    def validate_size(self, size: int) -> None:
        """Raise :class:`TopologyError` if the shape cannot host ``size`` ranks."""
        if size < 1:
            raise TopologyError(f"{self.name}: size must be >= 1, got {size}")
        reason = self.size_feasibility(size)
        if reason is not None:
            raise ShapeSizeError(f"{self.name}: {reason}")

    def size_feasibility(self, size: int) -> Optional[str]:
        """Why ``size`` is infeasible for this shape, or ``None`` if it fits.

        The static-verification hook: shapes with structural size
        constraints (a hypercube needs a power of two, a grid a composite
        size) return a human-readable reason string; :meth:`validate_size`
        turns it into a coded :class:`~repro.errors.ShapeSizeError` and the
        linter reports it as ``RPR105`` *before* anything is deployed.
        Sizes below 1 never reach this hook.
        """
        return None

    # -- geometry -----------------------------------------------------------------

    def coordinate(self, rank: int, size: int) -> Coord:
        """The coordinate advertised by ``rank``'s descriptors (default: rank)."""
        self._check_rank(rank, size)
        return rank

    @abstractmethod
    def metric(self, size: int) -> Metric:
        """The distance over coordinates that makes Vicinity build this shape."""

    @abstractmethod
    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        """The ranks that must be adjacent to ``rank`` in the converged shape."""

    # -- derived helpers -------------------------------------------------------------

    def degree(self, size: int) -> int:
        """Maximum target degree over all ranks (drives view sizing)."""
        self.validate_size(size)
        if size == 1:
            return 0
        return max(len(self.target_neighbors(rank, size)) for rank in range(size))

    def rank_degree(self, rank: int, size: int) -> int:
        """Target degree of one specific rank."""
        return len(self.target_neighbors(rank, size))

    def view_size(self, size: int, base: int) -> int:
        """Recommended Vicinity view capacity for a component of ``size``.

        Must hold the full target neighbourhood of the highest-degree rank,
        with a little slack so the greedy search does not thrash.
        """
        return max(base, self.degree(size) + 2)

    def target_edges(self, size: int) -> Set[Tuple[int, int]]:
        """All undirected target edges, as ordered ``(low, high)`` rank pairs."""
        self.validate_size(size)
        edges: Set[Tuple[int, int]] = set()
        for rank in range(size):
            for other in self.target_neighbors(rank, size):
                edges.add((rank, other) if rank < other else (other, rank))
        return edges

    def converged(
        self, adjacency: Mapping[int, Iterable[int]], size: int
    ) -> bool:
        """Whether a realized adjacency (rank -> neighbour ranks) covers the shape.

        The convergence criterion of the paper's figures: every target edge
        must be *known on both sides* — each rank's realized neighbourhood
        contains all of its target neighbours.
        """
        self.validate_size(size)
        for rank in range(size):
            wanted = self.target_neighbors(rank, size)
            if not wanted:
                continue
            realized = set(adjacency.get(rank, ()))
            if not wanted <= realized:
                return False
        return True

    def missing_edges(
        self, adjacency: Mapping[int, Iterable[int]], size: int
    ) -> Set[Tuple[int, int]]:
        """Directed target adjacencies not yet realized (diagnostics)."""
        missing: Set[Tuple[int, int]] = set()
        for rank in range(size):
            realized = set(adjacency.get(rank, ()))
            for other in self.target_neighbors(rank, size):
                if other not in realized:
                    missing.add((rank, other))
        return missing

    # -- parameters & identity ----------------------------------------------------------

    def params(self) -> Dict[str, Any]:
        """Constructor parameters (used by DSL round-tripping); default none."""
        return {}

    def _check_rank(self, rank: int, size: int) -> None:
        self.validate_size(size)
        if not 0 <= rank < size:
            raise TopologyError(
                f"{self.name}: rank {rank} out of range for size {size}"
            )

    def __repr__(self) -> str:
        parameters = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{type(self).__name__}({parameters})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Shape):
            return NotImplemented
        return type(self) is type(other) and self.params() == other.params()

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.params().items()))))
