"""The binary tree shape."""

from __future__ import annotations

from typing import ClassVar, FrozenSet, List

from repro.shapes.base import Metric, Shape


def _tree_path_length(a: int, b: int) -> int:
    """Path length between positions ``a`` and ``b`` of a complete binary tree.

    Positions are heap indices (root 0, children of *i* at *2i+1*, *2i+2*);
    the path length is the number of edges via the lowest common ancestor.
    """
    # Convert to 1-based heap indices, whose binary representations encode
    # the root-to-node paths.
    a += 1
    b += 1
    depth_a = a.bit_length() - 1
    depth_b = b.bit_length() - 1
    hops = 0
    while depth_a > depth_b:
        a >>= 1
        depth_a -= 1
        hops += 1
    while depth_b > depth_a:
        b >>= 1
        depth_b -= 1
        hops += 1
    while a != b:
        a >>= 1
        b >>= 1
        hops += 2
    return hops


class BinaryTree(Shape):
    """A complete binary tree over ranks laid out as heap indices.

    The metric is exact tree-path length, so the greedy overlay pulls each
    node toward its parent and children (the distance-1 positions). Trees are
    the natural shape for aggregation and dissemination sub-systems.
    """

    name = "tree"
    min_size: ClassVar[int] = 3  # a root and both children

    def metric(self, size: int) -> Metric:
        self.validate_size(size)

        def tree_distance(a: int, b: int) -> float:
            return float(_tree_path_length(a, b))

        return tree_distance

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        neighbors: List[int] = []
        if rank > 0:
            neighbors.append((rank - 1) // 2)
        left, right = 2 * rank + 1, 2 * rank + 2
        if left < size:
            neighbors.append(left)
        if right < size:
            neighbors.append(right)
        return frozenset(neighbors)
