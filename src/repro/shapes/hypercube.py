"""The hypercube shape."""

from __future__ import annotations

from typing import ClassVar, FrozenSet, Optional

from repro.shapes.base import Metric, Shape


class Hypercube(Shape):
    """A binary hypercube: ranks adjacent iff their ids differ in one bit.

    The paper cites hypercubes among the topologies self-organizing overlays
    can reach ("from a random network to a ring or torus to an hypercube").
    The metric is Hamming distance over rank ids; the size must be a power
    of two so every vertex exists.
    """

    name = "hypercube"
    min_size: ClassVar[int] = 2  # a 0-cube is a single isolated vertex

    def size_feasibility(self, size: int) -> Optional[str]:
        if size & (size - 1):
            return f"size must be a power of two, got {size}"
        return None

    def metric(self, size: int) -> Metric:
        self.validate_size(size)

        def hamming(a: int, b: int) -> float:
            return float(bin(a ^ b).count("1"))

        return hamming

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        dimensions = size.bit_length() - 1
        return frozenset(rank ^ (1 << bit) for bit in range(dimensions))
