"""The star shape — one hub, ``size - 1`` leaves.

The paper's flagship composite, the MongoDB-style sharded cluster, is "a star
of cliques": a router component shaped as a star whose hub fans out to shard
cliques.
"""

from __future__ import annotations

from typing import ClassVar, FrozenSet

from repro.shapes.base import Coord, Metric, Shape

#: Rank 0 is the hub by convention (port selectors can address it as such).
HUB_RANK = 0


class Star(Shape):
    """A star: rank 0 (the hub) is adjacent to every other rank.

    The metric makes every leaf prefer the hub (distance 1) over other
    leaves (distance 2), and the hub prefer leaves uniformly; with a view
    large enough for the hub's degree, the greedy overlay converges to the
    star.
    """

    name = "star"
    min_size: ClassVar[int] = 2  # a hub with no leaf is just a point

    def coordinate(self, rank: int, size: int) -> Coord:
        self._check_rank(rank, size)
        return ("hub",) if rank == HUB_RANK else ("leaf", rank)

    def metric(self, size: int) -> Metric:
        self.validate_size(size)

        def starwise(a: Coord, b: Coord) -> float:
            if a == b:
                return 0.0
            if a[0] == "hub" or b[0] == "hub":
                return 1.0
            return 2.0

        return starwise

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        if size == 1:
            return frozenset()
        if rank == HUB_RANK:
            return frozenset(range(1, size))
        return frozenset({HUB_RANK})

    def view_size(self, size: int, base: int) -> int:
        # The hub must be able to hold every leaf; leaves stay small, but the
        # protocol instance is shared per component, so size for the worst rank.
        return max(base, size + 1)
