"""The 2-D grid shape."""

from __future__ import annotations

import math
from typing import Any, ClassVar, Dict, FrozenSet, Optional, Tuple

from repro.errors import TopologyError
from repro.shapes.base import Coord, Metric, Shape


def mesh_feasibility(size: int, rows: Optional[int]) -> Optional[str]:
    """Shared grid/torus size check: why ``size`` is infeasible, or ``None``.

    With explicit ``rows``, the size must divide evenly. Without, a prime
    ``size >= 3`` silently degenerates to a 1×N chain — almost always a
    sizing mistake, so it is rejected; an intentional single-row mesh is
    still expressible with ``rows = 1``.
    """
    if rows is not None:
        if rows < 1 or size % rows != 0:
            return f"{rows} rows do not divide size {size}"
        return None
    if size >= 3 and all(size % divisor for divisor in range(2, math.isqrt(size) + 1)):
        return (
            f"size {size} is prime and degenerates to a 1×{size} chain; "
            f"use a composite size or pass rows = 1 explicitly"
        )
    return None


def grid_dimensions(size: int, rows: Optional[int] = None) -> Tuple[int, int]:
    """Choose grid dimensions for ``size`` cells.

    With explicit ``rows``, ``size`` must divide evenly. Otherwise the most
    square factorization ``rows × cols = size`` is used (rows <= cols).
    """
    if size < 1:
        raise TopologyError(f"grid: size must be >= 1, got {size}")
    if rows is not None:
        if rows < 1 or size % rows != 0:
            raise TopologyError(f"grid: {rows} rows do not divide size {size}")
        return rows, size // rows
    best = 1
    for candidate in range(1, int(math.isqrt(size)) + 1):
        if size % candidate == 0:
            best = candidate
    return best, size // best


class Grid(Shape):
    """An open ``rows × cols`` mesh with 4-neighbour (von Neumann) adjacency.

    Parameters
    ----------
    rows:
        Optional fixed row count; by default the most square factorization
        of the deployed size is chosen.
    """

    name = "grid"
    min_size: ClassVar[int] = 4  # anything smaller is a point, an edge, or a chain

    def __init__(self, rows: Optional[int] = None):
        self.rows = rows

    def params(self) -> Dict[str, Any]:
        return {} if self.rows is None else {"rows": self.rows}

    def size_feasibility(self, size: int) -> Optional[str]:
        return mesh_feasibility(size, self.rows)

    def coordinate(self, rank: int, size: int) -> Coord:
        self._check_rank(rank, size)
        _, cols = grid_dimensions(size, self.rows)
        return (rank // cols, rank % cols)

    def metric(self, size: int) -> Metric:
        self.validate_size(size)

        def manhattan(a: Coord, b: Coord) -> float:
            return float(abs(a[0] - b[0]) + abs(a[1] - b[1]))

        return manhattan

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        rows, cols = grid_dimensions(size, self.rows)
        row, col = rank // cols, rank % cols
        neighbors = set()
        if row > 0:
            neighbors.add(rank - cols)
        if row < rows - 1:
            neighbors.add(rank + cols)
        if col > 0:
            neighbors.add(rank - 1)
        if col < cols - 1:
            neighbors.add(rank + 1)
        return frozenset(neighbors)
