"""The clique shape — every member adjacent to every other.

Cliques model fully-replicated groups: MongoDB replica sets (the paper's
star-of-cliques example), consensus groups, state-machine-replication cells.
"""

from __future__ import annotations

from typing import ClassVar, FrozenSet

from repro.shapes.base import Metric, Shape


class Clique(Shape):
    """A complete graph over the component's members.

    All pairs are equally desirable (distance 1), so the overlay converges
    as soon as every member has discovered every other; the view must hold
    ``size - 1`` entries, which bounds practical clique sizes — exactly the
    regime the paper targets (small replica groups inside a larger assembly).
    """

    name = "clique"
    min_size: ClassVar[int] = 2  # replication groups of one replicate nothing

    def metric(self, size: int) -> Metric:
        self.validate_size(size)

        def uniform(a: int, b: int) -> float:
            return 0.0 if a == b else 1.0

        return uniform

    def target_neighbors(self, rank: int, size: int) -> FrozenSet[int]:
        self._check_rank(rank, size)
        return frozenset(r for r in range(size) if r != rank)

    def view_size(self, size: int, base: int) -> int:
        return max(base, size + 1)
