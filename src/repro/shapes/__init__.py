"""The elementary topology shapes of the component library.

The paper's component library "contains a predefined set of components
implementing a range of elementary topologies (a ring, a tree, a torus)".
Each :class:`~repro.shapes.base.Shape` packages everything the runtime needs
to realize one such topology with a Vicinity/T-Man core protocol:

- a *coordinate* assignment for each member rank;
- a *metric* over coordinates (the proximity function driving the overlay);
- a *target-neighbour oracle* (which ranks should end up adjacent), used by
  the convergence detectors that produce the paper's figures.

Shapes are looked up by name through :func:`~repro.shapes.registry.make_shape`
— the hook the DSL compiler uses (``component foo : ring(...)``).
"""

from repro.shapes.base import Shape
from repro.shapes.clique import Clique
from repro.shapes.grid import Grid
from repro.shapes.hypercube import Hypercube
from repro.shapes.kring import KRegularRing
from repro.shapes.line import Line
from repro.shapes.random_graph import RandomGraph
from repro.shapes.registry import available_shapes, make_shape, register_shape
from repro.shapes.ring import Ring
from repro.shapes.star import Star
from repro.shapes.torus import Torus
from repro.shapes.tree import BinaryTree
from repro.shapes.wheel import Wheel

__all__ = [
    "BinaryTree",
    "Clique",
    "Grid",
    "Hypercube",
    "KRegularRing",
    "Line",
    "RandomGraph",
    "Ring",
    "Shape",
    "Star",
    "Torus",
    "Wheel",
    "available_shapes",
    "make_shape",
    "register_shape",
]
