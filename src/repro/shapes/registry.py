"""Name-based shape lookup — the hook the DSL compiler resolves through."""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.errors import ConfigurationError
from repro.shapes.base import Shape

_REGISTRY: Dict[str, Callable[..., Shape]] = {}


def register_shape(name: str, factory: Callable[..., Shape]) -> None:
    """Register a shape factory under ``name`` (extends the component library).

    Registering an existing name replaces the previous factory, which lets
    applications override a stock shape with a tuned variant.
    """
    if not name or not name.isidentifier():
        raise ConfigurationError(f"shape name must be an identifier, got {name!r}")
    _REGISTRY[name] = factory


def make_shape(name: str, **params: Any) -> Shape:
    """Instantiate the shape registered under ``name`` with ``params``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown shape {name!r} (known shapes: {known})"
        ) from None
    try:
        return factory(**params)
    except TypeError as exc:
        raise ConfigurationError(f"bad parameters for shape {name!r}: {exc}") from exc


def available_shapes() -> List[str]:
    return sorted(_REGISTRY)


def _register_builtins() -> None:
    # Imported here to avoid import cycles at package-load time.
    from repro.shapes.clique import Clique
    from repro.shapes.grid import Grid
    from repro.shapes.hypercube import Hypercube
    from repro.shapes.kring import KRegularRing
    from repro.shapes.line import Line
    from repro.shapes.random_graph import RandomGraph
    from repro.shapes.ring import Ring
    from repro.shapes.star import Star
    from repro.shapes.torus import Torus
    from repro.shapes.tree import BinaryTree
    from repro.shapes.wheel import Wheel

    for shape_class in (
        Ring,
        Line,
        Star,
        Clique,
        Grid,
        Torus,
        BinaryTree,
        Hypercube,
        RandomGraph,
        KRegularRing,
        Wheel,
    ):
        register_shape(shape_class.name, shape_class)


_register_builtins()
