"""The unified engine API: ``RunnerConfig`` → :func:`make_runner` → ``Runner``.

Before this module the repo had three engine entry points with drifting
construction surfaces: :class:`~repro.sim.engine.Engine` (round-based
reference), :class:`~repro.scale.engine.ShardedEngine` (BSP scale tier),
and the asyncio UDP runtime of :mod:`repro.runtime.net`. Each took its own
mix of ``GossipParams`` / ``ShardPlan`` / ad-hoc kwargs. This module
collapses them:

- :class:`RunnerConfig` — one frozen, validated configuration record,
  with :meth:`RunnerConfig.from_legacy` adapters from every historical
  surface (``GossipParams``, ``SimulationConfig``, ``RuntimeConfig``,
  ``ShardPlan``). The lint rule ``API001``
  (:mod:`repro.lint.api_surface`) pins the legacy surfaces so new knobs
  land here, not there.
- :func:`make_runner` — the one factory. Direct construction of the
  engine classes still works but emits a :class:`DeprecationWarning`
  (same migration discipline as the PR-4 Instrument merge).
- :class:`Runner` — the structural protocol every engine satisfies:
  ``run_round`` / ``run`` / ``close`` plus the ``round`` counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

try:  # typing.Protocol is 3.8+; keep a soft fallback for exotic builds
    from typing import Protocol as _Protocol, runtime_checkable
except ImportError:  # pragma: no cover - ancient interpreter only
    _Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


from repro.errors import ConfigurationError
from repro.sim.config import GossipParams, SimulationConfig, TransportCosts

#: Engine kinds ``make_runner`` can build.
KINDS = ("round", "loopback", "sharded", "net")


@runtime_checkable
class Runner(_Protocol):
    """What every engine looks like from the outside.

    ``run_round`` executes one logical round and returns ``True`` when the
    engine wants to stop (an observer's verdict); ``run`` executes up to
    ``max_rounds`` and returns the count actually executed; ``close``
    releases any resources (process pools, sockets) and is idempotent.
    The ``round`` attribute counts completed rounds.
    """

    round: int

    def run_round(self) -> bool: ...  # noqa: E704 - protocol stub

    def run(self, max_rounds: int) -> int: ...  # noqa: E704 - protocol stub

    def close(self) -> None: ...  # noqa: E704 - protocol stub


@dataclass(frozen=True)
class RunnerConfig:
    """The consolidated engine configuration — frozen and validated.

    One record covers all four kinds; knobs irrelevant to a kind are
    simply unused (a ``net`` runner ignores ``n_shards``, a ``round``
    runner ignores ``base_port``). Build it directly, or adapt a legacy
    surface with :meth:`from_legacy`.
    """

    kind: str = "round"
    n_nodes: int = 64
    seed: int = 1
    #: Shape vocabulary shared with the perf/scale matrices (``ring``,
    #: ``grid``, ``clique``, ...); selects profiles and convergence test
    #: for the elementary stack the factory deploys.
    shape: str = "ring"
    #: Scale-tier workload label (the sharded engine's vocabulary).
    workload: str = "elementary"
    gossip: GossipParams = field(default_factory=GossipParams)
    costs: TransportCosts = field(default_factory=TransportCosts)
    loss_rate: float = 0.0
    max_rounds: int = 120
    # -- sharded knobs (historically ShardPlan + ScaleSpec) -------------------
    backend: str = "object"
    n_shards: int = 1
    mode: str = "inline"
    # -- net knobs (UDP runtime; see repro.runtime.net) -----------------------
    bind_host: str = "127.0.0.1"
    #: UDP port of this node; 0 binds an ephemeral port.
    port: int = 0
    #: This node's identity in the swarm (also its RNG-stream identity).
    node_index: int = 0
    #: ``host:port`` of the rendezvous (bootstrap) node, or ``""`` when
    #: this node *is* the rendezvous.
    rendezvous: str = ""
    #: Seconds between gossip rounds on the wall-clock ticker.
    round_interval: float = 0.2
    #: TTL for flooded ANNOUNCE frames and relay fanout per hop.
    ttl: int = 4
    fanout: int = 3

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"kind must be one of {KINDS}, got {self.kind!r}"
            )
        if self.n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {self.n_nodes}")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in [0, 1), got {self.loss_rate}"
            )
        if self.max_rounds < 0:
            raise ConfigurationError(
                f"max_rounds must be >= 0, got {self.max_rounds}"
            )
        if not 1 <= self.n_shards <= self.n_nodes:
            raise ConfigurationError(
                f"n_shards must be in [1, n_nodes], got {self.n_shards}"
            )
        if self.mode not in ("inline", "mp"):
            raise ConfigurationError(
                f"mode must be 'inline' or 'mp', got {self.mode!r}"
            )
        if self.backend not in ("object", "columnar"):
            raise ConfigurationError(
                f"backend must be 'object' or 'columnar', got {self.backend!r}"
            )
        if not 0 <= self.node_index < self.n_nodes:
            raise ConfigurationError(
                f"node_index must be in [0, n_nodes), got {self.node_index}"
            )
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(f"port must be a UDP port, got {self.port}")
        if self.round_interval <= 0.0:
            raise ConfigurationError(
                f"round_interval must be > 0, got {self.round_interval}"
            )
        if not 1 <= self.ttl <= 16:
            raise ConfigurationError(f"ttl must be in [1, 16], got {self.ttl}")
        if self.fanout < 1:
            raise ConfigurationError(f"fanout must be >= 1, got {self.fanout}")

    # -- adapters from the legacy surfaces ------------------------------------

    @classmethod
    def from_legacy(cls, legacy: Any, **overrides: Any) -> "RunnerConfig":
        """A config adapted from any historical configuration object.

        Accepts :class:`~repro.sim.config.GossipParams`,
        :class:`~repro.sim.config.SimulationConfig`,
        :class:`~repro.core.runtime.RuntimeConfig`, and
        :class:`~repro.scale.engine.ShardPlan`; keyword overrides win over
        adapted fields. Unknown types are a configuration error, so typos
        fail loudly rather than silently building defaults.
        """
        adapted = cls._adapt(legacy)
        if overrides:
            adapted = replace(adapted, **overrides)
        return adapted

    @classmethod
    def _adapt(cls, legacy: Any) -> "RunnerConfig":
        from repro.core.runtime import RuntimeConfig  # late: avoids a cycle
        from repro.scale.engine import ShardPlan

        if isinstance(legacy, GossipParams):
            return cls(gossip=legacy)
        if isinstance(legacy, SimulationConfig):
            return cls(
                seed=legacy.master_seed,
                max_rounds=legacy.max_rounds,
                gossip=legacy.gossip,
                costs=legacy.costs,
            )
        if isinstance(legacy, RuntimeConfig):
            return cls(
                gossip=legacy.peer_sampling,
                costs=legacy.costs,
                loss_rate=legacy.loss_rate,
            )
        if isinstance(legacy, ShardPlan):
            return cls(
                kind="sharded", n_nodes=legacy.n_nodes, n_shards=legacy.n_shards
            )
        raise ConfigurationError(
            f"no legacy adapter for {type(legacy).__name__!r}"
        )


#: The elementary two-layer stack the factory deploys (shared vocabulary
#: with the perf matrix: peer sampling feeding one Vicinity overlay).
PS_LAYER = "peer_sampling"
OVERLAY_LAYER = "overlay"


@dataclass
class ElementaryDeployment:
    """The substrate :func:`make_runner` builds for ``round``/``loopback``.

    Exposes the pieces callers historically built by hand (network,
    streams, transport) plus the rank bijection and the shape, so perf
    measurement and convergence checks keep working unchanged.
    """

    network: Any
    streams: Any
    transport: Any
    shape: Any
    rank_of: Dict[int, int]

    def overlay_adjacency(self) -> Dict[int, Dict[str, Any]]:
        """Rank-keyed overlay adjacency (the shape's convergence input)."""
        adjacency: Dict[int, Any] = {}
        for node in self.network.alive_nodes():
            rank = self.rank_of[node.node_id]
            adjacency[rank] = [
                self.rank_of[other]
                for other in node.protocol(OVERLAY_LAYER).neighbors()
                if other in self.rank_of
            ]
        return adjacency

    def converged(self) -> bool:
        return self.shape.converged(self.overlay_adjacency(), len(self.rank_of))


def build_elementary(
    config: RunnerConfig, transport: Optional[Any] = None
) -> ElementaryDeployment:
    """Deploy the elementary stack for ``config`` (digest-critical path).

    Construction order — node creation, per-node bootstrap draws, protocol
    attachment — is byte-for-byte the historical ``run_workload`` build,
    so a runner made here reproduces the pinned perf digests exactly.
    """
    from repro.gossip.peer_sampling import PeerSampling
    from repro.gossip.selection import Proximity
    from repro.gossip.vicinity import Vicinity
    from repro.shapes import make_shape
    from repro.sim.network import Network
    from repro.sim.rng import RandomStreams
    from repro.sim.transport import Transport

    shape = make_shape(config.shape)
    n_nodes = config.n_nodes
    params = config.gossip
    network = Network()
    streams = RandomStreams(config.seed)
    if transport is None:
        transport = Transport(config.costs)
    nodes = network.create_nodes(n_nodes)
    proximity = Proximity(shape.metric(n_nodes))
    view_size = shape.view_size(n_nodes, params.view_size)
    sized = GossipParams(
        view_size=view_size,
        gossip_size=min(params.gossip_size, view_size + 1),
        healer=params.healer,
        swapper=params.swapper,
        backend=params.backend,
    )
    rank_of: Dict[int, int] = {}
    for rank, node in enumerate(nodes):
        rank_of[node.node_id] = rank
        peer_sampling = PeerSampling(node.node_id, params, layer=PS_LAYER)
        peer_sampling.bootstrap(streams.stream("bootstrap", node.node_id), network)
        node.attach(PS_LAYER, peer_sampling)
        node.attach(
            OVERLAY_LAYER,
            Vicinity(
                node.node_id,
                profile=shape.coordinate(rank, n_nodes),
                proximity=proximity,
                params=sized,
                layer=OVERLAY_LAYER,
                random_layer=PS_LAYER,
                target_degree=max(1, shape.rank_degree(rank, n_nodes)),
            ),
        )
    return ElementaryDeployment(
        network=network,
        streams=streams,
        transport=transport,
        shape=shape,
        rank_of=rank_of,
    )


def make_runner(
    config: RunnerConfig,
    *,
    network: Optional[Any] = None,
    transport: Optional[Any] = None,
    streams: Optional[Any] = None,
    controls: Tuple = (),
    observers: Tuple = (),
    actuators: Tuple = (),
    faults: Optional[Any] = None,
    obs: Optional[Any] = None,
) -> Runner:
    """The one constructor for every engine.

    - ``round`` — the cycle-driven reference engine. With an explicit
      ``network`` (a hand-built stack, e.g. the layered runtime's
      deployment) the remaining substrate kwargs are honoured; without
      one the factory deploys the elementary stack for ``config.shape``.
      The built runner exposes ``.deployment`` in the latter case.
    - ``loopback`` — identical to ``round`` but every exchange round-trips
      through the wire codec (:class:`repro.runtime.loopback.LoopbackTransport`);
      the digest gate proves this path lossless.
    - ``sharded`` — the BSP scale engine on ``config.workload``.
    - ``net`` — one UDP node of a swarm (see :mod:`repro.runtime.net`).
    """
    from repro.runtime.engines import RoundRunner, ShardRunner

    if config.kind in ("round", "loopback"):
        deployment = None
        if config.kind == "loopback":
            from repro.runtime.loopback import LoopbackTransport

            if transport is None:
                from repro.sim.transport import Transport

                transport = LoopbackTransport(Transport(config.costs))
            elif not isinstance(transport, LoopbackTransport):
                transport = LoopbackTransport(transport)
        if network is None:
            deployment = build_elementary(config, transport)
            network, streams = deployment.network, deployment.streams
            transport = deployment.transport
        runner = RoundRunner(
            network,
            transport,
            streams,
            controls=controls,
            observers=observers,
            loss_rate=config.loss_rate,
            faults=faults,
            obs=obs,
            actuators=actuators,
        )
        runner.deployment = deployment
        return runner
    if config.kind == "sharded":
        sharded = ShardRunner(
            config.workload,
            config.shape,
            config.n_nodes,
            config.seed,
            backend=config.backend,
            n_shards=config.n_shards,
            mode=config.mode,
            costs=config.costs,
        )
        if obs is not None:
            sharded.obs = obs
        return sharded
    # config.kind == "net" — validated by RunnerConfig.
    from repro.runtime.net import NetRunner

    net_runner = NetRunner(config)
    if obs is not None:
        net_runner.obs = obs
    return net_runner
