"""Versioned JSON wire codec for the UDP runtime.

The normative shape follows the gossip-network protocol family: every
datagram is one JSON frame carrying a protocol version, a frame type, a
per-sender message id, and a TTL; receivers deduplicate on message id with
a bounded seen-set and decrement TTL before any relay. The codec is the
*only* place bytes are interpreted — layers above see Python values
(descriptors, profiles) and layers below see ``bytes``.

Design rules, enforced by tests:

- **Hostile input never crashes.** :func:`decode` raises
  :class:`~repro.errors.WireError` (and nothing else) for truncated
  frames, non-UTF-8 bytes, non-JSON text, wrong top-level type, missing
  or ill-typed header fields, unknown frame types, out-of-range TTLs,
  oversized datagrams, and protocol-version skew.
- **Values round-trip exactly.** JSON alone collapses tuples to lists,
  which would corrupt shape-coordinate profiles and
  :class:`~repro.gossip.descriptors.Provenance` tags crossing the wire.
  A tagged encoding (:func:`pack_value` / :func:`unpack_value`)
  preserves tuples, descriptors, and provenance bit-for-bit — the
  loopback digest gate rests on this.
- **Determinism.** Message ids are ``"<src>:<seq>"`` from a per-node
  monotonic counter (:class:`MsgIdSource`), not random UUIDs, so a
  seeded swarm emits a reproducible id stream.
- **Optional trace context.** A frame may carry a ``tr`` field — a
  Lamport logical clock plus provenance tags (:func:`make_trace`),
  validated by :func:`check_trace` on decode. The field is strictly
  additive: ``WIRE_VERSION`` stays 1, frames without it decode exactly
  as before, and decoders that predate the field interoperate because
  they never look for the key.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Any, Dict, Optional

from repro.errors import WireError
from repro.gossip.descriptors import Descriptor, Provenance

#: Protocol version spoken by this build. Frames carrying any other value
#: are rejected with a typed error (version-skew test).
WIRE_VERSION = 1

#: Hard ceiling on a decoded datagram; larger input is hostile by fiat.
MAX_FRAME_BYTES = 64 * 1024

#: Highest TTL a frame may carry; bounds relay storms from hostile peers.
MAX_TTL = 16

# Frame types. HELLO/GET_PEERS/PEERS_LIST implement bootstrap rendezvous,
# PING/PONG liveness, GOSSIP_REQ/GOSSIP_RESP the layer exchanges, and
# ANNOUNCE the TTL-bounded flood (membership news).
HELLO = "HELLO"
GET_PEERS = "GET_PEERS"
PEERS_LIST = "PEERS_LIST"
PING = "PING"
PONG = "PONG"
GOSSIP_REQ = "GOSSIP_REQ"
GOSSIP_RESP = "GOSSIP_RESP"
ANNOUNCE = "ANNOUNCE"

FRAME_TYPES = frozenset(
    (HELLO, GET_PEERS, PEERS_LIST, PING, PONG, GOSSIP_REQ, GOSSIP_RESP, ANNOUNCE)
)

# Tagged-value markers. A plain dict from application code could collide
# with a marker only by carrying these exact keys; encode() guards that.
_TAG_TUPLE = "__t"
_TAG_DESCRIPTOR = "__d"
_TAG_PROVENANCE = "__p"
_TAG_MAP = "__m"
_TAGS = (_TAG_TUPLE, _TAG_DESCRIPTOR, _TAG_PROVENANCE, _TAG_MAP)

#: Optional trace-context field: a Lamport clock plus provenance tags.
#: Version-tolerant by construction — WIRE_VERSION stays 1, decoders that
#: predate the field simply never look for the key, and encoders attach it
#: only when tracing is enabled (zero wire-format change otherwise).
TRACE_KEY = "tr"
#: Ceiling on provenance tags one trace field may carry; bounds hostile
#: frames that try to smuggle unbounded tag lists past the size cap.
MAX_TRACE_TAGS = 256


def make_trace(clock: int, tags: Any = ()) -> Dict[str, Any]:
    """A trace-context record ready to attach as the ``tr`` frame field.

    ``clock`` is the sender's Lamport timestamp for the send event
    (:class:`repro.runtime.lamport.LamportClock`); ``tags`` the
    :class:`Provenance` records of any descriptors the frame carries.
    """
    return {"lc": int(clock), "tags": list(tags)}


def check_trace(value: Any) -> Dict[str, Any]:
    """Validate a decoded trace field; hostile shapes raise :class:`WireError`.

    Unknown extra keys are tolerated (future encoders may add fields under
    the same wire version); the known keys are strictly typed — a trace
    field is observability data, but a malformed one is still hostile
    input and must surface as a counted decode error, never a crash in
    the receive loop.
    """
    if not isinstance(value, dict):
        raise WireError(f"trace field must be a map, got {type(value).__name__!r}")
    clock = value.get("lc")
    if not isinstance(clock, int) or isinstance(clock, bool) or clock < 0:
        raise WireError(f"bad trace clock {clock!r}")
    tags = value.get("tags", [])
    if not isinstance(tags, (list, tuple)):
        raise WireError(f"trace tags must be a list, got {type(tags).__name__!r}")
    if len(tags) > MAX_TRACE_TAGS:
        raise WireError(f"trace carries {len(tags)} tags (max {MAX_TRACE_TAGS})")
    for tag in tags:
        if not isinstance(tag, Provenance):
            raise WireError(
                f"trace tag must be provenance, got {type(tag).__name__!r}"
            )
    return {"lc": clock, "tags": list(tags)}


def pack_value(value: Any) -> Any:
    """A JSON-safe encoding of ``value`` that :func:`unpack_value` inverts.

    Supports the payload vocabulary of the gossip layers: scalars, strings,
    lists, tuples, string-keyed dicts, arbitrary-keyed dicts (as tagged
    pair lists), :class:`Descriptor`, and :class:`Provenance`. Anything
    else is a programming error on the *sending* side and raises
    :class:`WireError` immediately rather than emitting garbage.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Descriptor):
        return {
            _TAG_DESCRIPTOR: [
                value.node_id,
                value.age,
                pack_value(value.profile),
                pack_value(value.provenance),
            ]
        }
    if isinstance(value, Provenance):
        return {_TAG_PROVENANCE: [value.origin, value.minted_round, value.hops]}
    if isinstance(value, tuple):
        return {_TAG_TUPLE: [pack_value(item) for item in value]}
    if isinstance(value, list):
        return [pack_value(item) for item in value]
    if isinstance(value, dict):
        if all(isinstance(key, str) for key in value) and not any(
            tag in value for tag in _TAGS
        ):
            return {key: pack_value(item) for key, item in value.items()}
        return {_TAG_MAP: [[pack_value(k), pack_value(v)] for k, v in value.items()]}
    raise WireError(f"cannot encode value of type {type(value).__name__!r}")


def unpack_value(value: Any) -> Any:
    """Invert :func:`pack_value`; hostile shapes raise :class:`WireError`."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [unpack_value(item) for item in value]
    if isinstance(value, dict):
        if _TAG_DESCRIPTOR in value:
            fields = value[_TAG_DESCRIPTOR]
            if not isinstance(fields, list) or len(fields) != 4:
                raise WireError("malformed descriptor tag")
            node_id, age, profile, provenance = fields
            if not isinstance(node_id, int) or not isinstance(age, int):
                raise WireError("malformed descriptor tag")
            provenance = unpack_value(provenance)
            if provenance is not None and not isinstance(provenance, Provenance):
                raise WireError("malformed descriptor provenance")
            return Descriptor(node_id, age, unpack_value(profile), provenance)
        if _TAG_PROVENANCE in value:
            fields = value[_TAG_PROVENANCE]
            if (
                not isinstance(fields, list)
                or len(fields) != 3
                or not all(isinstance(item, int) for item in fields)
            ):
                raise WireError("malformed provenance tag")
            return Provenance(*fields)
        if _TAG_TUPLE in value:
            items = value[_TAG_TUPLE]
            if not isinstance(items, list):
                raise WireError("malformed tuple tag")
            return tuple(unpack_value(item) for item in items)
        if _TAG_MAP in value:
            pairs = value[_TAG_MAP]
            if not isinstance(pairs, list) or not all(
                isinstance(pair, list) and len(pair) == 2 for pair in pairs
            ):
                raise WireError("malformed map tag")
            return {unpack_value(k): unpack_value(v) for k, v in pairs}
        return {key: unpack_value(item) for key, item in value.items()}
    raise WireError(f"cannot decode value of type {type(value).__name__!r}")


def make_frame(
    frame_type: str,
    src: int,
    msg_id: str,
    ttl: int = 0,
    **fields: Any,
) -> Dict[str, Any]:
    """A well-formed frame dict ready for :func:`encode`."""
    frame: Dict[str, Any] = {
        "v": WIRE_VERSION,
        "t": frame_type,
        "id": msg_id,
        "ttl": ttl,
        "src": src,
    }
    frame.update(fields)
    return frame


def encode(frame: Dict[str, Any]) -> bytes:
    """Serialize a frame to wire bytes (canonical, compact JSON)."""
    _check_header(frame)
    payload = {
        key: (pack_value(value) if key not in ("v", "t", "id", "ttl", "src") else value)
        for key, value in frame.items()
    }
    try:
        data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireError(f"unencodable frame: {exc}") from exc
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"frame exceeds {MAX_FRAME_BYTES} bytes ({len(data)})")
    return data


def decode(data: bytes) -> Dict[str, Any]:
    """Parse wire bytes into a frame dict, or raise :class:`WireError`.

    The single funnel for untrusted input: every malformation — truncation,
    bad UTF-8, bad JSON, wrong version, unknown type, hostile ids, TTL out
    of range — surfaces as a typed error, never as a stray ``KeyError`` or
    ``UnicodeDecodeError`` escaping into a receive loop.
    """
    if not isinstance(data, (bytes, bytearray)):
        raise WireError(f"expected bytes, got {type(data).__name__!r}")
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(f"datagram exceeds {MAX_FRAME_BYTES} bytes ({len(data)})")
    try:
        text = bytes(data).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise WireError(f"frame is not valid UTF-8: {exc}") from exc
    try:
        raw = json.loads(text)
    except ValueError as exc:
        raise WireError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise WireError(f"frame must be a JSON object, got {type(raw).__name__!r}")
    _check_header(raw)
    frame: Dict[str, Any] = {}
    for key, value in raw.items():
        if key in ("v", "t", "id", "ttl", "src"):
            frame[key] = value
        else:
            frame[key] = unpack_value(value)
    if TRACE_KEY in frame:
        frame[TRACE_KEY] = check_trace(frame[TRACE_KEY])
    return frame


def _check_header(frame: Dict[str, Any]) -> None:
    version = frame.get("v")
    if version != WIRE_VERSION:
        raise WireError(
            f"protocol version skew: frame speaks {version!r}, "
            f"this build speaks {WIRE_VERSION}"
        )
    frame_type = frame.get("t")
    if frame_type not in FRAME_TYPES:
        raise WireError(f"unknown frame type {frame_type!r}")
    msg_id = frame.get("id")
    if not isinstance(msg_id, str) or not msg_id or len(msg_id) > 128:
        raise WireError(f"bad message id {msg_id!r}")
    ttl = frame.get("ttl")
    if not isinstance(ttl, int) or isinstance(ttl, bool) or not (0 <= ttl <= MAX_TTL):
        raise WireError(f"ttl out of range: {ttl!r}")
    src = frame.get("src")
    if not isinstance(src, int) or isinstance(src, bool) or src < 0:
        raise WireError(f"bad source id {src!r}")


class MsgIdSource:
    """Deterministic per-node message-id stream: ``"<src>:<seq>"``."""

    __slots__ = ("_src", "_seq")

    def __init__(self, src: int):
        self._src = int(src)
        self._seq = 0

    def next(self) -> str:
        self._seq += 1
        return f"{self._src}:{self._seq}"


class SeenSet:
    """Bounded message-id dedup set with FIFO eviction.

    ``add`` returns ``True`` for a fresh id (caller should process the
    frame) and ``False`` for a duplicate. Capacity bounds memory against
    hostile id floods; the oldest entries are evicted first, which is the
    correct bias — replays of ancient ids are harmless once their TTL
    window has passed.
    """

    __slots__ = ("_capacity", "_seen")

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise WireError(f"seen-set capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._seen: "OrderedDict[str, None]" = OrderedDict()

    def add(self, msg_id: str) -> bool:
        if msg_id in self._seen:
            return False
        self._seen[msg_id] = None
        while len(self._seen) > self._capacity:
            self._seen.popitem(last=False)
        return True

    def __contains__(self, msg_id: str) -> bool:
        return msg_id in self._seen

    def __len__(self) -> int:
        return len(self._seen)

    @property
    def capacity(self) -> int:
        return self._capacity


def relay_frame(frame: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """The frame to forward for a TTL-bounded flood, or ``None`` to stop.

    Decrements TTL; a frame received at TTL 0 has exhausted its budget.
    """
    ttl = frame.get("ttl", 0)
    if ttl <= 0:
        return None
    relayed = dict(frame)
    relayed["ttl"] = ttl - 1
    return relayed
