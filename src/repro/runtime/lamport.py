"""Lamport logical clocks for the live runtime.

The trace context carried by the wire codec (:mod:`repro.runtime.wire`)
must order events *across* processes without trusting wall clocks — the
swarm runs on one machine today, but the design treats every node as if
its clock could be arbitrarily skewed (the standard SoS assumption).  A
Lamport clock gives exactly the guarantee the flow tracer needs: if
event ``a`` causally precedes event ``b``, then ``L(a) < L(b)``.  The
converse does not hold, which is why per-layer propagation *latencies*
stay round-denominated (see :mod:`repro.obs.flow`) and the Lamport value
is used only for cross-node event ordering.

The clock is purely logical — it never reads the wall clock — but it is
listed as a sanctioned clock site in the deep-lint configuration
(:mod:`repro.lint.taint`) because it is part of the runtime's time
plane and future extensions (hybrid logical clocks) would read one.

Thread-safety matters here: the asyncio receive loop observes remote
clocks on its own daemon thread while the round loop ticks on send.
"""

from __future__ import annotations

import threading

__all__ = ["LamportClock"]


class LamportClock:
    """A thread-safe Lamport logical clock.

    ``tick()`` advances the clock for a local event (a send); call
    ``observe(remote)`` when a message stamped ``remote`` arrives — the
    clock jumps to ``max(local, remote) + 1`` so causality is never
    inverted.  ``read()`` returns the current value without advancing.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"Lamport clock cannot start negative: {start}")
        self._lock = threading.Lock()
        self._value = int(start)

    def read(self) -> int:
        """Current clock value (does not advance)."""
        with self._lock:
            return self._value

    def tick(self) -> int:
        """Advance for a local event; returns the new value."""
        with self._lock:
            self._value += 1
            return self._value

    def observe(self, remote: int) -> int:
        """Merge a remote clock value; returns the new local value."""
        with self._lock:
            self._value = max(self._value, int(remote)) + 1
            return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LamportClock({self.read()})"
