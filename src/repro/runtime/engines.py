"""Canonical Runner subclasses of the historical engine classes.

:func:`repro.runtime.api.make_runner` constructs these; the base classes
(:class:`~repro.sim.engine.Engine`, :class:`~repro.scale.engine.ShardedEngine`)
remain importable and functional but emit a :class:`DeprecationWarning`
when constructed *directly* — the same migration discipline the Instrument
merge used. Subclassing keeps every behaviour byte-identical: these
classes add only the :class:`~repro.runtime.api.Runner` surface (``run``
on the sharded engine, ``close`` on the round engine) and suppress the
warning for factory-built instances.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.scale.engine import ShardedEngine
from repro.sim.engine import Engine


class RoundRunner(Engine):
    """The cycle-driven reference engine behind the Runner API.

    Behaviour is inherited unchanged; ``close`` is a no-op (the in-memory
    engine owns no external resources) so round and sharded runners can be
    driven by the same harness code.
    """

    #: Set by make_runner when the factory deployed the elementary stack;
    #: None when the caller supplied its own network.
    deployment = None

    def close(self) -> None:
        """Release resources (none for the in-memory engine)."""

    def __enter__(self) -> "RoundRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardRunner(ShardedEngine):
    """The BSP scale engine behind the Runner API.

    Adds the ``run``/boolean-``run_round`` surface of
    :class:`~repro.runtime.api.Runner` on top of the sharded engine's
    barrier rounds; the convergence check doubles as the stop verdict.
    """

    def run_round(self) -> bool:
        super().run_round()
        return False

    def run(self, max_rounds: int, stop_when: Optional[object] = None) -> int:
        """Run up to ``max_rounds`` BSP rounds; stop early on convergence.

        ``stop_when`` (network, round) predicates do not apply to the
        sharded model (there is no live Network object); passing one is an
        error rather than a silent ignore.
        """
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be >= 0, got {max_rounds}")
        if stop_when is not None:
            raise SimulationError("ShardRunner does not support stop_when")
        executed = 0
        for _ in range(max_rounds):
            super().run_round()
            executed += 1
            if self.converged():
                break
        return executed
