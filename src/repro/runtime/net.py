"""The live asyncio UDP runtime: one real node of a gossip swarm.

Each :class:`NetRunner` hosts exactly one node of the elementary stack —
the same, unmodified :class:`~repro.gossip.peer_sampling.PeerSampling` and
:class:`~repro.gossip.vicinity.Vicinity` classes the simulator runs — and
speaks the versioned JSON wire codec (:mod:`repro.runtime.wire`) over an
asyncio UDP endpoint. The layers never learn they left the simulator:

- :class:`NetDirectory` duck-types :class:`~repro.sim.network.Network`.
  The local node is real; every remote peer appears as a *facade* node
  whose protocol instances carry only the advertised identity (node id →
  shape coordinate). Reading a facade's ``self_descriptor()`` models the
  piggybacked knowledge a real datagram carries — nothing more.
- :class:`NetTransport` implements the transport seam: ``exchange``
  serializes the request into a ``GOSSIP_REQ`` datagram and blocks (with a
  timeout) on the matching ``GOSSIP_RESP``. A timeout returns ``None`` —
  the outcome every layer already treats as a failed exchange.

Membership is bootstrap-rendezvous: a joining node ``HELLO``\\ s the
rendezvous node, receives a ``PEERS_LIST`` roster, and keeps issuing
``GET_PEERS`` until the roster is complete; the rendezvous floods each
newcomer as a TTL-bounded ``ANNOUNCE`` with bounded fanout and message-id
deduplication. Liveness is ``PING``/``PONG`` on the round ticker: a peer
that stays silent for :data:`LIVENESS_WINDOW` rounds is considered dead
until heard from again.

This module is the *only* wall-clock-driven engine in the repo. Real time
enters through exactly two helpers (:func:`_now`, :func:`_sleep`), each
carrying a reviewed lint pragma; everything else is round-counter logic,
so the deep determinism passes can treat the receive loop as a root
without drowning in clock findings.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from collections import defaultdict

from repro.errors import ConfigurationError, SimulationError, WireError
from repro.gossip.descriptors import Descriptor
from repro.runtime import wire
from repro.runtime.api import OVERLAY_LAYER, PS_LAYER, RunnerConfig
from repro.runtime.lamport import LamportClock
from repro.sim.config import GossipParams
from repro.sim.engine import RoundContext
from repro.sim.node import Node
from repro.sim.rng import RandomStreams
from repro.sim.transport import ExchangeRequest, Transport, TransportDecorator

#: Rounds of silence before a known peer is considered dead.
LIVENESS_WINDOW = 5

#: Fraction of the round interval an exchange may wait for its reply.
REPLY_TIMEOUT_FRACTION = 0.8

#: Seconds between HELLO retries while waiting for the first roster.
HELLO_RETRY_INTERVAL = 0.05

#: Frame types that carry trace context when tracing is enabled — the
#: information-bearing traffic (gossip exchanges and membership floods);
#: liveness and bootstrap frames stay minimal.
TRACED_FRAME_TYPES = frozenset(
    (wire.GOSSIP_REQ, wire.GOSSIP_RESP, wire.ANNOUNCE)
)


def _now() -> float:
    """Wall clock of the live runtime — the module's only clock read."""
    return time.monotonic()  # repro-lint: disable=DET101,DET003


def _sleep(seconds: float) -> None:
    """Wall-clock pacing of the live runtime — the only sleep site."""
    time.sleep(seconds)  # repro-lint: disable=DET101,DET003


def parse_rendezvous(value: str) -> Tuple[str, int]:
    """``"host:port"`` → ``(host, port)``, validated."""
    host, sep, port_text = value.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"rendezvous must be 'host:port', got {value!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(
            f"rendezvous port must be an integer, got {port_text!r}"
        ) from None
    if not 1 <= port <= 65535:
        raise ConfigurationError(f"rendezvous port out of range: {port}")
    return host, port


@dataclass
class PeerInfo:
    """What this node knows about one remote swarm member."""

    node_id: int
    host: str
    port: int
    #: Round counter value when the peer was last heard from.
    last_seen_round: int = 0

    @property
    def addr(self) -> Tuple[str, int]:
        return (self.host, self.port)


class NetDirectory:
    """A :class:`~repro.sim.network.Network` view of one node plus its peers.

    The gossip layers interrogate their network through a narrow surface —
    ``node`` / ``has_node`` / ``is_alive`` / ``alive_ids`` — and this class
    answers it from the membership table the wire protocol maintains.
    Remote nodes are materialized lazily as facade :class:`Node` instances
    (real protocol objects, empty views) so layer-side ``isinstance``
    checks and ``self_descriptor()`` reads behave exactly as in the
    simulator.
    """

    def __init__(self, local: Node, make_facade: Callable[[int], Node]):
        self.local = local
        self._make_facade = make_facade
        self.peers: Dict[int, PeerInfo] = {}
        self._facades: Dict[int, Node] = {}
        self.round = 0

    # -- membership (wire side) ----------------------------------------------

    def add_peer(self, node_id: int, host: str, port: int) -> bool:
        """Record a peer; returns ``True`` when it is news."""
        if node_id == self.local.node_id:
            return False
        known = self.peers.get(node_id)
        if known is not None:
            known.host, known.port = host, port
            known.last_seen_round = self.round
            return False
        self.peers[node_id] = PeerInfo(node_id, host, port, self.round)
        return True

    def touch(self, node_id: int) -> None:
        """Refresh a peer's liveness on any received traffic."""
        peer = self.peers.get(node_id)
        if peer is not None:
            peer.last_seen_round = self.round

    def addr_of(self, node_id: int) -> Optional[Tuple[str, int]]:
        peer = self.peers.get(node_id)
        return peer.addr if peer is not None else None

    def roster(self) -> List[Tuple[int, str, int]]:
        """``(id, host, port)`` rows for every known peer (not self)."""
        return [
            (peer.node_id, peer.host, peer.port)
            for peer in sorted(self.peers.values(), key=lambda p: p.node_id)
        ]

    # -- Network surface (layer side) -----------------------------------------

    def node(self, node_id: int) -> Node:
        if node_id == self.local.node_id:
            return self.local
        if node_id not in self.peers:
            raise SimulationError(f"unknown swarm peer {node_id}")
        facade = self._facades.get(node_id)
        if facade is None:
            facade = self._facades[node_id] = self._make_facade(node_id)
        return facade

    def has_node(self, node_id: int) -> bool:
        return node_id == self.local.node_id or node_id in self.peers

    def is_alive(self, node_id: int) -> bool:
        if node_id == self.local.node_id:
            return True
        peer = self.peers.get(node_id)
        if peer is None:
            return False
        return self.round - peer.last_seen_round <= LIVENESS_WINDOW

    def node_ids(self) -> List[int]:
        return sorted([self.local.node_id, *self.peers])

    def alive_ids(self) -> List[int]:
        return [nid for nid in self.node_ids() if self.is_alive(nid)]

    def alive_nodes(self) -> Iterator[Node]:
        for node_id in self.alive_ids():
            yield self.node(node_id)

    def alive_count(self) -> int:
        return len(self.alive_ids())

    def size(self) -> int:
        return 1 + len(self.peers)

    def __len__(self) -> int:
        return self.size()


class _Pending:
    """One in-flight request awaiting its GOSSIP_RESP."""

    __slots__ = ("event", "payload", "started")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.payload: Any = None
        #: Wall-clock send time, set only when tracing is on (RTT spans).
        self.started: Optional[float] = None


class _DatagramProtocol(asyncio.DatagramProtocol):
    """Thin asyncio shim: hands every datagram to the endpoint."""

    def __init__(self, endpoint: "NetEndpoint"):
        self.endpoint = endpoint

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.endpoint.on_datagram(data, addr)


class NetEndpoint:
    """The node's socket, receive loop, and wire-protocol state machine.

    Owns a dedicated asyncio event loop on a daemon thread; the round
    ticker lives on the caller's thread and talks to the loop only through
    ``call_soon_threadsafe``. Protocol state (views, buckets) is guarded by
    ``step_lock``: the ticker holds it for the active step, the receive
    loop for each passive ``on_request``.
    """

    def __init__(self, runner: "NetRunner"):
        self.runner = runner
        self.directory = runner.directory
        self.step_lock = threading.Lock()
        self.seen = wire.SeenSet()
        self._msg_ids = wire.MsgIdSource(runner.node_id)
        self._id_lock = threading.Lock()
        self._pending: Dict[str, _Pending] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._started = threading.Event()
        # Seeded per-node stream for relay-fanout sampling: deterministic
        # given (seed, node), independent of the layer streams.
        self._relay_rng = runner.streams.stream("relay", runner.node_id)
        # Wire-level accounting (actual datagram traffic, not modelled costs).
        self.datagrams_sent = 0
        self.datagrams_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.malformed = 0
        self.duplicates = 0
        # Per-peer accounting: bytes exchanged with each peer and dropped
        # (timed-out) exchanges per destination. Always on, like the
        # aggregate counters — plain int upserts per datagram.
        self.peer_bytes_sent: Dict[int, int] = defaultdict(int)
        self.peer_bytes_received: Dict[int, int] = defaultdict(int)
        self.peer_drops: Dict[int, int] = defaultdict(int)
        #: Cross-node event ordering — ticks on every send, observes every
        #: received trace field. Purely logical; see runtime.lamport.
        self.lamport = LamportClock()
        self.port = 0

    def next_id(self) -> str:
        """A fresh message id, safe across the ticker and loop threads."""
        with self._id_lock:
            return self._msg_ids.next()

    # -- lifecycle ------------------------------------------------------------

    def start(self, bind_host: str, port: int) -> None:
        self._thread = threading.Thread(
            target=self._run_loop, args=(bind_host, port), daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise SimulationError("UDP endpoint failed to start within 10s")

    def _run_loop(self, bind_host: str, port: int) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop

        async def _open() -> None:
            transport, _ = await loop.create_datagram_endpoint(
                lambda: _DatagramProtocol(self), local_addr=(bind_host, port)
            )
            self._transport = transport
            self.port = transport.get_extra_info("sockname")[1]
            self._started.set()

        try:
            loop.run_until_complete(_open())
            loop.run_forever()
        finally:
            if self._transport is not None:
                self._transport.close()
            loop.close()

    def close(self) -> None:
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._thread = None
        # Wake anything still blocked on a reply.
        for pending in list(self._pending.values()):
            pending.event.set()
        self._pending.clear()

    # -- sending --------------------------------------------------------------

    def _harvest_tags(self, frame: Dict[str, Any]) -> List[Any]:
        """Provenance tags of the descriptors a frame's payload carries."""
        payload = frame.get("payload")
        if not isinstance(payload, list):
            return []
        tags = [
            item.provenance
            for item in payload
            if isinstance(item, Descriptor) and item.provenance is not None
        ]
        return tags[: wire.MAX_TRACE_TAGS]

    def send_frame(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> int:
        """Encode and send; returns the datagram size in bytes."""
        clock = self.lamport.tick()
        if (
            self.runner.obs is not None
            and frame["t"] in TRACED_FRAME_TYPES
            and wire.TRACE_KEY not in frame
        ):
            # Tracing on: attach the trace context without mutating the
            # caller's frame (relayed floods reuse the original dict).
            frame = dict(frame)
            frame[wire.TRACE_KEY] = wire.make_trace(
                clock, self._harvest_tags(frame)
            )
        data = wire.encode(frame)
        loop = self._loop
        if loop is None or not loop.is_running():
            return 0

        def _send() -> None:
            if self._transport is not None:
                self._transport.sendto(data, addr)

        loop.call_soon_threadsafe(_send)
        self.datagrams_sent += 1
        self.bytes_sent += len(data)
        return len(data)

    def send_to_peer(self, node_id: int, frame: Dict[str, Any]) -> bool:
        addr = self.directory.addr_of(node_id)
        if addr is None:
            return False
        self.peer_bytes_sent[node_id] += self.send_frame(frame, addr)
        return True

    def request(
        self, dst: int, frame: Dict[str, Any], timeout: float
    ) -> Optional[Any]:
        """Send ``frame`` to ``dst`` and wait for its GOSSIP_RESP payload."""
        obs = self.runner.obs
        pending = _Pending()
        if obs is not None:
            pending.started = _now()
        self._pending[frame["id"]] = pending
        try:
            if not self.send_to_peer(dst, frame):
                return None
            if not pending.event.wait(timeout=timeout):
                self.peer_drops[dst] += 1
                if obs is not None:
                    obs.count("exchange_timeouts", layer=self._frame_layer(frame))
                return None
            if obs is not None and pending.started is not None:
                obs.histogram(
                    "gossip_rtt",
                    _now() - pending.started,
                    layer=self._frame_layer(frame),
                )
            return pending.payload
        finally:
            self._pending.pop(frame["id"], None)

    @staticmethod
    def _frame_layer(frame: Dict[str, Any]) -> str:
        layer = frame.get("layer")
        return layer if isinstance(layer, str) else ""

    # -- receiving (loop thread) ----------------------------------------------

    def on_datagram(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.datagrams_received += 1
        self.bytes_received += len(data)
        try:
            frame = wire.decode(data)
        except WireError:
            # Hostile or version-skewed input: counted, never fatal.
            self.malformed += 1
            return
        self.peer_bytes_received[frame["src"]] += len(data)
        if not self.seen.add(frame["id"]):
            self.duplicates += 1
            return
        self.directory.touch(frame["src"])
        trace = frame.get(wire.TRACE_KEY)
        if trace is not None:
            self.lamport.observe(trace["lc"])
            obs = self.runner.obs
            if obs is not None:
                obs.count("trace_frames", layer=self._frame_layer(frame))
        if frame["t"] == wire.GOSSIP_REQ:
            # Passive exchanges contend on the step lock, and the active
            # step may be blocked right now waiting for *its* reply on this
            # very thread — handle requests on an executor thread so the
            # receive loop always stays free to resolve GOSSIP_RESP frames.
            loop = self._loop
            if loop is not None:
                loop.run_in_executor(None, self._handle_frame, frame, addr)
            return
        self._handle_frame(frame, addr)

    def _handle_frame(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> None:
        handler = self._HANDLERS.get(frame["t"])
        if handler is not None:
            try:
                handler(self, frame, addr)
            except (WireError, SimulationError, KeyError, TypeError, ValueError):
                # A structurally valid frame with hostile field contents
                # (e.g. a GOSSIP_REQ for a layer we do not run) must not
                # kill the receive loop.
                self.malformed += 1

    def _on_hello(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> None:
        node_id = frame["src"]
        host = frame.get("host", addr[0])
        port = frame.get("port", addr[1])
        if not isinstance(host, str) or not isinstance(port, int):
            raise WireError("malformed HELLO address")
        fresh = self.directory.add_peer(node_id, host, port)
        self.send_frame(self._peers_list_frame(), (host, port))
        if fresh:
            self._flood_announce(node_id, host, port, exclude=node_id)

    def _on_get_peers(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> None:
        self.send_frame(self._peers_list_frame(), addr)

    def _on_peers_list(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> None:
        rows = frame.get("peers", [])
        if not isinstance(rows, list):
            raise WireError("malformed PEERS_LIST")
        for row in rows:
            node_id, host, port = row
            if not isinstance(node_id, int) or not isinstance(host, str):
                raise WireError("malformed PEERS_LIST row")
            self.directory.add_peer(node_id, host, int(port))

    def _on_ping(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> None:
        self.send_frame(
            wire.make_frame(wire.PONG, self.runner.node_id, self.next_id()),
            addr,
        )

    def _on_pong(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> None:
        pass  # liveness already refreshed by the common touch() above

    def _on_announce(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> None:
        node_id, host, port = frame["node"], frame["host"], frame["port"]
        if not isinstance(node_id, int) or not isinstance(host, str):
            raise WireError("malformed ANNOUNCE")
        self.directory.add_peer(node_id, host, int(port))
        obs = self.runner.obs
        if obs is not None:
            # How far this flood travelled: the swarm shares one config,
            # so the TTL budget spent is the relay hop count.
            hops = self.runner.config.ttl - frame["ttl"]
            if 0 <= hops <= wire.MAX_TTL:
                obs.histogram("announce_hops", hops)
        relayed = wire.relay_frame(frame)
        if relayed is not None:
            self._relay(relayed, exclude=node_id)

    def _on_gossip_req(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> None:
        request = ExchangeRequest(
            layer=frame["layer"],
            sender=frame["src"],
            payload=frame["payload"],
            profile=frame.get("profile"),
        )
        local = self.directory.local
        if not local.has_protocol(request.layer):
            raise WireError(f"GOSSIP_REQ for unknown layer {request.layer!r}")
        with self.step_lock:
            ctx = self.runner.make_context()
            reply = local.protocol(request.layer).on_request(ctx, request)
        self.send_frame(
            wire.make_frame(
                wire.GOSSIP_RESP,
                self.runner.node_id,
                self.next_id(),
                re=frame["id"],
                layer=request.layer,
                payload=reply,
            ),
            addr,
        )

    def _on_gossip_resp(self, frame: Dict[str, Any], addr: Tuple[str, int]) -> None:
        pending = self._pending.get(frame.get("re"))
        if pending is not None:
            pending.payload = frame.get("payload")
            pending.event.set()

    _HANDLERS: Dict[str, Callable[..., None]] = {
        wire.HELLO: _on_hello,
        wire.GET_PEERS: _on_get_peers,
        wire.PEERS_LIST: _on_peers_list,
        wire.PING: _on_ping,
        wire.PONG: _on_pong,
        wire.ANNOUNCE: _on_announce,
        wire.GOSSIP_REQ: _on_gossip_req,
        wire.GOSSIP_RESP: _on_gossip_resp,
    }

    # -- membership helpers ----------------------------------------------------

    def _peers_list_frame(self) -> Dict[str, Any]:
        rows = [list(row) for row in self.directory.roster()]
        rows.append([self.runner.node_id, self.runner.bind_host, self.port])
        return wire.make_frame(
            wire.PEERS_LIST, self.runner.node_id, self.next_id(), peers=rows
        )

    def _flood_announce(
        self, node_id: int, host: str, port: int, exclude: int
    ) -> None:
        frame = wire.make_frame(
            wire.ANNOUNCE,
            self.runner.node_id,
            self.next_id(),
            ttl=self.runner.config.ttl,
            node=node_id,
            host=host,
            port=port,
        )
        self.seen.add(frame["id"])  # never re-process our own flood
        self._relay(frame, exclude=exclude)

    def _relay(self, frame: Dict[str, Any], exclude: int) -> None:
        targets = [
            nid
            for nid in self.directory.peers
            if nid != exclude and nid != frame["src"]
        ]
        fanout = self.runner.config.fanout
        if len(targets) > fanout:
            targets = self._relay_rng.sample(targets, fanout)
        for nid in targets:
            self.send_to_peer(nid, frame)

    def wire_stats(self) -> Dict[str, int]:
        return {
            "datagrams_sent": self.datagrams_sent,
            "datagrams_received": self.datagrams_received,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "malformed": self.malformed,
            "duplicates": self.duplicates,
        }

    def peer_stats(self) -> Dict[str, Dict[int, int]]:
        """Per-peer byte and drop counters (keys are peer node ids)."""
        return {
            "bytes_sent": dict(self.peer_bytes_sent),
            "bytes_received": dict(self.peer_bytes_received),
            "drops": dict(self.peer_drops),
        }


class NetTransport(TransportDecorator):
    """The transport seam over real datagrams.

    ``deliverable`` answers from the liveness table (an unreachable peer is
    simply not exchanged with — no RNG, no fault plane); ``exchange``
    serializes through the wire codec and blocks on the reply with a
    timeout, returning ``None`` on silence — the layer-visible signature of
    a real-network timeout. Modelled-cost accounting (``record_exchange``)
    still lands on the wrapped in-memory ledger so per-layer byte series
    stay comparable with simulator runs.
    """

    def __init__(self, inner: Transport, endpoint: NetEndpoint, timeout: float):
        super().__init__(inner)
        self.endpoint = endpoint
        self.timeout = timeout

    def deliverable(self, ctx: RoundContext, dst: int, layer: str = "") -> bool:
        return self.endpoint.directory.is_alive(dst)

    def reachable(self, ctx: RoundContext, dst: int) -> bool:
        return self.endpoint.directory.is_alive(dst)

    def exchange(
        self, ctx: RoundContext, dst: int, request: ExchangeRequest
    ) -> Optional[Any]:
        frame = wire.make_frame(
            wire.GOSSIP_REQ,
            request.sender,
            self.endpoint.next_id(),
            layer=request.layer,
            payload=request.payload,
            profile=request.profile,
        )
        return self.endpoint.request(dst, frame, timeout=self.timeout)


class NetRunner:
    """One swarm node satisfying the :class:`~repro.runtime.api.Runner` protocol.

    ``run_round`` performs one active gossip round (steps both layers under
    the endpoint's lock, sweeps liveness, pings peers); ``run`` paces
    rounds on the wall-clock ticker. The optional :attr:`on_round` callback
    fires after every round with ``(runner, round_index)`` and may return
    ``True`` to stop — the swarm harness uses it to publish status files
    and to honour the stop flag.
    """

    def __init__(self, config: RunnerConfig):
        from repro.gossip.peer_sampling import PeerSampling
        from repro.gossip.selection import Proximity
        from repro.gossip.vicinity import Vicinity
        from repro.shapes import make_shape

        self.config = config
        self.node_id = config.node_index
        self.bind_host = config.bind_host
        self.shape = make_shape(config.shape)
        self.streams = RandomStreams(config.seed)
        n = config.n_nodes
        params = config.gossip
        self._proximity = Proximity(self.shape.metric(n))
        view_size = self.shape.view_size(n, params.view_size)
        self._sized = GossipParams(
            view_size=view_size,
            gossip_size=min(params.gossip_size, view_size + 1),
            healer=params.healer,
            swapper=params.swapper,
            backend=params.backend,
        )
        self._params = params
        self._vicinity_cls = Vicinity
        self._ps_cls = PeerSampling
        self.node = self._build_node(self.node_id)
        self.directory = NetDirectory(
            self.node, self._build_node
        )
        self.endpoint = NetEndpoint(self)
        self.transport = NetTransport(
            Transport(config.costs),
            self.endpoint,
            timeout=REPLY_TIMEOUT_FRACTION * config.round_interval,
        )
        self.round = 0
        self.on_round: Optional[Callable[["NetRunner", int], Optional[bool]]] = None
        #: Optional telemetry sink (:class:`~repro.obs.instrument.Instrument`).
        #: ``None`` disables all tracing: no trace field on the wire, no RTT
        #: timing, no flow tags — the zero-interference discipline of the
        #: in-process engines, applied to the live runtime.
        self.obs: Optional[Any] = None
        self._closed = False
        self._started = False

    def _build_node(self, node_id: int) -> Node:
        """The real local node, or an identity facade for a remote peer.

        A facade carries the same protocol classes with the peer's derived
        profile (swarm identity == shape rank) and an empty view: exactly
        the knowledge a wire advertisement justifies, and enough for the
        layers' ``self_descriptor()`` reads and ``isinstance`` checks.
        """
        n = self.config.n_nodes
        node = Node(node_id)
        node.attach(PS_LAYER, self._ps_cls(node_id, self._params, layer=PS_LAYER))
        node.attach(
            OVERLAY_LAYER,
            self._vicinity_cls(
                node_id,
                profile=self.shape.coordinate(node_id, n),
                proximity=self._proximity,
                params=self._sized,
                layer=OVERLAY_LAYER,
                random_layer=PS_LAYER,
                target_degree=max(1, self.shape.rank_degree(node_id, n)),
            ),
        )
        return node

    # -- context --------------------------------------------------------------

    def make_context(self) -> RoundContext:
        return RoundContext(
            node=self.node,
            network=self.directory,
            transport=self.transport,
            streams=self.streams,
            round=self.round,
            obs=self.obs,
        )

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Bind the socket and join the swarm (idempotent)."""
        if self._started:
            return
        self.endpoint.start(self.bind_host, self.config.port)
        self._started = True
        if self.config.rendezvous:
            self._join(parse_rendezvous(self.config.rendezvous))

    def _join(self, rendezvous: Tuple[str, int]) -> None:
        """HELLO the rendezvous until at least one peer is known."""
        deadline = _now() + 30.0
        while not self.directory.peers:
            self.endpoint.send_frame(self._hello_frame(), rendezvous)
            _sleep(HELLO_RETRY_INTERVAL)
            if _now() > deadline:
                raise SimulationError(
                    f"node {self.node_id}: no rendezvous response within 30s"
                )

    def _hello_frame(self) -> Dict[str, Any]:
        return wire.make_frame(
            wire.HELLO,
            self.node_id,
            self.endpoint.next_id(),
            host=self.bind_host,
            port=self.endpoint.port,
        )

    @property
    def port(self) -> int:
        """The actually-bound UDP port (after :meth:`start`)."""
        return self.endpoint.port

    # -- execution ------------------------------------------------------------

    def run_round(self) -> bool:
        """One active gossip round; returns ``True`` to request a stop."""
        self.start()
        obs = self.obs
        if obs is not None:
            obs.span_begin("round")
        self.directory.round = self.round
        self.transport.begin_round(self.round)
        # Keep chasing the full roster until everyone is known.
        if (
            self.config.rendezvous
            and len(self.directory.peers) < self.config.n_nodes - 1
        ):
            self.endpoint.send_frame(
                wire.make_frame(
                    wire.GET_PEERS, self.node_id, self.endpoint.next_id()
                ),
                parse_rendezvous(self.config.rendezvous),
            )
        with self.endpoint.step_lock:
            ctx = self.make_context()
            for layer, protocol in self.node.stack():
                ctx.layer = layer
                protocol.step(ctx)
        for peer in self.directory.roster():
            self.endpoint.send_to_peer(
                peer[0],
                wire.make_frame(
                    wire.PING, self.node_id, self.endpoint.next_id()
                ),
            )
        self.round += 1
        if obs is not None:
            # Cumulative wire-plane gauges: cheap int reads, refreshed per
            # round so the /metrics endpoint tracks live traffic.
            stats = self.endpoint.wire_stats()
            obs.gauge("wire_bytes_sent", stats["bytes_sent"])
            obs.gauge("wire_bytes_received", stats["bytes_received"])
            obs.gauge("wire_datagrams_sent", stats["datagrams_sent"])
            obs.gauge("wire_malformed", stats["malformed"])
            obs.gauge("peers_known", len(self.directory.peers))
            obs.gauge("lamport_clock", self.endpoint.lamport.read())
            obs.span_end("round")
        stop = False
        if self.on_round is not None:
            stop = bool(self.on_round(self, self.round - 1))
        return stop

    def run(self, max_rounds: int) -> int:
        """Run up to ``max_rounds`` wall-clock-paced rounds."""
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be >= 0, got {max_rounds}")
        self.start()
        # De-synchronize the tickers: nodes stepping in phase would all
        # contend for each other's step locks at the same instant and
        # time out in lockstep.
        _sleep(self.config.round_interval * self.node_id / max(1, self.config.n_nodes))
        executed = 0
        for _ in range(max_rounds):
            began = _now()
            stop = self.run_round()
            executed += 1
            if stop:
                break
            remaining = self.config.round_interval - (_now() - began)
            if remaining > 0:
                _sleep(remaining)
        return executed

    # -- introspection ---------------------------------------------------------

    def neighbors(self) -> List[int]:
        """Current overlay neighbours of the local node."""
        return self.node.protocol(OVERLAY_LAYER).neighbors()

    def wire_stats(self) -> Dict[str, int]:
        return self.endpoint.wire_stats()

    def peer_stats(self) -> Dict[str, Dict[int, int]]:
        return self.endpoint.peer_stats()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.endpoint.close()

    def __enter__(self) -> "NetRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
