"""The loopback runner's transport: every exchange through the wire codec.

:class:`LoopbackTransport` is the deterministic in-memory twin of the UDP
runtime. It routes exchanges exactly like the sim transport — same partner
dispatch, same accounting ledger — but first serializes the request and the
reply through :mod:`repro.runtime.wire` (encode → bytes → decode), so every
payload a layer sends experiences the full codec round-trip a real datagram
would. Because the round schedule and the RNG streams are untouched, a
loopback run must produce a **byte-identical overlay digest** to the plain
round engine for the same config — the digest gate in
``tests/runtime/test_loopback.py``. Any codec lossiness (a tuple collapsed
to a list, a descriptor field dropped, provenance corrupted) surfaces there
as a digest mismatch instead of a subtle overlay deformity in a live swarm.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.runtime import wire
from repro.sim.transport import ExchangeRequest, Transport, TransportDecorator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import RoundContext


class LoopbackTransport(TransportDecorator):
    """Wire-codec round-trip on every exchange, in memory, deterministic.

    Wraps the accounting :class:`~repro.sim.transport.Transport`; the
    ``deliverable`` gate and all ledgers pass straight through, so fault
    planes and byte series behave exactly as on the round engine. The
    transport also keeps its own wire-level counters (frames and datagram
    bytes actually serialized) — the honest size of the traffic a UDP swarm
    would emit, as opposed to the ledger's modelled costs.
    """

    def __init__(self, inner: Transport):
        super().__init__(inner)
        self._ids: Dict[int, wire.MsgIdSource] = {}
        self.wire_frames = 0
        self.wire_bytes = 0

    def _msg_id(self, src: int) -> str:
        source = self._ids.get(src)
        if source is None:
            source = self._ids[src] = wire.MsgIdSource(src)
        return source.next()

    def _roundtrip(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        data = wire.encode(frame)
        self.wire_frames += 1
        self.wire_bytes += len(data)
        return wire.decode(data)

    def exchange(
        self, ctx: "RoundContext", dst: int, request: ExchangeRequest
    ) -> Optional[Any]:
        req_frame = self._roundtrip(
            wire.make_frame(
                wire.GOSSIP_REQ,
                src=request.sender,
                msg_id=self._msg_id(request.sender),
                layer=request.layer,
                payload=request.payload,
                profile=request.profile,
            )
        )
        decoded = ExchangeRequest(
            layer=req_frame["layer"],
            sender=req_frame["src"],
            payload=req_frame["payload"],
            profile=req_frame["profile"],
        )
        reply = self.inner.exchange(ctx, dst, decoded)
        if reply is None:
            return None
        resp_frame = self._roundtrip(
            wire.make_frame(
                wire.GOSSIP_RESP,
                src=dst,
                msg_id=self._msg_id(dst),
                layer=request.layer,
                payload=reply,
            )
        )
        return resp_frame["payload"]
