"""The swarm harness: N real UDP node processes under one supervisor.

``run_swarm`` launches ``n_nodes`` local processes, each running one
:class:`~repro.runtime.net.NetRunner` (``python -m repro.runtime.swarm
--node ...``), wires node 0 as the bootstrap rendezvous, and supervises
the run through *status files*: every child atomically rewrites
``status_dir/node-<i>.json`` after each round with its overlay
neighbourhood and wire-level traffic counters. The supervisor polls the
directory, assembles the swarm-wide adjacency, and feeds the same
:class:`~repro.obs.collector.Collector` + :class:`~repro.obs.health.HealthMonitor`
pair the simulator uses — so ``repro watch --swarm`` renders a live swarm
with the exact dashboard, alert rules, and Prometheus exporter that watch
simulated runs. Convergence is declared by the shape's own
:meth:`~repro.shapes.base.Shape.converged` test, after which a ``STOP``
flag file winds the children down cleanly.

The supervisor process is wall-clock-driven by nature (it paces polls and
enforces deadlines); like :mod:`repro.runtime.net` it confines clock reads
to :func:`~repro.runtime.net._now` / :func:`~repro.runtime.net._sleep`.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import socket
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.runtime.net import _now, _sleep
from repro.shapes import make_shape

#: Name of the wind-down flag file inside the status directory.
STOP_FLAG = "STOP"

#: The two layers every swarm node runs (peer sampling + overlay).
SWARM_LAYERS = 2

#: Seconds of status-file silence before a child is presumed crashed.
CHILD_STALL_TIMEOUT = 15.0


def _free_udp_ports(n: int, host: str = "127.0.0.1") -> List[int]:
    """``n`` distinct currently-free UDP ports on ``host``.

    The classic bind-to-zero trick: hold all sockets open until every port
    is allocated so the OS cannot hand out duplicates, then release them
    for the children. A child racing an unrelated process for the port is
    possible but harmless — the bind fails fast and the supervisor reports
    the dead child.
    """
    sockets = []
    try:
        for _ in range(n):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _status_path(status_dir: pathlib.Path, node_index: int) -> pathlib.Path:
    return status_dir / f"node-{node_index}.json"


def _write_status(path: pathlib.Path, payload: Dict[str, Any]) -> None:
    """Atomic rewrite (tmp + rename) so the supervisor never reads a torn file."""
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def read_statuses(status_dir: pathlib.Path) -> Dict[int, Dict[str, Any]]:
    """Latest per-node status records, skipping torn/missing files."""
    statuses: Dict[int, Dict[str, Any]] = {}
    for path in sorted(status_dir.glob("node-*.json")):
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            continue  # mid-rename or not yet written
        node = record.get("node")
        if isinstance(node, int):
            statuses[node] = record
    return statuses


def swarm_adjacency(statuses: Dict[int, Dict[str, Any]]) -> Dict[int, List[int]]:
    """Overlay adjacency (rank -> neighbour ranks) from status records."""
    return {
        node: list(record.get("neighbors", ())) for node, record in statuses.items()
    }


# ---------------------------------------------------------------------------
# Child process: one UDP node publishing status after every round.
# ---------------------------------------------------------------------------


def _swarm_node(argv: Optional[List[str]] = None) -> int:
    """Entry point of one swarm node process (deep-lint root).

    Builds the ``net`` runner from CLI arguments, then publishes a status
    file after every round until the supervisor raises the STOP flag or
    ``max_rounds`` elapse.
    """
    from repro.runtime.api import RunnerConfig, make_runner

    parser = argparse.ArgumentParser(prog="repro.runtime.swarm --node")
    parser.add_argument("--node-index", type=int, required=True)
    parser.add_argument("--n-nodes", type=int, required=True)
    parser.add_argument("--shape", default="ring")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--rendezvous", default="")
    parser.add_argument("--round-interval", type=float, default=0.2)
    parser.add_argument("--max-rounds", type=int, default=120)
    parser.add_argument("--status-dir", required=True)
    args = parser.parse_args(argv)

    from repro.obs.collector import Collector
    from repro.obs.flow import FlowTracer
    from repro.runtime.telemetry import MetricsServer, TelemetryStream

    status_dir = pathlib.Path(args.status_dir)
    status_path = _status_path(status_dir, args.node_index)
    stop_flag = status_dir / STOP_FLAG
    config = RunnerConfig(
        kind="net",
        n_nodes=args.n_nodes,
        shape=args.shape,
        seed=args.seed,
        node_index=args.node_index,
        port=args.port,
        rendezvous=args.rendezvous,
        round_interval=args.round_interval,
        max_rounds=args.max_rounds,
    )
    runner = make_runner(config)
    # The swarm is the observed deployment: every node traces (flow tags,
    # RTT histograms, Lamport clock), serves a local /metrics endpoint,
    # and streams its events incrementally to node-<i>.jsonl.
    collector = Collector(gauge_every=0, flow=FlowTracer())
    collector.bind_round_source(lambda: runner.round)
    runner.obs = collector
    server = MetricsServer(collector)
    server.start()
    stream = TelemetryStream(str(status_dir / f"node-{args.node_index}.jsonl"))

    def publish(done: bool) -> None:
        _write_status(
            status_path,
            {
                "node": runner.node_id,
                "round": runner.round,
                "port": runner.port,
                "neighbors": sorted(runner.neighbors()),
                "peers_known": len(runner.directory.peers),
                "alive": runner.directory.alive_count(),
                "wire": runner.wire_stats(),
                "peer": runner.peer_stats(),
                "metrics_port": server.port,
                "lamport": runner.endpoint.lamport.read(),
                "flow": collector.flow.to_state(),
                "rtt": {
                    layer: histogram.to_dict()
                    for (name, layer), histogram in collector.histograms.items()
                    if name == "gossip_rtt"
                },
                "hops": (
                    hops.to_dict()
                    if (hops := collector.histogram_of("announce_hops"))
                    is not None
                    else None
                ),
                "done": done,
            },
        )

    def on_round(_runner: Any, round_index: int) -> bool:
        wire_stats = runner.wire_stats()
        collector.emit(
            "node_round",
            node=runner.node_id,
            round=round_index,
            peers_known=len(runner.directory.peers),
            neighbors=len(runner.neighbors()),
            bytes_sent=wire_stats["bytes_sent"],
            bytes_received=wire_stats["bytes_received"],
            lamport=runner.endpoint.lamport.read(),
        )
        publish(done=False)
        stream.flush(collector)
        return stop_flag.exists()

    runner.on_round = on_round
    collector.emit("node_up", node=args.node_index)
    try:
        runner.run(args.max_rounds)
        publish(done=True)
        stream.flush(collector)
    finally:
        server.close()
        runner.close()
    return 0


# ---------------------------------------------------------------------------
# Supervisor: spawn, observe, verdict.
# ---------------------------------------------------------------------------


@dataclass
class SwarmReport:
    """What one supervised swarm run produced."""

    n_nodes: int
    shape: str
    seed: int
    round_interval: float
    converged: bool
    rounds: int
    verdict: str
    alerts: List[Dict[str, Any]] = field(default_factory=list)
    #: Final per-node status records (wire counters, neighbourhoods).
    nodes: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    status_dir: str = ""
    #: Cross-node flow report: merged FlowTracer summary (per-layer
    #: propagation latencies, flow-graph size, critical path), or ``None``
    #: when no node published flow state.
    flow: Optional[Dict[str, Any]] = None
    #: Swarm-wide gossip RTT summary per layer (merged histograms).
    rtt: Dict[str, Any] = field(default_factory=dict)

    def bandwidth(self) -> Dict[str, int]:
        """Swarm-wide datagram totals summed over the final statuses."""
        totals = {
            "datagrams_sent": 0,
            "datagrams_received": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
            "malformed": 0,
            "duplicates": 0,
        }
        for record in self.nodes.values():
            for key in totals:
                totals[key] += int(record.get("wire", {}).get(key, 0))
        return totals

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_nodes": self.n_nodes,
            "shape": self.shape,
            "seed": self.seed,
            "round_interval": self.round_interval,
            "converged": self.converged,
            "rounds": self.rounds,
            "verdict": self.verdict,
            "alerts": list(self.alerts),
            "bandwidth": self.bandwidth(),
            "flow": self.flow,
            "rtt": dict(self.rtt),
            "nodes": {
                str(node): {
                    "round": record.get("round", 0),
                    "neighbors": list(record.get("neighbors", ())),
                    "wire": dict(record.get("wire", {})),
                    "metrics_port": record.get("metrics_port", 0),
                    "lamport": record.get("lamport", 0),
                }
                for node, record in sorted(self.nodes.items())
            },
        }


def feed_collector(
    collector: Any,
    statuses: Dict[int, Dict[str, Any]],
    shape: Any,
    n_nodes: int,
) -> bool:
    """Refresh the collector's gauges from the latest statuses.

    Returns whether the shape's convergence criterion holds. The
    ``layers_converged`` gauge is scaled to the swarm's two-layer stack by
    the fraction of target edges realized, so
    :class:`~repro.obs.health.StalledConvergence` sees monotone progress
    while the overlay forms and only trips on a genuine stall.
    """
    adjacency = swarm_adjacency(statuses)
    total_edges = sum(
        len(shape.target_neighbors(rank, n_nodes)) for rank in range(n_nodes)
    )
    missing = len(shape.missing_edges(adjacency, n_nodes)) if total_edges else 0
    satisfied = (total_edges - missing) / total_edges if total_edges else 1.0
    converged = len(statuses) == n_nodes and shape.converged(adjacency, n_nodes)
    collector.gauge("layers_converged", SWARM_LAYERS * satisfied)
    degrees = [len(record.get("neighbors", ())) for record in statuses.values()]
    if degrees:
        collector.gauge(
            "out_degree_mean", sum(degrees) / len(degrees), layer="overlay"
        )
        collector.gauge("out_degree_max", float(max(degrees)), layer="overlay")
    collector.gauge("swarm_nodes_reporting", float(len(statuses)))
    merge_telemetry(collector, statuses)
    return converged


def merge_telemetry(
    collector: Any, statuses: Dict[int, Dict[str, Any]]
) -> None:
    """Merge per-node flow state and wire histograms into the collector.

    Each node publishes its own :class:`~repro.obs.flow.FlowTracer` dump
    and RTT/hop histograms; the supervisor rebuilds the swarm-wide view on
    every poll (statuses are cumulative, so rebuild-from-scratch is the
    merge that cannot double-count).
    """
    from repro.obs.collector import Histogram
    from repro.obs.flow import merge_flow_states

    flow_states = [record.get("flow") for record in statuses.values()]
    if any(flow_states):
        try:
            collector.flow = merge_flow_states(flow_states)
        except (KeyError, TypeError, ValueError):
            pass  # a malformed dump degrades to no flow report, not a crash

    def _merged_histograms(key: str) -> Dict[str, Histogram]:
        merged: Dict[str, Histogram] = {}
        for record in statuses.values():
            data = record.get(key)
            if key == "hops":
                data = {"": data} if data else {}
            for layer, dump in (data or {}).items():
                try:
                    existing = merged.get(layer)
                    if existing is None:
                        merged[layer] = Histogram.from_dict(dump)
                    else:
                        existing.merge_dict(dump)
                except (AttributeError, KeyError, TypeError, ValueError):
                    continue  # skip one node's bad dump, keep the rest
        return merged

    for layer, histogram in _merged_histograms("rtt").items():
        collector.histograms[("gossip_rtt", layer)] = histogram
    for layer, histogram in _merged_histograms("hops").items():
        collector.histograms[("announce_hops", layer)] = histogram


def run_swarm(
    n_nodes: int = 8,
    shape: str = "ring",
    seed: int = 1,
    round_interval: float = 0.2,
    max_rounds: int = 120,
    status_dir: Optional[str] = None,
    progress: Optional[Callable[[int, Dict[int, Dict[str, Any]], str], None]] = None,
) -> Tuple[SwarmReport, Any]:
    """Launch and supervise a local UDP swarm; returns (report, collector).

    ``progress``, when given, is invoked after every supervisor poll with
    ``(poll_round, statuses, verdict)`` — the hook ``repro watch --swarm``
    renders from. The collector is returned alongside the report so
    callers can export the telemetry (Prometheus snapshot, JSONL stream).
    """
    from repro.obs.collector import Collector
    from repro.obs.health import HealthMonitor

    if n_nodes < 2:
        raise SimulationError(f"a swarm needs >= 2 nodes, got {n_nodes}")
    shape_obj = make_shape(shape)
    directory = pathlib.Path(status_dir) if status_dir else None
    if directory is None:
        import tempfile

        directory = pathlib.Path(tempfile.mkdtemp(prefix="repro-swarm-"))
    directory.mkdir(parents=True, exist_ok=True)
    stop_flag = directory / STOP_FLAG
    if stop_flag.exists():
        stop_flag.unlink()
    # Swarm metadata: lets `repro watch --swarm DIR` attach without being
    # told the shape or size.
    _write_status(
        directory / "swarm.json",
        {
            "n_nodes": n_nodes,
            "shape": shape,
            "seed": seed,
            "round_interval": round_interval,
            "max_rounds": max_rounds,
        },
    )

    ports = _free_udp_ports(n_nodes)
    rendezvous = f"127.0.0.1:{ports[0]}"
    package_root = str(pathlib.Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [package_root, env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)

    children: List[subprocess.Popen] = []
    collector = Collector(gauge_every=1)
    monitor = HealthMonitor(collector, expected_layers=SWARM_LAYERS)
    converged = False
    statuses: Dict[int, Dict[str, Any]] = {}
    poll_round = 0
    try:
        for index in range(n_nodes):
            command = [
                sys.executable,
                "-m",
                "repro.runtime.swarm",
                "--node",
                "--node-index",
                str(index),
                "--n-nodes",
                str(n_nodes),
                "--shape",
                shape,
                "--seed",
                str(seed),
                "--port",
                str(ports[index]),
                "--rendezvous",
                "" if index == 0 else rendezvous,
                "--round-interval",
                str(round_interval),
                "--max-rounds",
                str(max_rounds),
                "--status-dir",
                str(directory),
            ]
            children.append(
                subprocess.Popen(
                    command,
                    env=env,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.PIPE,
                )
            )

        deadline = _now() + max_rounds * round_interval + 30.0
        last_progress = _now()
        max_seen_round = 0
        max_seen_nodes = 0
        observed_round = -1
        while _now() < deadline:
            _sleep(round_interval / 2)
            statuses = read_statuses(directory)
            seen_round = max(
                (record.get("round", 0) for record in statuses.values()), default=0
            )
            if seen_round > max_seen_round or len(statuses) > max_seen_nodes:
                last_progress = _now()
            max_seen_round = max(max_seen_round, seen_round)
            max_seen_nodes = max(max_seen_nodes, len(statuses))
            converged = feed_collector(collector, statuses, shape_obj, n_nodes)
            # One health observation per *swarm* round (not per poll), and
            # none before the children start reporting — process startup is
            # not a health signal, and the alert windows keep their
            # rounds-denominated meaning.
            if statuses and seen_round > observed_round:
                observed_round = seen_round
                monitor.observe(None, seen_round)
            if progress is not None:
                progress(poll_round, statuses, monitor.verdict())
            poll_round += 1
            dead = [
                (index, child)
                for index, child in enumerate(children)
                if child.poll() not in (None, 0)
            ]
            if dead:
                index, child = dead[0]
                stderr = (child.stderr.read() if child.stderr else b"").decode(
                    "utf-8", "replace"
                )
                raise SimulationError(
                    f"swarm node {index} died (exit {child.returncode}): "
                    f"{stderr.strip()[-500:]}"
                )
            if converged:
                break
            if all(record.get("done") for record in statuses.values()) and (
                len(statuses) == n_nodes
            ):
                break  # every child exhausted max_rounds without converging
            if _now() - last_progress > CHILD_STALL_TIMEOUT:
                raise SimulationError(
                    f"swarm made no progress for {CHILD_STALL_TIMEOUT:.0f}s "
                    f"({len(statuses)}/{n_nodes} nodes reporting, "
                    f"round {max_seen_round})"
                )
    finally:
        stop_flag.touch()
        grace = _now() + max(2.0, 4 * round_interval)
        for child in children:
            while child.poll() is None and _now() < grace:
                _sleep(0.05)
            if child.poll() is None:
                child.terminate()
            try:
                child.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                child.kill()
                child.wait()
            if child.stderr:
                child.stderr.close()

    statuses = read_statuses(directory)
    # Refresh the gauges from the final statuses, but keep the loop's
    # convergence verdict: the overlay may churn an edge during the last
    # wind-down rounds, and "the swarm reached the target shape" is the
    # claim being made. (A final snapshot can still upgrade it.)
    converged = feed_collector(collector, statuses, shape_obj, n_nodes) or converged
    rtt_summary = {
        layer: {
            "count": histogram.count,
            "mean_seconds": histogram.mean(),
            "p95_seconds": histogram.percentile(0.95),
            "max_seconds": histogram.vmax,
        }
        for (name, layer), histogram in sorted(collector.histograms.items())
        if name == "gossip_rtt" and histogram.count
    }
    report = SwarmReport(
        n_nodes=n_nodes,
        shape=shape,
        seed=seed,
        round_interval=round_interval,
        converged=converged,
        rounds=max(
            (record.get("round", 0) for record in statuses.values()), default=0
        ),
        verdict=monitor.verdict(),
        alerts=[alert.to_dict() for alert in monitor.alerts],
        nodes=statuses,
        status_dir=str(directory),
        flow=collector.flow.summary() if collector.flow is not None else None,
        rtt=rtt_summary,
    )
    return report, collector


def merge_node_events(status_dir: str) -> List[Any]:
    """One merged event stream from every ``node-*.jsonl`` in a swarm dir.

    Events are stable-sorted by round (ties keep node order), so the
    merged stream reads like one chronological log of the whole swarm.
    Consumed by ``repro report <swarm-dir>`` and the CI artifact upload.
    """
    from repro.obs.export import read_jsonl

    events: List[Any] = []
    for path in sorted(pathlib.Path(status_dir).glob("node-*.jsonl")):
        events.extend(read_jsonl(str(path)))
    events.sort(key=lambda event: event.round)
    return events


def write_swarm_bench(
    report: SwarmReport, json_path: str = "BENCH_gossip.json"
) -> str:
    """Merge the swarm section into the shared bench trajectory file.

    Read-modify-write like the scale bench: every other section
    (the perf matrix, ``scale_tiers``) survives untouched.
    """
    path = pathlib.Path(json_path)
    data: Dict[str, Any] = {}
    if path.exists():
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            data = {}
    data["swarm"] = report.to_dict()
    path.write_text(
        json.dumps(data, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return str(path)


def main(argv: Optional[List[str]] = None) -> int:
    """Module entry point: ``--node`` selects the child role."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "--node":
        return _swarm_node(argv[1:])
    raise SystemExit(
        "repro.runtime.swarm is the child entry point; launch swarms with "
        "'repro swarm' or repro.runtime.swarm.run_swarm()"
    )


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
