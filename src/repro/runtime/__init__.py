"""The live runtime: one protocol stack, three engines.

The paper's holistic vision is a *runtime*, not a simulator — the same
UO1/UO2/gossip layer code must drive real components exchanging real
messages. This package makes the round-based simulator one backend among
three behind a single engine API:

- :mod:`repro.runtime.api` — the :class:`RunnerConfig` /
  :func:`make_runner` / :class:`Runner` surface unifying the round engine,
  the sharded scale engine, and the UDP runtime;
- :mod:`repro.runtime.wire` — the versioned JSON wire codec (msg-id +
  TTL dedup, typed :class:`~repro.errors.WireError` on hostile input);
- :mod:`repro.runtime.loopback` — a deterministic in-memory transport
  that round-trips every exchange through the wire codec, proving the
  codec lossless (byte-identical overlay digests vs the direct path);
- :mod:`repro.runtime.net` — the asyncio UDP runtime: one process per
  node, the *identical, unmodified* layer code speaking over datagrams;
- :mod:`repro.runtime.swarm` — the ``repro swarm`` harness launching N
  local UDP processes with bandwidth accounting and health monitoring.

The layers themselves never import this package: they talk only to the
Transport seam (``ctx.transport.deliverable`` / ``ctx.transport.exchange``),
which every backend implements.
"""

from repro.runtime.api import Runner, RunnerConfig, make_runner

__all__ = ["Runner", "RunnerConfig", "make_runner"]
