"""Per-node live telemetry: a ``/metrics`` endpoint and incremental JSONL.

Two small adapters turn one in-process :class:`~repro.obs.collector.Collector`
into the live-observability surface of a swarm node:

- :class:`MetricsServer` — a stdlib ``http.server`` on a daemon thread
  serving the collector's Prometheus snapshot at ``/metrics``.  Port 0
  auto-assigns; the bound port is recorded in the node's status file so
  scrapers (and the CI smoke job) can find it without configuration.
- :class:`TelemetryStream` — an append-only incremental JSONL writer:
  each ``flush()`` appends only the events recorded since the previous
  flush, so the stream on disk is live (tail-able mid-run) and merging
  ``node-*.jsonl`` files later needs no dedup.

Both are observation plumbing, deliberately outside the protocol hot
path: the HTTP thread only *reads* collector aggregates (plain dict
scans — worst case a torn read of one counter, never an exception that
could reach the round loop), and stream flushes happen at round
boundaries from the node's own supervisor hook.  The module is a
sanctioned IO/clock site for deep lint (``repro.lint.taint``): the
stdlib HTTP server consumes the wall clock internally for socket
timeouts, which is fine — no protocol decision ever flows from it.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, List, Optional

from repro.obs.export import to_jsonl, to_prometheus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.collector import Collector

__all__ = ["MetricsServer", "TelemetryStream"]


class _MetricsHandler(BaseHTTPRequestHandler):
    """GET /metrics → the collector's Prometheus text snapshot."""

    server_version = "repro-metrics/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API name
        if self.path.split("?", 1)[0] != "/metrics":
            self.send_error(404, "only /metrics is served")
            return
        body = to_prometheus(self.server.collector).encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default per-request stderr chatter."""


class MetricsServer:
    """Serve a collector as a local Prometheus ``/metrics`` endpoint.

    The server binds ``host:port`` (port 0 auto-assigns) and answers from
    a daemon thread, so a crashing scrape can never take the node down
    and process exit never blocks on the server.  ``close()`` is
    idempotent.
    """

    def __init__(
        self,
        collector: "Collector",
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.collector = collector
        self._host = host
        self._requested_port = int(port)
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (0 until :meth:`start`)."""
        if self._server is None:
            return 0
        return self._server.server_address[1]

    def start(self) -> int:
        """Bind and start serving; returns the bound port."""
        if self._server is not None:
            return self.port
        server = ThreadingHTTPServer(
            (self._host, self._requested_port), _MetricsHandler
        )
        server.daemon_threads = True
        server.collector = self.collector  # read by _MetricsHandler
        thread = threading.Thread(
            target=server.serve_forever,
            name=f"repro-metrics-{server.server_address[1]}",
            daemon=True,
        )
        self._server = server
        self._thread = thread
        thread.start()
        return self.port

    def close(self) -> None:
        """Stop serving and release the socket (idempotent)."""
        server, thread = self._server, self._thread
        self._server = None
        self._thread = None
        if server is not None:
            server.shutdown()
            server.server_close()
        if thread is not None:
            thread.join(timeout=2.0)

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TelemetryStream:
    """Append-only incremental JSONL writer over a collector's events.

    ``flush(collector)`` appends every event recorded since the previous
    flush and returns how many were written.  The on-disk stream is the
    same namespaced JSONL layout as :func:`repro.obs.export.write_jsonl`,
    so ``read_jsonl`` / ``repro obs`` / ``repro report`` consume it
    directly.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._written = 0

    @property
    def written(self) -> int:
        """Total events flushed to disk so far."""
        return self._written

    def flush(self, source: object) -> int:
        """Append events recorded since the last flush; return the count."""
        events: List[object] = getattr(source, "events", source)
        fresh = events[self._written :]
        if not fresh:
            return 0
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(to_jsonl(fresh))
        self._written = len(events)
        return len(fresh)
