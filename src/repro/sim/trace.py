"""Deprecated shim — structured tracing now lives in :mod:`repro.obs.trace`.

Everything here re-exports the canonical implementations. Importing
``Tracer`` from this module emits a :class:`DeprecationWarning`; the
companion classes are re-exported silently because their canonical names
are unchanged and unambiguous.
"""

from __future__ import annotations

import warnings

from repro.obs.trace import (  # noqa: F401  (compatibility re-exports)
    ConvergenceTracer,
    PopulationTracer,
    TraceEvent,
    attach_tracer,
)

__all__ = [
    "ConvergenceTracer",
    "PopulationTracer",
    "TraceEvent",
    "Tracer",
    "attach_tracer",
]


def __getattr__(name: str):
    if name == "Tracer":
        warnings.warn(
            "repro.sim.trace.Tracer is deprecated; "
            "import Tracer from repro.obs.trace instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.obs.trace import Tracer

        return Tracer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
