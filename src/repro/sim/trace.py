"""Structured event tracing for simulations.

A :class:`Tracer` collects timestamped lifecycle events — crashes, joins,
revivals, convergence transitions, reconfigurations, rebalances — as plain
records that can be asserted on in tests, printed as a timeline, or dumped
to JSON for external tooling. The runtime emits through whatever tracer is
attached; tracing is entirely optional and free when absent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.sim.controls import Observer
from repro.sim.network import Network


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    round: int
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"round": self.round, "kind": self.kind, **self.details}

    def __str__(self) -> str:
        details = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return f"[{self.round:>4}] {self.kind}{' ' + details if details else ''}"


class Tracer:
    """An append-only event log keyed by simulation round."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._round_source: Callable[[], int] = lambda: 0

    def bind_round_source(self, source: Callable[[], int]) -> None:
        """Attach the clock (usually ``lambda: engine.round``)."""
        self._round_source = source

    def emit(self, kind: str, **details: Any) -> TraceEvent:
        event = TraceEvent(round=self._round_source(), kind=kind, details=details)
        self.events.append(event)
        return event

    # -- queries ----------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def since(self, round_index: int) -> List[TraceEvent]:
        return [event for event in self.events if event.round >= round_index]

    def __len__(self) -> int:
        return len(self.events)

    # -- export ------------------------------------------------------------------

    def timeline(self) -> str:
        """Human-readable one-line-per-event log."""
        return "\n".join(str(event) for event in self.events)

    def to_json(self) -> str:
        return json.dumps([event.to_dict() for event in self.events], indent=2)


class PopulationTracer(Observer):
    """Engine observer emitting crash/join/revive events by diffing the
    population between rounds (catches changes made by any control)."""

    def __init__(self, tracer: Tracer):
        self.tracer = tracer
        self._known_alive: Optional[set] = None

    def observe(self, network: Network, round_index: int) -> bool:
        alive = set(network.alive_ids())
        if self._known_alive is not None:
            for node_id in sorted(self._known_alive - alive):
                if network.has_node(node_id):
                    self.tracer.emit("node_crash", node=node_id)
                else:
                    self.tracer.emit("node_leave", node=node_id)
            for node_id in sorted(alive - self._known_alive):
                self.tracer.emit("node_up", node=node_id)
        self._known_alive = alive
        return False


class ConvergenceTracer(Observer):
    """Engine observer emitting one event per layer convergence transition.

    Wraps a :class:`~repro.core.convergence.ConvergenceTracker`: whenever a
    layer's first-convergence round becomes known, a ``layer_converged``
    event is emitted.
    """

    def __init__(self, tracer: Tracer, tracker) -> None:
        self.tracer = tracer
        self.tracker = tracker
        self._reported: set = set()

    def observe(self, network: Network, round_index: int) -> bool:
        for layer, first in self.tracker.first_converged.items():
            if first is not None and layer not in self._reported:
                self._reported.add(layer)
                self.tracer.emit("layer_converged", layer=layer, at=first)
        return False

    def reset(self) -> None:
        self._reported.clear()


def attach_tracer(deployment) -> Tracer:
    """Wire a fresh :class:`Tracer` into a deployment.

    Emits ``deploy`` immediately, then population and convergence events as
    rounds execute. Returns the tracer; read ``tracer.timeline()`` or
    ``tracer.to_json()`` at any point.
    """
    tracer = Tracer()
    tracer.bind_round_source(lambda: deployment.engine.round)
    tracer.emit(
        "deploy",
        assembly=deployment.assembly.name,
        nodes=deployment.network.size(),
        components=len(deployment.assembly.components),
    )
    deployment.engine.add_observer(PopulationTracer(tracer))
    deployment.engine.add_observer(ConvergenceTracer(tracer, deployment.tracker))
    return tracer
