"""Failure and churn injection.

The paper stresses that the runtime must cope with "nodes failing, leaving or
joining the system (a common occurrence in public clouds)". These controls
inject exactly those events at round boundaries:

- :class:`RandomChurn` — memoryless per-round crash and join rates;
- :class:`CatastrophicFailure` — kill a fraction of the population at one
  round (the Polystyrene-style catastrophic scenario [4] cited by the paper);
- :class:`NodeProvisioner` — the callback protocol used to equip joining
  nodes with a full protocol stack.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.sim.controls import Control
from repro.sim.network import Network
from repro.sim.node import Node

# A provisioner receives the network and the fresh node and attaches its
# protocol stack (the runtime supplies one bound to the current assembly).
NodeProvisioner = Callable[[Network, Node], None]


class RandomChurn(Control):
    """Memoryless churn: each round, each live node crashes with probability
    ``crash_rate`` and ``join_count`` provisioned nodes join.

    Parameters
    ----------
    crash_rate:
        Per-node, per-round crash probability in ``[0, 1)``.
    join_count:
        Number of nodes added each round (0 disables joins).
    provisioner:
        Required when ``join_count > 0``; attaches protocol stacks to the
        joining nodes.
    rng:
        Dedicated random stream (keeps churn decisions independent of
        protocol randomness).
    min_population:
        Crashes are suppressed when they would push the live population
        below this floor (a run with zero nodes is meaningless).

    The control keeps O(1) counters, not event lists: long churn runs
    (production-scale soaks) would otherwise grow per-event state without
    bound. ``crashes_last_round``/``joins_last_round`` cover the most
    recent round, ``crashes_total``/``joins_total`` the whole run.
    """

    def __init__(
        self,
        rng: random.Random,
        crash_rate: float = 0.0,
        join_count: int = 0,
        provisioner: Optional[NodeProvisioner] = None,
        min_population: int = 8,
    ):
        if not 0.0 <= crash_rate < 1.0:
            raise ConfigurationError(f"crash_rate must be in [0, 1), got {crash_rate}")
        if join_count < 0:
            raise ConfigurationError(f"join_count must be >= 0, got {join_count}")
        if join_count > 0 and provisioner is None:
            raise ConfigurationError("join_count > 0 requires a provisioner")
        self.rng = rng
        self.crash_rate = crash_rate
        self.join_count = join_count
        self.provisioner = provisioner
        self.min_population = min_population
        self.crashes_last_round = 0
        self.joins_last_round = 0
        self.crashes_total = 0
        self.joins_total = 0

    def before_round(self, network: Network, round_index: int) -> None:
        self.crashes_last_round = 0
        self.joins_last_round = 0
        if self.crash_rate > 0.0:
            for node_id in list(network.alive_ids()):
                if network.alive_count() <= self.min_population:
                    break
                if self.rng.random() < self.crash_rate:
                    network.kill(node_id)
                    self.crashes_last_round += 1
        for _ in range(self.join_count):
            node = network.create_node()
            assert self.provisioner is not None  # guaranteed by __init__
            self.provisioner(network, node)
            self.joins_last_round += 1
        self.crashes_total += self.crashes_last_round
        self.joins_total += self.joins_last_round


class CatastrophicFailure(Control):
    """Kills ``fraction`` of the live population at the start of ``at_round``.

    Models the catastrophic-failure scenario of self-healing overlay work:
    a large correlated crash from which the remaining overlay must recover.
    ``min_population`` caps the blast radius: the kill never leaves fewer
    live nodes than the floor (matching :class:`RandomChurn`).
    """

    def __init__(
        self,
        rng: random.Random,
        at_round: int,
        fraction: float,
        min_population: int = 8,
    ):
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
        if at_round < 0:
            raise ConfigurationError(f"at_round must be >= 0, got {at_round}")
        if min_population < 0:
            raise ConfigurationError(
                f"min_population must be >= 0, got {min_population}"
            )
        self.rng = rng
        self.at_round = at_round
        self.fraction = fraction
        self.min_population = min_population
        self.fired = False
        self.victims: List[int] = []

    def before_round(self, network: Network, round_index: int) -> None:
        if self.fired or round_index < self.at_round:
            return
        self.fired = True
        alive = list(network.alive_ids())
        n_victims = min(
            int(len(alive) * self.fraction),
            max(0, len(alive) - self.min_population),
        )
        self.victims = self.rng.sample(alive, n_victims)
        for node_id in self.victims:
            network.kill(node_id)
