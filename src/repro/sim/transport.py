"""Synchronous transport with per-layer byte accounting — and the seam.

Gossip exchanges in the cycle-driven model are synchronous request/response
pairs. Historically the transport did not route payloads (protocol
instances talked directly, as in PeerSim); its job was the *measurement*
the paper's Fig. 4 needs: bytes and messages per protocol layer per round.

The transport is now also the **engine seam**: layers ask
:meth:`Transport.deliverable` whether an exchange with a partner can happen
(the fault gate) and route their request/response through
:meth:`Transport.exchange`. On this in-memory transport ``exchange`` is a
direct method call on the partner's protocol instance — byte-identical to
the historical direct dispatch — while the runtime package substitutes
implementations that serialize through the wire codec
(:class:`repro.runtime.loopback.LoopbackTransport`) or real UDP sockets
(:mod:`repro.runtime.net`). The layer code is identical over all three.

``exchange`` may return ``None`` — the request was sent but no reply
arrived (a real-network timeout). The in-memory transport never does; a
layer must treat ``None`` exactly like a failed ``deliverable`` check.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.sim.config import TransportCosts

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import RoundContext


@dataclass(frozen=True)
class ExchangeRequest:
    """One gossip request crossing the transport seam.

    ``payload`` is the layer's buffer (descriptor list, binding map, ...);
    ``profile`` optionally carries the requester's proximity coordinate for
    layers whose passive side ranks on it (vicinity, T-Man, the core
    protocol). The sim transport hands the object through untouched; wire
    transports serialize it with :mod:`repro.runtime.wire`.
    """

    layer: str
    sender: int
    payload: Any
    profile: Any = None


class Transport:
    """Records every message of the simulation, bucketed by layer and round."""

    def __init__(self, costs: Optional[TransportCosts] = None):
        self.costs = costs or TransportCosts()
        self._bytes: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._messages: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        # Fault-plane accounting: exchanges that never completed (partition
        # cuts, lossy links, timeouts) and exchanges that completed late
        # (degraded links), bucketed like the byte series.
        self._dropped: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._drop_reasons: Dict[str, int] = defaultdict(int)
        self._delayed: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._delay_sum: Dict[str, float] = defaultdict(float)
        self.round = 0

    def begin_round(self, round_index: int) -> None:
        """Called by the engine at each round boundary."""
        self.round = round_index

    # -- the exchange seam ----------------------------------------------------

    def deliverable(self, ctx: "RoundContext", dst: int, layer: str = "") -> bool:
        """Can ``ctx.node`` complete an exchange with ``dst`` on ``layer``?

        The pre-exchange fault gate: layers call this *before* building a
        buffer, so a dropped exchange draws nothing from the layer's RNG
        stream — the invariant the digest gate depends on. The in-memory
        transport delegates to the round context's fault plane (exactly the
        historical ``ctx.exchange_ok(dst)`` check); decorators and wire
        transports override it with loss/latency/plane checks of their own.
        """
        return ctx is None or ctx.exchange_ok(dst)

    def exchange(
        self, ctx: "RoundContext", dst: int, request: ExchangeRequest
    ) -> Optional[Any]:
        """Deliver ``request`` to ``dst`` and return its reply payload.

        In-memory routing: a direct call on the partner's protocol instance,
        as in PeerSim's cycle-driven mode — the passive side runs inside the
        active side's step, with the *requester's* context. ``None`` means
        the exchange failed after the ``deliverable`` gate passed (only
        possible on real-network transports).
        """
        partner = ctx.network.node(dst)
        return partner.protocol(request.layer).on_request(ctx, request)

    def reachable(self, ctx: "RoundContext", dst: int) -> bool:
        """Whether ``dst`` is on this node's side of any active partition.

        The read-side twin of :meth:`deliverable`: harvest-style shortcuts
        that inspect a peer's state directly (a simulator idiom for
        piggybacked knowledge) must not leak state across a cut. No RNG is
        drawn and nothing is accounted — reachability is a topology
        question, not a delivery attempt.
        """
        return ctx is None or ctx.reachable(dst)

    # -- accounting -----------------------------------------------------------

    def record_message(self, layer: str, n_descriptors: int) -> int:
        """Account one message of ``n_descriptors`` entries on ``layer``.

        Returns the number of bytes charged.
        """
        size = self.costs.message_bytes(n_descriptors)
        self._bytes[layer][self.round] += size
        self._messages[layer][self.round] += 1
        return size

    def record_exchange(
        self, layer: str, request_descriptors: int, response_descriptors: int
    ) -> int:
        """Account one push-pull exchange (a request and its response)."""
        total = self.record_message(layer, request_descriptors)
        total += self.record_message(layer, response_descriptors)
        return total

    def record_dropped(self, layer: str, reason: str = "loss") -> None:
        """Account one exchange lost to the fault plane on ``layer``.

        ``reason`` is a free-form tag (``"partition"``, ``"loss"``,
        ``"timeout"``) aggregated over the whole run.
        """
        self._dropped[layer][self.round] += 1
        self._drop_reasons[reason] += 1

    def record_delayed(self, layer: str, extra_latency: float) -> None:
        """Account one exchange that completed late on a degraded link."""
        self._delayed[layer][self.round] += 1
        self._delay_sum[layer] += extra_latency

    # -- queries -------------------------------------------------------------

    def layers(self) -> List[str]:
        return sorted(self._bytes)

    def bytes_for(self, layer: str, round_index: int) -> int:
        return self._bytes.get(layer, {}).get(round_index, 0)

    def messages_for(self, layer: str, round_index: int) -> int:
        return self._messages.get(layer, {}).get(round_index, 0)

    def total_bytes(self, layer: Optional[str] = None) -> int:
        if layer is not None:
            return sum(self._bytes.get(layer, {}).values())
        return sum(sum(per_round.values()) for per_round in self._bytes.values())

    def total_messages(self, layer: Optional[str] = None) -> int:
        if layer is not None:
            return sum(self._messages.get(layer, {}).values())
        return sum(sum(per_round.values()) for per_round in self._messages.values())

    def bytes_series(self, layer: str, rounds: int) -> List[int]:
        """Per-round byte counts for ``layer`` over ``range(rounds)``."""
        per_round = self._bytes.get(layer, {})
        return [per_round.get(r, 0) for r in range(rounds)]

    def dropped_for(self, layer: str, round_index: int) -> int:
        return self._dropped.get(layer, {}).get(round_index, 0)

    def total_dropped(self, layer: Optional[str] = None) -> int:
        if layer is not None:
            return sum(self._dropped.get(layer, {}).values())
        return sum(sum(per_round.values()) for per_round in self._dropped.values())

    def drop_reasons(self) -> Dict[str, int]:
        """Drop counts by cause over the whole run."""
        return dict(self._drop_reasons)

    def total_delayed(self, layer: Optional[str] = None) -> int:
        if layer is not None:
            return sum(self._delayed.get(layer, {}).values())
        return sum(sum(per_round.values()) for per_round in self._delayed.values())

    def mean_extra_latency(self, layer: str) -> float:
        """Mean extra latency over the delayed exchanges of ``layer``."""
        count = self.total_delayed(layer)
        return self._delay_sum[layer] / count if count else 0.0

    def reset(self) -> None:
        self._bytes.clear()
        self._messages.clear()
        self._dropped.clear()
        self._drop_reasons.clear()
        self._delayed.clear()
        self._delay_sum.clear()
        self.round = 0


class TransportDecorator:
    """Delegating base for stackable transport decorators.

    Subclasses override :meth:`deliverable` and/or :meth:`exchange` to add
    behaviour at the seam (fault injection in
    :mod:`repro.faults.transports`, wire-codec round-trips in
    :mod:`repro.runtime.loopback`); everything else — the accounting calls,
    ``begin_round``, the query surface — resolves through ``__getattr__``
    to the wrapped transport, so readers of ``deployment.transport`` see
    one unified ledger no matter how many decorators are stacked.
    """

    def __init__(self, inner: Transport):
        self.inner = inner

    def __getattr__(self, name: str) -> Any:
        # Only reached for attributes not defined on the decorator itself.
        return getattr(self.inner, name)

    def deliverable(self, ctx: "RoundContext", dst: int, layer: str = "") -> bool:
        return self.inner.deliverable(ctx, dst, layer)

    def exchange(
        self, ctx: "RoundContext", dst: int, request: ExchangeRequest
    ) -> Optional[Any]:
        return self.inner.exchange(ctx, dst, request)

    def reachable(self, ctx: "RoundContext", dst: int) -> bool:
        return self.inner.reachable(ctx, dst)

    def unwrap(self) -> Transport:
        """The innermost real transport (follows nested decorators)."""
        inner = self.inner
        while isinstance(inner, TransportDecorator):
            inner = inner.inner
        return inner
