"""Synchronous transport with per-layer byte accounting.

Gossip exchanges in the cycle-driven model are synchronous request/response
pairs. The transport does not route payloads (protocol instances talk
directly, as in PeerSim); its job is the *measurement* the paper's Fig. 4
needs: bytes and messages per protocol layer per round, so the runtime's
overhead can be compared against the core-protocol baseline.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from repro.sim.config import TransportCosts


class Transport:
    """Records every message of the simulation, bucketed by layer and round."""

    def __init__(self, costs: Optional[TransportCosts] = None):
        self.costs = costs or TransportCosts()
        self._bytes: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._messages: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        # Fault-plane accounting: exchanges that never completed (partition
        # cuts, lossy links, timeouts) and exchanges that completed late
        # (degraded links), bucketed like the byte series.
        self._dropped: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._drop_reasons: Dict[str, int] = defaultdict(int)
        self._delayed: Dict[str, Dict[int, int]] = defaultdict(lambda: defaultdict(int))
        self._delay_sum: Dict[str, float] = defaultdict(float)
        self.round = 0

    def begin_round(self, round_index: int) -> None:
        """Called by the engine at each round boundary."""
        self.round = round_index

    # -- accounting -----------------------------------------------------------

    def record_message(self, layer: str, n_descriptors: int) -> int:
        """Account one message of ``n_descriptors`` entries on ``layer``.

        Returns the number of bytes charged.
        """
        size = self.costs.message_bytes(n_descriptors)
        self._bytes[layer][self.round] += size
        self._messages[layer][self.round] += 1
        return size

    def record_exchange(
        self, layer: str, request_descriptors: int, response_descriptors: int
    ) -> int:
        """Account one push-pull exchange (a request and its response)."""
        total = self.record_message(layer, request_descriptors)
        total += self.record_message(layer, response_descriptors)
        return total

    def record_dropped(self, layer: str, reason: str = "loss") -> None:
        """Account one exchange lost to the fault plane on ``layer``.

        ``reason`` is a free-form tag (``"partition"``, ``"loss"``,
        ``"timeout"``) aggregated over the whole run.
        """
        self._dropped[layer][self.round] += 1
        self._drop_reasons[reason] += 1

    def record_delayed(self, layer: str, extra_latency: float) -> None:
        """Account one exchange that completed late on a degraded link."""
        self._delayed[layer][self.round] += 1
        self._delay_sum[layer] += extra_latency

    # -- queries -------------------------------------------------------------

    def layers(self) -> List[str]:
        return sorted(self._bytes)

    def bytes_for(self, layer: str, round_index: int) -> int:
        return self._bytes.get(layer, {}).get(round_index, 0)

    def messages_for(self, layer: str, round_index: int) -> int:
        return self._messages.get(layer, {}).get(round_index, 0)

    def total_bytes(self, layer: Optional[str] = None) -> int:
        if layer is not None:
            return sum(self._bytes.get(layer, {}).values())
        return sum(sum(per_round.values()) for per_round in self._bytes.values())

    def total_messages(self, layer: Optional[str] = None) -> int:
        if layer is not None:
            return sum(self._messages.get(layer, {}).values())
        return sum(sum(per_round.values()) for per_round in self._messages.values())

    def bytes_series(self, layer: str, rounds: int) -> List[int]:
        """Per-round byte counts for ``layer`` over ``range(rounds)``."""
        per_round = self._bytes.get(layer, {})
        return [per_round.get(r, 0) for r in range(rounds)]

    def dropped_for(self, layer: str, round_index: int) -> int:
        return self._dropped.get(layer, {}).get(round_index, 0)

    def total_dropped(self, layer: Optional[str] = None) -> int:
        if layer is not None:
            return sum(self._dropped.get(layer, {}).values())
        return sum(sum(per_round.values()) for per_round in self._dropped.values())

    def drop_reasons(self) -> Dict[str, int]:
        """Drop counts by cause over the whole run."""
        return dict(self._drop_reasons)

    def total_delayed(self, layer: Optional[str] = None) -> int:
        if layer is not None:
            return sum(self._delayed.get(layer, {}).values())
        return sum(sum(per_round.values()) for per_round in self._delayed.values())

    def mean_extra_latency(self, layer: str) -> float:
        """Mean extra latency over the delayed exchanges of ``layer``."""
        count = self.total_delayed(layer)
        return self._delay_sum[layer] / count if count else 0.0

    def reset(self) -> None:
        self._bytes.clear()
        self._messages.clear()
        self._dropped.clear()
        self._drop_reasons.clear()
        self._delayed.clear()
        self._delay_sum.clear()
        self.round = 0
