"""The round (cycle) scheduler.

Reproduces PeerSim's cycle-driven execution model used by the paper's
evaluation: each round, every live node executes one active step of each
protocol in its stack, in a freshly shuffled node order; controls (churn,
initializers) run at round boundaries; observers measure after each round and
may stop the run early (e.g. once every layer has converged).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional

from repro.errors import SimulationError
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plane import FaultPlane
    from repro.obs.instrument import Instrument
    from repro.sim.controls import Actuator, Control
    from repro.sim.node import Node


@dataclass
class RoundContext:
    """Everything a protocol step may touch, bundled for one (node, round).

    Protocols draw randomness through :meth:`rng`, which returns the stream
    named ``(layer, node_id)`` — deterministic per node and layer.
    """

    node: "Node"
    network: Network
    transport: Transport
    streams: RandomStreams
    round: int
    layer: str = ""
    loss_rate: float = 0.0
    faults: Optional["FaultPlane"] = None
    #: Telemetry sink (see :mod:`repro.obs`); ``None`` means disabled, and
    #: protocol hot paths guard every call with ``if ctx.obs is not None``
    #: so uninstrumented runs do zero observability work.
    obs: Optional["Instrument"] = None

    def rng(self):
        """The random stream for the current (layer, node) pair."""
        return self.streams.stream(self.layer, self.node.node_id)

    def exchange_ok(self, peer: Optional[int] = None) -> bool:
        """Whether this round's gossip exchange goes through.

        Two phases, matching the two failure models:

        - ``exchange_ok()`` (no peer, called *before* partner selection)
          models global memoryless message loss: with probability
          ``loss_rate`` the active exchange of this (node, layer, round) is
          dropped — the protocol skips its turn, exactly what a lost request
          or reply causes in a real deployment. Gossip protocols are
          designed to tolerate this (they merely converge more slowly),
          which ablation A7 quantifies.
        - ``exchange_ok(peer)`` (called *after* a partner is chosen)
          consults the installed fault plane: a network partition drops
          every exchange across the cut, and per-link quality overrides add
          correlated loss and extra latency on degraded paths. Without an
          active fault plane this phase is free and always succeeds, so
          fault-free runs are bit-identical to the pre-faults engine.
        """
        if peer is None:
            if self.loss_rate <= 0.0:
                return True
            return (
                self.streams.stream("loss", self.layer, self.node.node_id).random()
                >= self.loss_rate
            )
        if self.faults is None or not self.faults.active:
            return True
        return self.faults.exchange_ok(
            self.streams.stream("linkfaults", self.layer, self.node.node_id),
            self.node.node_id,
            peer,
            transport=self.transport,
            layer=self.layer,
        )

    def reachable(self, peer: int) -> bool:
        """Whether ``peer`` is on this node's side of any active partition.

        Used by harvest-style shortcuts that read a peer's state directly
        (a simulator idiom for piggybacked knowledge): state of a node
        behind the cut must not leak across it.
        """
        if self.faults is None or not self.faults.active:
            return True
        return self.faults.reachable(self.node.node_id, peer)


class Engine:
    """Drives a simulation round by round.

    Parameters
    ----------
    network, transport, streams:
        The simulation substrate; the engine takes no ownership and several
        engines may share a network sequentially (used by reconfiguration
        experiments).
    controls:
        Round-boundary hooks run *before* the node steps of each round
        (churn models, workload generators).
    observers:
        Measurement hooks run *after* the node steps of each round. An
        observer's :meth:`~repro.obs.instrument.Instrument.observe` may return
        ``True`` to request an early stop (e.g. "all layers converged").
    actuators:
        Closed-loop hooks (:class:`~repro.sim.controls.Actuator`) run in the
        *act* phase — after every observer of a round, before the
        after-round controls — so they decide on telemetry that is fresh
        for the round. The remediation engine of :mod:`repro.heal` attaches
        here; an engine with no actuators skips the phase entirely.
    faults:
        Optional :class:`~repro.faults.plane.FaultPlane` consulted by every
        peer-addressed exchange (partitions, degraded links). Fault
        controls mutate the plane at round boundaries; ``None`` (default)
        keeps the engine on the fast fault-free path.
    obs:
        Optional :class:`~repro.obs.instrument.Instrument` telemetry sink,
        handed to every :class:`RoundContext` and timed around each round.
        ``None`` (default) keeps the engine on the uninstrumented path:
        one ``is None`` check per guarded call site, zero allocations.
    """

    def __init__(
        self,
        network: Network,
        transport: Optional[Transport] = None,
        streams: Optional[RandomStreams] = None,
        controls: Iterable["Control"] = (),
        observers: Iterable["Instrument"] = (),
        loss_rate: float = 0.0,
        faults: Optional["FaultPlane"] = None,
        obs: Optional["Instrument"] = None,
        actuators: Iterable["Actuator"] = (),
    ):
        if type(self) is Engine:
            # Direct construction is the legacy path; the canonical entry
            # point is repro.runtime.api.make_runner, which builds the
            # RoundRunner subclass (identical behaviour, Runner surface).
            warnings.warn(
                "constructing Engine directly is deprecated; use "
                "repro.runtime.make_runner(RunnerConfig(kind='round'), ...)",
                DeprecationWarning,
                stacklevel=2,
            )
        if not 0.0 <= loss_rate < 1.0:
            raise SimulationError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.network = network
        self.transport = transport or Transport()
        self.streams = streams or RandomStreams(0)
        self.controls: List["Control"] = list(controls)
        self.observers: List["Instrument"] = list(observers)
        self.actuators: List["Actuator"] = list(actuators)
        self.loss_rate = loss_rate
        self.faults = faults
        self.obs = obs
        self.round = 0

    def add_control(self, control: "Control") -> None:
        self.controls.append(control)

    def add_observer(self, observer: "Instrument") -> None:
        self.observers.append(observer)

    def add_actuator(self, actuator: "Actuator") -> None:
        self.actuators.append(actuator)

    # -- execution ------------------------------------------------------------

    def run_round(self) -> bool:
        """Execute one round; return ``True`` if an observer requested a stop."""
        obs = self.obs
        if obs is not None:
            obs.span_begin("round")
        self.transport.begin_round(self.round)
        for control in self.controls:
            control.before_round(self.network, self.round)

        if obs is not None:
            obs.span_begin("steps")
        # Per-layer span profiling (`repro report --profile`): resolved once
        # per round so the common non-profiling path pays one getattr here,
        # never per (node, layer) step.
        profile = obs is not None and getattr(obs, "profile_layers", False)
        order = list(self.network.alive_ids())
        self.streams.stream("engine", "order").shuffle(order)
        for node_id in order:
            if not self.network.has_node(node_id):
                continue  # removed by a control or by cascading churn
            node = self.network.node(node_id)
            if not node.alive:
                continue  # killed earlier in this same round
            ctx = RoundContext(
                node=node,
                network=self.network,
                transport=self.transport,
                streams=self.streams,
                round=self.round,
                loss_rate=self.loss_rate,
                faults=self.faults,
                obs=obs,
            )
            if profile:
                for layer, protocol in node.stack():
                    ctx.layer = layer
                    span = "layer:" + layer
                    obs.span_begin(span)
                    protocol.step(ctx)
                    obs.span_end(span)
            else:
                for layer, protocol in node.stack():
                    ctx.layer = layer
                    protocol.step(ctx)
        if obs is not None:
            obs.span_end("steps")
            obs.span_begin("observe")

        stop = False
        for observer in self.observers:
            if observer.observe(self.network, self.round):
                stop = True
        # Act phase: closed-loop actuators run on this round's fresh
        # observations, before the after-round controls. The span is only
        # opened when actuators exist, so unmanaged runs record identical
        # telemetry to the pre-act-phase engine.
        if self.actuators:
            if obs is not None:
                obs.span_begin("act")
            for actuator in self.actuators:
                actuator.act(self.network, self.round)
            if obs is not None:
                obs.span_end("act")
        for control in self.controls:
            control.after_round(self.network, self.round)
        if obs is not None:
            obs.span_end("observe")
            obs.span_end("round")
        self.round += 1
        return stop

    def run(
        self,
        max_rounds: int,
        stop_when: Optional[Callable[[Network, int], bool]] = None,
    ) -> int:
        """Run up to ``max_rounds`` rounds; return the number executed.

        Stops early when an observer or the ``stop_when`` predicate asks to.
        """
        if max_rounds < 0:
            raise SimulationError(f"max_rounds must be >= 0, got {max_rounds}")
        executed = 0
        for _ in range(max_rounds):
            stop = self.run_round()
            executed += 1
            if stop:
                break
            if stop_when is not None and stop_when(self.network, self.round - 1):
                break
        return executed
