"""The protocol interface executed by the round engine."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import RoundContext
    from repro.sim.transport import ExchangeRequest


class Protocol(ABC):
    """One layer of a node's protocol stack.

    The engine calls :meth:`step` once per round per live node (the *active
    thread* of a gossip protocol). Passive behaviour — answering a partner's
    gossip — is modelled as a direct method call on the partner's protocol
    instance, exactly as PeerSim's cycle-driven mode does; the transport is
    still informed of both message directions for bandwidth accounting.
    """

    @abstractmethod
    def step(self, ctx: "RoundContext") -> None:
        """Execute one active round on behalf of ``ctx.node``."""

    def neighbors(self) -> Iterable[int]:
        """Node ids this protocol currently considers its overlay neighbours.

        Used by observers to materialize the realized overlay graph; the
        default is an empty relation for protocols that do not define one.
        """
        return ()

    def on_request(
        self, ctx: "RoundContext", request: "ExchangeRequest"
    ) -> Optional[Any]:
        """Answer one gossip request arriving through the transport seam.

        The passive half of the protocol: transports route every incoming
        :class:`~repro.sim.transport.ExchangeRequest` here and send the
        returned payload back as the reply. The default refuses (``None``,
        i.e. no reply — the requester treats it as a drop); gossip layers
        override it, typically by delegating to their historical
        ``on_gossip`` entry point.
        """
        return None

    def on_join(self, ctx: "RoundContext") -> None:
        """Hook invoked when the hosting node (re)joins the network."""

    def forget(self, node_id: int) -> None:
        """Drop any state referring to ``node_id`` (failure detector signal)."""
