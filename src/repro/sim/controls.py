"""Round-boundary hooks: controls (mutate) and observers (measure).

These mirror PeerSim's ``Control`` components. Controls run before the node
steps of a round and may mutate the population or protocol state (churn,
reconfiguration triggers); observers run after the node steps and record
measurements, optionally requesting an early stop.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.sim.network import Network


class Control:
    """Mutating round-boundary hook; override either method."""

    def before_round(self, network: Network, round_index: int) -> None:
        """Called before the node steps of ``round_index``."""

    def after_round(self, network: Network, round_index: int) -> None:
        """Called after the node steps (and observers) of ``round_index``."""


class Observer:
    """Measuring hook; ``observe`` may return ``True`` to stop the run."""

    def observe(self, network: Network, round_index: int) -> bool:
        """Record measurements for ``round_index``; return ``True`` to stop."""
        return False


class CallbackControl(Control):
    """Wraps a plain callable as a before-round control."""

    def __init__(self, callback: Callable[[Network, int], None]):
        self._callback = callback

    def before_round(self, network: Network, round_index: int) -> None:
        self._callback(network, round_index)


class ScheduledControl(Control):
    """Fires a callback exactly once, at the start of a given round.

    Used by the reconfiguration experiment (paper §4.iii): at round *t*, the
    assembly is rewritten and the runtime must re-converge.
    """

    def __init__(self, at_round: int, callback: Callable[[Network, int], None]):
        self.at_round = at_round
        self._callback = callback
        self.fired = False

    def before_round(self, network: Network, round_index: int) -> None:
        if not self.fired and round_index >= self.at_round:
            self.fired = True
            self._callback(network, round_index)


class SeriesObserver(Observer):
    """Records one numeric sample per round from a metric function."""

    def __init__(self, name: str, metric: Callable[[Network, int], float]):
        self.name = name
        self._metric = metric
        self.samples: List[float] = []

    def observe(self, network: Network, round_index: int) -> bool:
        self.samples.append(self._metric(network, round_index))
        return False


class GraphObserver(Observer):
    """Snapshots the realized overlay graph of one protocol layer each round.

    The realized graph of a layer is the union of every live node's
    :meth:`~repro.sim.protocol.Protocol.neighbors` relation — the structure
    the figures' convergence metric is defined on.
    """

    def __init__(self, layer: str, keep_history: bool = False):
        self.layer = layer
        self.keep_history = keep_history
        self.current: Dict[int, List[int]] = {}
        self.history: List[Dict[int, List[int]]] = []

    def observe(self, network: Network, round_index: int) -> bool:
        snapshot: Dict[int, List[int]] = {}
        for node in network.alive_nodes():
            if node.has_protocol(self.layer):
                snapshot[node.node_id] = list(node.protocol(self.layer).neighbors())
        self.current = snapshot
        if self.keep_history:
            self.history.append(snapshot)
        return False
