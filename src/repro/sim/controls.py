"""Round-boundary hooks: controls (mutate) and observers (measure).

These mirror PeerSim's ``Control`` components. Controls run before the node
steps of a round and may mutate the population or protocol state (churn,
reconfiguration triggers); observers run after the node steps and record
measurements, optionally requesting an early stop.

Controls remain canonical here; the measuring side was unified into the
:class:`~repro.obs.instrument.Instrument` protocol. ``Observer`` is kept as
a deprecated alias of ``Instrument`` (imports still work, with a
:class:`DeprecationWarning`), and :class:`~repro.obs.observers.SeriesObserver`
/ :class:`~repro.obs.observers.GraphObserver` are re-exported from their
canonical home in :mod:`repro.obs.observers`.
"""

from __future__ import annotations

import warnings
from typing import Callable

from repro.obs.observers import (  # noqa: F401  (compatibility re-exports)
    GraphObserver,
    SeriesObserver,
)
from repro.sim.network import Network

__all__ = [
    "Actuator",
    "CallbackControl",
    "Control",
    "GraphObserver",
    "Observer",
    "ScheduledControl",
    "SeriesObserver",
]


class Control:
    """Mutating round-boundary hook; override either method."""

    def before_round(self, network: Network, round_index: int) -> None:
        """Called before the node steps of ``round_index``."""

    def after_round(self, network: Network, round_index: int) -> None:
        """Called after the node steps (and observers) of ``round_index``."""


class Actuator:
    """Closed-loop hook run in the engine's *act* phase.

    The act phase sits after the observers of a round — so an actuator sees
    telemetry and health alerts that are fresh for that round — and before
    the after-round controls. Unlike a :class:`Control` (which injects
    scheduled events from outside the system) an actuator reacts to what the
    observers measured: it closes the observe → decide → act loop. The
    :class:`~repro.heal.engine.RemediationEngine` is the canonical one.

    An engine with no actuators skips the phase entirely, so the fault-free,
    unmanaged path stays bit-identical to the pre-act-phase engine.
    """

    def act(self, network: Network, round_index: int) -> None:
        """Called once per round, after every observer has run."""


class CallbackControl(Control):
    """Wraps a plain callable as a before-round control."""

    def __init__(self, callback: Callable[[Network, int], None]):
        self._callback = callback

    def before_round(self, network: Network, round_index: int) -> None:
        self._callback(network, round_index)


class ScheduledControl(Control):
    """Fires a callback exactly once, at the start of a given round.

    Used by the reconfiguration experiment (paper §4.iii): at round *t*, the
    assembly is rewritten and the runtime must re-converge.
    """

    def __init__(self, at_round: int, callback: Callable[[Network, int], None]):
        self.at_round = at_round
        self._callback = callback
        self.fired = False

    def before_round(self, network: Network, round_index: int) -> None:
        if not self.fired and round_index >= self.at_round:
            self.fired = True
            self._callback(network, round_index)


def __getattr__(name: str):
    if name == "Observer":
        warnings.warn(
            "repro.sim.controls.Observer is deprecated; "
            "subclass repro.obs.instrument.Instrument instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.obs.instrument import Instrument

        return Instrument
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
