"""Simulated nodes and their protocol stacks.

In the paper's model (inherited from PeerSim), a node hosts a *stack* of
protocol instances — here: peer sampling, the two utility overlays UO1/UO2,
port selection, port connection, and the component's core protocol. Protocols
on the same node can read each other through :meth:`Node.protocol`, which is
how Vicinity taps the peer-sampling layer for its "pinch of randomness".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Tuple

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.protocol import Protocol


class Node:
    """A simulated message-passing node.

    Attributes
    ----------
    node_id:
        Unique integer identity; never reused within a run.
    alive:
        Crash-stop liveness flag. A dead node keeps its state (so a revival
        models a temporary partition) but takes no steps and answers no
        gossip.
    attributes:
        Free-form application metadata (e.g. the node's role assignment).
    """

    __slots__ = ("node_id", "alive", "attributes", "_stack", "_order")

    def __init__(self, node_id: int):
        self.node_id = int(node_id)
        self.alive = True
        self.attributes: Dict[str, Any] = {}
        self._stack: Dict[str, "Protocol"] = {}
        self._order: List[str] = []

    # -- protocol stack ----------------------------------------------------

    def attach(self, name: str, protocol: "Protocol") -> "Protocol":
        """Attach ``protocol`` under layer ``name``; stack order is attach order."""
        if name in self._stack:
            raise SimulationError(f"node {self.node_id} already has a protocol {name!r}")
        self._stack[name] = protocol
        self._order.append(name)
        return protocol

    def replace(self, name: str, protocol: "Protocol") -> "Protocol":
        """Swap the protocol attached under ``name`` (stack position kept).

        Used by reconfiguration when a node's component changes shape and its
        core protocol must be rebuilt rather than just re-profiled.
        """
        if name not in self._stack:
            raise SimulationError(f"node {self.node_id} has no protocol {name!r}")
        self._stack[name] = protocol
        return protocol

    def protocol(self, name: str) -> "Protocol":
        """Return the protocol attached under ``name``."""
        try:
            return self._stack[name]
        except KeyError:
            raise SimulationError(
                f"node {self.node_id} has no protocol {name!r} "
                f"(stack: {self._order})"
            ) from None

    def has_protocol(self, name: str) -> bool:
        return name in self._stack

    def stack(self) -> Iterator[Tuple[str, "Protocol"]]:
        """Iterate ``(layer_name, protocol)`` pairs in stack order."""
        for name in self._order:
            yield name, self._stack[name]

    def layer_names(self) -> List[str]:
        return list(self._order)

    # -- liveness ----------------------------------------------------------

    def kill(self) -> None:
        """Crash-stop the node (state is retained, steps cease)."""
        self.alive = False

    def revive(self) -> None:
        """Bring a crashed node back with its pre-crash state."""
        self.alive = True

    def __repr__(self) -> str:
        status = "up" if self.alive else "down"
        return f"Node({self.node_id}, {status}, layers={self._order})"
