"""The simulated node population."""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.sim.node import Node


class Network:
    """The population of nodes in one simulation.

    Supports the churn operations the paper relies on ("nodes failing,
    leaving or joining the system"): node creation, crash-stop kills,
    revivals, and permanent removals. Node ids are allocated monotonically
    and never reused, so a descriptor can always be resolved unambiguously.

    The list of live node ids is cached and invalidated on population or
    liveness changes: uniform random draws (:meth:`random_alive`) are on the
    hot path of every gossip round and must not rescan the population.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._next_id = 0
        self._alive_cache: Optional[List[int]] = None

    def _invalidate(self) -> None:
        self._alive_cache = None

    # -- population management ----------------------------------------------

    def create_node(self) -> Node:
        """Create, register and return a fresh node."""
        node = Node(self._next_id)
        self._next_id += 1
        self._nodes[node.node_id] = node
        self._invalidate()
        return node

    def create_nodes(self, count: int) -> List[Node]:
        if count < 0:
            raise SimulationError(f"cannot create {count} nodes")
        return [self.create_node() for _ in range(count)]

    def remove_node(self, node_id: int) -> None:
        """Permanently remove a node (it leaves the system for good)."""
        if node_id not in self._nodes:
            raise SimulationError(f"no node {node_id} to remove")
        del self._nodes[node_id]
        self._invalidate()

    def kill(self, node_id: int) -> None:
        """Crash-stop ``node_id`` (keeps its state; see :meth:`Node.kill`)."""
        self.node(node_id).kill()
        self._invalidate()

    def revive(self, node_id: int) -> None:
        self.node(node_id).revive()
        self._invalidate()

    # -- lookup ---------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise SimulationError(f"unknown node id {node_id}") from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def is_alive(self, node_id: int) -> bool:
        node = self._nodes.get(node_id)
        return node is not None and node.alive

    def nodes(self) -> Iterator[Node]:
        """All registered nodes, dead or alive, in id order."""
        for node_id in sorted(self._nodes):
            yield self._nodes[node_id]

    def alive_nodes(self) -> Iterator[Node]:
        for node_id in self.alive_ids():
            yield self._nodes[node_id]

    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def alive_ids(self) -> List[int]:
        """Sorted ids of live nodes (cached between population changes)."""
        if self._alive_cache is None:
            self._alive_cache = sorted(
                node_id for node_id, node in self._nodes.items() if node.alive
            )
        return self._alive_cache

    def random_alive(
        self, rng: random.Random, exclude: Optional[int] = None
    ) -> Optional[Node]:
        """A uniformly random live node, or ``None`` if none qualifies.

        ``exclude`` removes one id from the draw (a node never gossips with
        itself). This is the oracle used to bootstrap peer-sampling views,
        mirroring PeerSim's ``WireKOut`` initializers.
        """
        alive = self.alive_ids()
        if not alive:
            return None
        if exclude is None:
            return self._nodes[rng.choice(alive)]
        if len(alive) == 1 and alive[0] == exclude:
            return None
        # Bounded rejection sampling: with >= 2 live candidates the excluded
        # id is hit with p <= 1/2 per draw, so 8 draws fail with p <= 2^-8.
        # The deterministic fallback keeps the method total (no unbounded
        # retry loop on adversarial rng streams) at the cost of one filtered
        # copy in the rare miss case.
        for _ in range(8):
            node_id = rng.choice(alive)
            if node_id != exclude:
                return self._nodes[node_id]
        candidates = [node_id for node_id in alive if node_id != exclude]
        return self._nodes[rng.choice(candidates)]

    # -- sizes ------------------------------------------------------------------

    def size(self) -> int:
        return len(self._nodes)

    def alive_count(self) -> int:
        return len(self.alive_ids())

    def count_where(self, predicate: Callable[[Node], bool]) -> int:
        return sum(1 for node in self._nodes.values() if predicate(node))

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"Network(size={self.size()}, alive={self.alive_count()})"
