"""Round-based gossip network simulator (the PeerSim substrate equivalent).

The paper's evaluation runs in the PeerSim simulator's cycle-driven mode: in
each *round* (cycle) every live node executes one active step of each protocol
in its stack, in a random order, with synchronous message exchanges. This
package reimplements that execution model:

- :class:`~repro.sim.node.Node` — a simulated node carrying a named protocol
  stack and application attributes;
- :class:`~repro.sim.network.Network` — the node population, with churn
  support (joins, crashes, revivals);
- :class:`~repro.sim.transport.Transport` — synchronous message accounting;
  every gossip exchange reports its payload so byte-level bandwidth series
  (paper Fig. 4) can be extracted per protocol layer and per round;
- :class:`~repro.sim.engine.Engine` — the round scheduler, driving controls
  (churn, initializers), node steps, and observers;
- :mod:`~repro.sim.rng` — deterministic named random streams derived from a
  single master seed, so every experiment is exactly reproducible;
- :mod:`~repro.sim.controls` / :mod:`~repro.sim.churn` — round-boundary hooks
  and failure injection.
"""

from repro.sim.config import GossipParams, SimulationConfig, TransportCosts
from repro.sim.engine import Engine, RoundContext
from repro.sim.network import Network
from repro.sim.node import Node
from repro.sim.protocol import Protocol
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport

__all__ = [
    "Engine",
    "GossipParams",
    "Network",
    "Node",
    "Protocol",
    "RandomStreams",
    "RoundContext",
    "SimulationConfig",
    "Transport",
    "TransportCosts",
]
