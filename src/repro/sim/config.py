"""Configuration objects for the simulator and the gossip substrate.

The paper's evaluation configures PeerSim through a properties file; we expose
the same knobs as validated dataclasses. All validation happens eagerly in
``__post_init__`` so a bad experiment fails before any simulation time is
spent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class GossipParams:
    """Parameters shared by the gossip protocols in :mod:`repro.gossip`.

    Attributes
    ----------
    view_size:
        Maximum number of descriptors a node keeps in its partial view
        (PeerSim / peer-sampling parameter *C*).
    gossip_size:
        Number of descriptors shipped per gossip message (*m* in T-Man,
        the buffer size in the peer-sampling framework).
    healer:
        Peer-sampling *H* parameter — how many of the oldest descriptors are
        discarded after each exchange. Larger values heal dead links faster.
    swapper:
        Peer-sampling *S* parameter — how many sent descriptors are discarded
        in favour of received ones (controls view mixing).
    backend:
        Partial-view representation: ``"object"`` (the boxed-descriptor
        :class:`~repro.gossip.views.PartialView`, default) or ``"columnar"``
        (the array-backed :class:`~repro.scale.columnar.ColumnarView`).
        The two are observably identical — selecting a backend never
        changes a digest — so this is purely a memory/speed knob.
    """

    view_size: int = 12
    gossip_size: int = 6
    healer: int = 1
    swapper: int = 4
    backend: str = "object"

    def __post_init__(self) -> None:
        if self.view_size < 1:
            raise ConfigurationError(f"view_size must be >= 1, got {self.view_size}")
        if self.backend not in ("object", "columnar"):
            raise ConfigurationError(
                f"backend must be 'object' or 'columnar', got {self.backend!r}"
            )
        if not 1 <= self.gossip_size <= self.view_size + 1:
            raise ConfigurationError(
                f"gossip_size must be in [1, view_size + 1], got {self.gossip_size}"
            )
        if self.healer < 0 or self.swapper < 0:
            raise ConfigurationError("healer and swapper must be >= 0")
        if self.healer + self.swapper > self.view_size:
            raise ConfigurationError(
                "healer + swapper must not exceed view_size "
                f"({self.healer} + {self.swapper} > {self.view_size})"
            )


@dataclass(frozen=True)
class TransportCosts:
    """Byte-cost model used for bandwidth accounting (paper Fig. 4).

    A gossip message carries a fixed header plus one *descriptor* per view
    entry shipped. A descriptor serializes a node identifier, a logical age,
    and a layer profile (component name hash, rank, coordinate) — 24 bytes is
    the size of that record in a compact binary encoding.
    """

    header_bytes: int = 16
    descriptor_bytes: int = 24

    def __post_init__(self) -> None:
        if self.header_bytes < 0 or self.descriptor_bytes < 0:
            raise ConfigurationError("byte costs must be >= 0")

    def message_bytes(self, n_descriptors: int) -> int:
        """Size in bytes of one message carrying ``n_descriptors`` entries."""
        if n_descriptors < 0:
            raise ConfigurationError("n_descriptors must be >= 0")
        return self.header_bytes + n_descriptors * self.descriptor_bytes


@dataclass(frozen=True)
class SimulationConfig:
    """Top-level experiment configuration.

    Attributes
    ----------
    master_seed:
        Root of every random stream in the run (see :mod:`repro.sim.rng`).
    max_rounds:
        Hard budget on simulated rounds.
    gossip:
        Default gossip parameters, used by layers that are not given
        layer-specific overrides.
    costs:
        Byte-cost model for bandwidth accounting.
    """

    master_seed: int = 1
    max_rounds: int = 120
    gossip: GossipParams = field(default_factory=GossipParams)
    costs: TransportCosts = field(default_factory=TransportCosts)

    def __post_init__(self) -> None:
        if self.max_rounds < 1:
            raise ConfigurationError(f"max_rounds must be >= 1, got {self.max_rounds}")
