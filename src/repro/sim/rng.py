"""Deterministic random-number streams.

All stochastic decisions in the framework (gossip partner choice, view
subsampling, churn, node ordering) draw from named streams derived from a
single master seed. Two runs with the same master seed and the same sequence
of stream requests produce identical results, which makes the multi-seed
averaging used in the paper's evaluation honest: seed *s* always denotes the
same random universe.

Streams are identified by a tuple of hashable names, typically
``(layer_name, node_id)``, so adding a node or a protocol never perturbs the
randomness consumed by unrelated parts of the simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Hashable, Tuple


def derive_seed(master_seed: int, *names: Hashable) -> int:
    """Derive a child seed from ``master_seed`` and a tuple of stream names.

    The derivation uses SHA-256 over a canonical encoding, so it is stable
    across Python versions and processes (unlike the builtin ``hash``).
    """
    material = repr((master_seed,) + names).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big")


def spawn_seeds(master_seed: int, count: int, *names: Hashable) -> Tuple[int, ...]:
    """``count`` independent child seeds rooted at ``(master_seed, names)``.

    The per-seed derivation used by multi-seed harnesses: each child seed is
    a pure function of the master seed, the harness's stream names, and the
    run index — so a parallel fan-out across processes and a serial loop
    enumerate the *same* random universes in the same order.
    """
    return tuple(
        derive_seed(master_seed, "spawn", *names, index) for index in range(count)
    )


class RandomStreams:
    """A registry of named :class:`random.Random` streams under one master seed.

    Example
    -------
    >>> streams = RandomStreams(42)
    >>> a = streams.stream("vicinity", 7)
    >>> b = streams.stream("vicinity", 7)
    >>> a is b
    True
    """

    def __init__(self, master_seed: int):
        self.master_seed = int(master_seed)
        self._streams: Dict[Tuple[Hashable, ...], random.Random] = {}

    def stream(self, *names: Hashable) -> random.Random:
        """Return the (cached) stream identified by ``names``."""
        key = tuple(names)
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, *names))
            self._streams[key] = rng
        return rng

    def fork(self, *names: Hashable) -> "RandomStreams":
        """Return an independent child registry rooted at ``names``.

        Useful to give a sub-system (e.g. a churn model) its own seed space
        that cannot collide with protocol streams.
        """
        return RandomStreams(derive_seed(self.master_seed, "fork", *names))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(master_seed={self.master_seed}, streams={len(self._streams)})"
