"""Monolithic (single-overlay) topology construction baselines.

Traditional self-organizing overlays "rely on a single user-defined distance
function to connect nodes into a target structure" (paper §2.2). Two
baselines live here:

- the *elementary* baseline: one Vicinity instance building one elementary
  shape over the whole population — what the figures call "Elementary
  Topology", the reference the runtime's sub-procedures are compared to;
- the *monolithic composite*: the naive attempt to encode a whole assembly
  into one distance function, which the paper argues scales poorly; the
  ablation bench measures by how much.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.assembly import Assembly
from repro.core.roles import RoleMap
from repro.gossip.peer_sampling import PeerSampling
from repro.gossip.selection import Proximity
from repro.gossip.vicinity import Vicinity
from repro.shapes.base import Shape
from repro.sim.config import GossipParams, TransportCosts
from repro.runtime.api import RunnerConfig, make_runner
from repro.runtime.engines import RoundRunner
from repro.sim.network import Network
from repro.sim.rng import RandomStreams
from repro.sim.transport import Transport

_PS_LAYER = "peer_sampling"
_OVERLAY_LAYER = "overlay"


@dataclass
class ElementaryResult:
    """Outcome of one elementary-baseline run."""

    rounds_to_converge: Optional[int]
    executed: int
    bytes_per_node_per_round: List[float]


def _deploy_elementary(
    shape: Shape,
    n_nodes: int,
    seed: int,
    params: Optional[GossipParams] = None,
    costs: Optional[TransportCosts] = None,
    random_feed: bool = True,
) -> Tuple[Network, RoundRunner, Shape, Dict[int, int]]:
    params = params or GossipParams()
    network = Network()
    streams = RandomStreams(seed)
    transport = Transport(costs or TransportCosts())
    nodes = network.create_nodes(n_nodes)
    metric = shape.metric(n_nodes)
    proximity = Proximity(metric)
    view_size = shape.view_size(n_nodes, params.view_size)
    sized = GossipParams(
        view_size=view_size,
        gossip_size=min(params.gossip_size, view_size + 1),
        healer=params.healer,
        swapper=params.swapper,
        backend=params.backend,
    )
    rank_of: Dict[int, int] = {}
    for rank, node in enumerate(nodes):
        rank_of[node.node_id] = rank
        peer_sampling = PeerSampling(node.node_id, params, layer=_PS_LAYER)
        peer_sampling.bootstrap(streams.stream("bootstrap", node.node_id), network)
        node.attach(_PS_LAYER, peer_sampling)
        node.attach(
            _OVERLAY_LAYER,
            Vicinity(
                node.node_id,
                profile=shape.coordinate(rank, n_nodes),
                proximity=proximity,
                params=sized,
                layer=_OVERLAY_LAYER,
                random_layer=_PS_LAYER if random_feed else None,
                target_degree=max(1, shape.rank_degree(rank, n_nodes)),
            ),
        )
    engine = make_runner(
        RunnerConfig(kind="round", n_nodes=n_nodes, seed=seed),
        network=network,
        transport=transport,
        streams=streams,
    )
    return network, engine, shape, rank_of


def _shape_converged(
    network: Network, shape: Shape, rank_of: Dict[int, int], n_nodes: int
) -> bool:
    adjacency: Dict[int, List[int]] = {}
    for node in network.alive_nodes():
        rank = rank_of[node.node_id]
        adjacency[rank] = [
            rank_of[other]
            for other in node.protocol(_OVERLAY_LAYER).neighbors()
            if other in rank_of
        ]
    return shape.converged(adjacency, n_nodes)


def elementary_convergence(
    shape: Shape,
    n_nodes: int,
    seed: int,
    max_rounds: int = 120,
    params: Optional[GossipParams] = None,
    random_feed: bool = True,
) -> ElementaryResult:
    """Rounds for one monolithic Vicinity to build ``shape`` over ``n_nodes``.

    ``random_feed=False`` disables the peer-sampling candidate feed — the
    "no pinch of randomness" ablation (A2 in DESIGN.md).
    """
    network, engine, shape, rank_of = _deploy_elementary(
        shape, n_nodes, seed, params, random_feed=random_feed
    )
    converged_at: Optional[int] = None
    for round_index in range(max_rounds):
        engine.run_round()
        if _shape_converged(network, shape, rank_of, n_nodes):
            converged_at = round_index + 1
            break
    executed = engine.round
    per_node = [
        value / n_nodes
        for value in engine.transport.bytes_series(_OVERLAY_LAYER, executed)
    ]
    return ElementaryResult(
        rounds_to_converge=converged_at,
        executed=executed,
        bytes_per_node_per_round=per_node,
    )


def elementary_bandwidth(
    shape: Shape,
    n_nodes: int,
    seed: int,
    rounds: int,
    params: Optional[GossipParams] = None,
) -> List[float]:
    """Per-node per-round byte series of the elementary baseline."""
    network, engine, _, _ = _deploy_elementary(shape, n_nodes, seed, params)
    engine.run(rounds)
    return [
        value / n_nodes
        for value in engine.transport.bytes_series(_OVERLAY_LAYER, rounds)
    ]


class _CompositeProximity(Proximity):
    """One distance function for a whole assembly (the monolithic attempt).

    Profiles are ``(component_index, rank, coord)``. Same-component pairs
    use the component shape's metric; cross-component pairs cost a large
    constant so intra-component structure dominates — the best one can do
    without per-component overlays and ports.
    """

    CROSS_COMPONENT_PENALTY = 1e6

    def __init__(self, metrics: List):
        self._metrics = metrics

    def distance(self, a, b) -> float:
        comp_a, _, coord_a = a
        comp_b, _, coord_b = b
        if comp_a != comp_b:
            return self.CROSS_COMPONENT_PENALTY
        return self._metrics[comp_a](coord_a, coord_b)


class MonolithicComposite:
    """Build a whole assembly with one Vicinity instance per node.

    Demonstrates the monolithic design the paper moves beyond: there is no
    UO1 to concentrate same-component candidates, no ports, no links — each
    node must fish its shape neighbours out of the global candidate stream.
    :meth:`run` measures rounds until every component's shape is realized
    (links cannot be expressed at all, which is the point).
    """

    def __init__(
        self,
        assembly: Assembly,
        n_nodes: int,
        seed: int,
        params: Optional[GossipParams] = None,
    ):
        self.assembly = assembly
        self.params = params or GossipParams()
        self.seed = seed
        self.network = Network()
        self.streams = RandomStreams(seed)
        self.transport = Transport()
        self.network.create_nodes(n_nodes)
        self.role_map: RoleMap = assembly.assign_roles(self.network.node_ids())
        component_names = list(assembly.components)
        component_index = {name: i for i, name in enumerate(component_names)}
        sizes = {
            name: self.role_map.component_size(name) for name in component_names
        }
        metrics = [
            assembly.components[name].shape.metric(sizes[name])
            for name in component_names
        ]
        proximity = _CompositeProximity(metrics)
        max_degree = max(
            assembly.components[name].shape.degree(sizes[name])
            for name in component_names
        )
        view_size = max(self.params.view_size, max_degree + 2)
        sized = GossipParams(
            view_size=view_size,
            gossip_size=min(self.params.gossip_size, view_size + 1),
            healer=self.params.healer,
            swapper=self.params.swapper,
            backend=self.params.backend,
        )
        for node in self.network.nodes():
            role = self.role_map.role(node.node_id)
            shape = assembly.components[role.component].shape
            peer_sampling = PeerSampling(node.node_id, self.params, layer=_PS_LAYER)
            peer_sampling.bootstrap(
                self.streams.stream("bootstrap", node.node_id), self.network
            )
            node.attach(_PS_LAYER, peer_sampling)
            node.attach(
                _OVERLAY_LAYER,
                Vicinity(
                    node.node_id,
                    profile=(
                        component_index[role.component],
                        role.rank,
                        shape.coordinate(role.rank, role.comp_size),
                    ),
                    proximity=proximity,
                    params=sized,
                    layer=_OVERLAY_LAYER,
                    random_layer=_PS_LAYER,
                    target_degree=max(
                        1, shape.rank_degree(role.rank, role.comp_size)
                    ),
                ),
            )
        self.engine = make_runner(
            RunnerConfig(kind="round", n_nodes=len(self.network.node_ids()), seed=self.seed),
            network=self.network,
            transport=self.transport,
            streams=self.streams,
        )

    def _converged(self) -> bool:
        for name, spec in self.assembly.components.items():
            members = self.role_map.members(name)
            size = len(members)
            rank_of = {node_id: rank for node_id, rank in members}
            adjacency: Dict[int, List[int]] = {}
            for node_id, rank in members:
                protocol = self.network.node(node_id).protocol(_OVERLAY_LAYER)
                adjacency[rank] = [
                    rank_of[other]
                    for other in protocol.neighbors()
                    if other in rank_of
                ]
            if not spec.shape.converged(adjacency, size):
                return False
        return True

    def run(self, max_rounds: int = 120) -> Optional[int]:
        """Rounds until all component shapes are realized, or ``None``."""
        for round_index in range(max_rounds):
            self.engine.run_round()
            if self._converged():
                return round_index + 1
        return None
