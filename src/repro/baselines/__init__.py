"""Baselines the paper's figures compare against.

- :func:`~repro.baselines.monolithic.elementary_convergence` — the
  "Elementary Topology" series of Figures 2 and 3: a single traditional
  self-organizing overlay (plain Vicinity over peer sampling) building one
  elementary shape over the whole population;
- :class:`~repro.baselines.monolithic.MonolithicComposite` — the
  single-distance-function attempt at a *complex* topology the paper argues
  against ("more complex combinations, such as a star of cliques, are more
  problematic"), used by the ablation benches to quantify that claim.
"""

from repro.baselines.monolithic import (
    MonolithicComposite,
    elementary_bandwidth,
    elementary_convergence,
)

__all__ = [
    "MonolithicComposite",
    "elementary_bandwidth",
    "elementary_convergence",
]
