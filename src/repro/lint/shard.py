"""Shard-safety analysis (``SHD0xx`` rules).

ROADMAP item 1 splits the round engine across worker shards; the
correctness gate is digest identity — a sharded run must realize the same
overlay, byte for byte, as a serial one. Three statically detectable
hazards break that gate before any sharding code exists, so this pass
forbids them now:

- ``SHD001`` — a round hot path mutates module-level mutable state. A
  module global is process-wide: under one process every node shares it in
  a defined order; under shards each worker gets its own copy mutated in
  its own order, and the copies silently diverge.
- ``SHD002`` — an RNG cached at module or class scope. The ``spawn_seeds``
  ownership rule (see :mod:`repro.sim.rng` and docs/performance.md) makes
  every RNG derive from per-node/per-stream seeds threaded through ``ctx``;
  an RNG living outside that discipline is consumed in arrival order, which
  differs between serial and sharded schedules.
- ``SHD003`` — a mutable default argument in the gossip/heal/obs layers.
  The default is evaluated once and aliased by every instance on the
  shard, so per-node state leaks across nodes — and, after sharding,
  *which* nodes share it depends on shard assignment.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.diagnostics import ERROR, Diagnostic
from repro.lint.callgraph import CallGraph
from repro.lint.symbols import FunctionInfo, ModuleInfo, SymbolTable
from repro.lint.taint import _external_target, _own_nodes

#: Layers whose function signatures the mutable-default rule covers.
DEFAULT_ARG_PATHS = ("gossip/", "heal/", "obs/")

#: Method names that mutate a list/dict/set receiver in place.
_MUTATORS = {
    "append",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "extend",
    "insert",
    "remove",
    "discard",
    "appendleft",
    "popleft",
}

#: Constructor names whose value is mutable when bound at module scope.
_MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "OrderedDict", "Counter", "deque"}

#: RNG-constructing callables that must not be cached at module/class scope.
_RNG_NAMES = {"Random", "SystemRandom", "RandomStreams"}
_RNG_METHODS = {"stream", "fork"}


def _is_mutable_value(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _module_mutables(module: ModuleInfo) -> Dict[str, int]:
    """Module-level names bound to mutable containers → definition line."""
    mutables: Dict[str, int] = {}
    for stmt in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None or not _is_mutable_value(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                mutables.setdefault(target.id, stmt.lineno)
    return mutables


def _local_bindings(func_node: ast.AST) -> Tuple[Set[str], Set[str]]:
    """(locally bound names, names declared ``global``) of a function."""
    bound: Set[str] = set()
    globals_: Set[str] = set()
    args = func_node.args
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        bound.add(arg.arg)
    for node in _own_nodes(func_node):
        if isinstance(node, ast.Global):
            globals_.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                for name in _target_names(target):
                    bound.add(name)
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.target
            for name in _target_names(target):
                bound.add(name)
        elif isinstance(node, ast.withitem) and node.optional_vars is not None:
            for name in _target_names(node.optional_vars):
                bound.add(name)
        elif isinstance(node, ast.NamedExpr):
            bound.add(node.target.id)
    return bound - globals_, globals_


def _target_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    return []


def _global_mutations(
    func: FunctionInfo, mutables: Dict[str, int]
) -> List[Tuple[ast.AST, str, str]]:
    """(site, name, how) for every mutation of a module global in ``func``."""
    local, declared_global = _local_bindings(func.node)
    visible = {
        name for name in mutables if name in declared_global or name not in local
    }
    if not visible and not declared_global:
        return []
    found: List[Tuple[ast.AST, str, str]] = []
    for node in _own_nodes(func.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and receiver.id in visible
                and node.func.attr in _MUTATORS
            ):
                found.append((node, receiver.id, f".{node.func.attr}()"))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in visible
                ):
                    found.append((node, target.value.id, "[...] assignment"))
                elif (
                    isinstance(target, ast.Name)
                    and target.id in declared_global
                ):
                    found.append((node, target.id, "global rebind"))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in visible
                ):
                    found.append((node, target.value.id, "del [...]"))
    return found


def _is_rng_value(module: ModuleInfo, node: ast.expr) -> bool:
    if not isinstance(node, ast.Call):
        return False
    target = _external_target(module, node.func)
    if target in ("random.Random", "random.SystemRandom"):
        return True
    func = node.func
    if isinstance(func, ast.Name) and func.id in _RNG_NAMES:
        return True
    return isinstance(func, ast.Attribute) and func.attr in _RNG_METHODS


def shard_check(
    table: SymbolTable,
    graph: CallGraph,
    hot: Set[str],
) -> List[Diagnostic]:
    """All SHD diagnostics for the project."""
    diagnostics: List[Diagnostic] = []
    # SHD001 — module-global mutation from round hot paths.
    for module in (table.modules[name] for name in sorted(table.modules)):
        mutables = _module_mutables(module)
        if not mutables:
            continue
        for func in sorted(module.functions.values(), key=lambda f: f.qname):
            if func.qname not in hot:
                continue
            for site, name, how in _global_mutations(func, mutables):
                diagnostics.append(
                    Diagnostic(
                        code="SHD001",
                        severity=ERROR,
                        message=(
                            f"round hot path {func.display()} mutates "
                            f"module-level mutable {name!r} ({how}); shared "
                            f"state diverges across engine shards — thread it "
                            f"through ctx or per-node state instead"
                        ),
                        file=func.file,
                        line=getattr(site, "lineno", func.line),
                        column=getattr(site, "col_offset", -1) + 1,
                    )
                )
    # SHD002 — RNG cached at module or class scope.
    for module in (table.modules[name] for name in sorted(table.modules)):
        if module.rel_path == "sim/rng.py":
            continue  # the stream factory itself
        for scope_name, body in _class_and_module_scopes(module):
            for stmt in body:
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                value = stmt.value
                if value is None or not _is_rng_value(module, value):
                    continue
                where = f"class {scope_name}" if scope_name else "module"
                diagnostics.append(
                    Diagnostic(
                        code="SHD002",
                        severity=ERROR,
                        message=(
                            f"RNG constructed at {where} scope in "
                            f"{module.rel_path} outlives the per-node/"
                            f"per-shard ctx; derive it from seed streams "
                            f"(spawn_seeds / RandomStreams.stream) at use "
                            f"time instead"
                        ),
                        file=module.file,
                        line=stmt.lineno,
                        column=stmt.col_offset + 1,
                    )
                )
    # SHD003 — mutable default arguments in the gossip/heal/obs layers.
    for func in table.iter_functions():
        if not func.rel_path.startswith(DEFAULT_ARG_PATHS):
            continue
        args = func.node.args
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if _is_mutable_value(default):
                diagnostics.append(
                    Diagnostic(
                        code="SHD003",
                        severity=ERROR,
                        message=(
                            f"mutable default argument in {func.display()} "
                            f"aliases one container across every instance "
                            f"(and, sharded, across whichever nodes land on "
                            f"the shard); default to None and allocate per "
                            f"call"
                        ),
                        file=func.file,
                        line=getattr(default, "lineno", func.line),
                        column=getattr(default, "col_offset", -1) + 1,
                    )
                )
    return diagnostics


def _class_and_module_scopes(module: ModuleInfo):
    """(class-name-or-None, statement list) for module and class bodies."""
    yield None, module.tree.body
    for stmt in module.tree.body:
        if isinstance(stmt, ast.ClassDef):
            yield stmt.name, stmt.body
