"""Interprocedural nondeterminism taint propagation (``DET1xx`` rules).

The per-file ``DET0xx`` rules check *sites*; these rules check *reach*:
a nondeterminism source anywhere in the project is an error if any engine
round entry point (:mod:`repro.lint.roots`) can transitively call into it
— even when every intermediate call site looks clean, and even when the
source lives in a package the per-file path scoping does not cover. This
is the property a sharded multi-worker engine needs: whatever executes
under a round must be a pure function of ``(config, seed, round)``, or
serial and sharded runs stop producing identical digests.

Source categories, with the code each maps to:

========================  =======  ==========================================
category                  code     examples
========================  =======  ==========================================
wall clock                DET101   ``time.time()``, ``datetime.now()``
nondeterministic RNG      DET102   ``random.random()``, unseeded ``Random()``
unordered iteration       DET103   ``for x in some_set``, ``d.popitem()``
object identity           DET104   ``id(obj)`` (CPython heap addresses)
process environment       DET105   ``os.environ[...]``, ``os.getenv(...)``
========================  =======  ==========================================

Sanctioned sites keep their exemptions: ``sim/rng.py`` may construct RNGs
(it is where streams are derived), ``perf/bench.py`` and ``obs/spans.py``
may read the clock (the timing harness and the observability subsystem's
single clock site).

Findings anchor at the *first call edge* of the shortest root-to-source
chain — the call site that looks innocent — and the message spells out the
whole chain down to the source location. A source sitting directly inside
a root function is left to its per-file twin rule when one covers that
path, and reported here only when none does.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.diagnostics import ERROR, Diagnostic
from repro.lint.callgraph import CallGraph, CallSite, _dotted_of
from repro.lint.determinism import (
    ORDERING_PATHS,
    RNG_MODULE,
    _WALLCLOCK_DATETIME_ATTRS,
    _WALLCLOCK_TIME_ATTRS,
    _wallclock_forbidden,
)
from repro.lint.symbols import (
    EXTERNAL_PREFIX,
    FunctionInfo,
    ModuleInfo,
    SymbolTable,
)

#: Files allowed to read the wall clock (see docs/lint.md / DET003). The
#: live UDP runtime and its swarm harness are wall-clock-*paced* by design
#: (round tickers, join deadlines, supervisor polls); their clock reads are
#: confined to the reviewed ``_now``/``_sleep`` helpers and never feed
#: protocol state, which stays under full taint scrutiny via the
#: ``runtime/net.py`` roots.
CLOCK_SANCTIONED = (
    "perf/bench.py",
    "obs/spans.py",
    "runtime/net.py",
    "runtime/swarm.py",
    # The telemetry HTTP thread (stdlib http.server reads the clock for
    # request logging/timeouts) and the Lamport clock module (purely
    # logical, but lives with the runtime's clock discipline) are
    # observation-side by construction: neither feeds protocol state.
    "runtime/telemetry.py",
    "runtime/lamport.py",
)

#: category → diagnostic code.
CATEGORY_CODES = {
    "wallclock": "DET101",
    "rng": "DET102",
    "unordered": "DET103",
    "object-id": "DET104",
    "environ": "DET105",
}

_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate", "iter", "reversed"}


@dataclass(frozen=True)
class Source:
    """One direct nondeterminism source site inside a function."""

    category: str
    func: str  # qname of the containing function
    rel_path: str
    file: str
    line: int
    column: int
    description: str


def _external_target(module: ModuleInfo, node: ast.expr) -> Optional[str]:
    """The stdlib dotted name a call target denotes, if resolvable.

    ``time.perf_counter`` → ``time.perf_counter`` (via ``import time``),
    ``perf_counter`` → ``time.perf_counter`` (via a ``from`` import),
    ``dt.datetime.now`` → ``datetime.datetime.now``.
    """
    dotted = _dotted_of(node) if not isinstance(node, ast.Name) else node.id
    if dotted is None:
        return None
    head, _, tail = dotted.partition(".")
    target = module.imports.get(head)
    if target is None or not target.startswith(EXTERNAL_PREFIX):
        return None
    base = target[len(EXTERNAL_PREFIX) :]
    return f"{base}.{tail}" if tail else base


def _is_set_valued(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _SourceScanner:
    """Direct sources of one function body (nested defs excluded)."""

    def __init__(self, table: SymbolTable):
        self.table = table

    def scan(self, func: FunctionInfo) -> List[Source]:
        module = self.table.modules.get(func.module)
        if module is None:
            return []
        sources: List[Source] = []

        def emit(category: str, node: ast.AST, description: str) -> None:
            sources.append(
                Source(
                    category=category,
                    func=func.qname,
                    rel_path=func.rel_path,
                    file=func.file,
                    line=getattr(node, "lineno", func.line),
                    column=getattr(node, "col_offset", -1) + 1,
                    description=description,
                )
            )

        clock_ok = func.rel_path in CLOCK_SANCTIONED
        rng_ok = func.rel_path == RNG_MODULE
        for node in _own_nodes(func.node):
            if isinstance(node, ast.Call):
                self._scan_call(node, module, emit, clock_ok, rng_ok)
            elif isinstance(node, ast.For):
                if _is_set_valued(node.iter):
                    emit("unordered", node.iter, "iteration over a bare set")
            elif isinstance(node, ast.comprehension):
                if _is_set_valued(node.iter):
                    emit(
                        "unordered",
                        node.iter,
                        "comprehension over a bare set",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "environ":
                target = _external_target(module, node)
                if target == "os.environ":
                    emit("environ", node, "os.environ read")
        return sources

    def _scan_call(self, node, module, emit, clock_ok, rng_ok) -> None:
        target = _external_target(module, node.func)
        if target is not None:
            base, _, attr = target.partition(".")
            if base == "time" and attr in _WALLCLOCK_TIME_ATTRS and not clock_ok:
                emit("wallclock", node, f"wall-clock read time.{attr}()")
            elif (
                base == "datetime"
                and target.split(".")[-1] in _WALLCLOCK_DATETIME_ATTRS
                and not clock_ok
            ):
                emit("wallclock", node, f"wall-clock read {target}()")
            elif base == "random" and not rng_ok:
                fn = attr or base
                if fn == "SystemRandom":
                    emit("rng", node, "OS-seeded random.SystemRandom()")
                elif fn == "Random":
                    if not node.args and not node.keywords:
                        emit("rng", node, "unseeded random.Random()")
                elif attr:
                    emit("rng", node, f"interpreter-global random.{attr}()")
            elif base == "os" and attr == "getenv":
                emit("environ", node, "os.getenv() read")
        func_node = node.func
        if isinstance(func_node, ast.Name):
            if func_node.id == "id" and node.args:
                emit("object-id", node, "id() object identity")
            elif (
                func_node.id in _ORDER_SENSITIVE_BUILTINS
                and node.args
                and _is_set_valued(node.args[0])
            ):
                emit(
                    "unordered",
                    node,
                    f"{func_node.id}() materializes a bare set in hash order",
                )
        elif isinstance(func_node, ast.Attribute) and func_node.attr == "popitem":
            emit("unordered", node, "dict.popitem() insertion-order coupling")


def _own_nodes(func_node: ast.AST) -> Iterable[ast.AST]:
    """Every node of the function body, nested def/class bodies excluded."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func_node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _per_file_twin_covers(category: str, rel_path: str) -> bool:
    """Would a per-file DET0xx rule already flag this source at its site?"""
    if category == "wallclock":
        return _wallclock_forbidden(rel_path)
    if category == "rng":
        return rel_path != RNG_MODULE  # DET001/DET002 apply everywhere else
    if category == "unordered":
        return any(rel_path.startswith(p) for p in ORDERING_PATHS)
    return False  # object-id / environ have no per-file twin


def collect_sources(table: SymbolTable) -> List[Source]:
    """Every direct nondeterminism source in the project, sorted."""
    scanner = _SourceScanner(table)
    sources: List[Source] = []
    for func in table.iter_functions():
        sources.extend(scanner.scan(func))
    return sorted(sources, key=lambda s: (s.rel_path, s.line, s.column, s.category))


def taint_check(
    table: SymbolTable,
    graph: CallGraph,
    roots: Sequence[str],
    hot: Optional[Set[str]] = None,
) -> List[Diagnostic]:
    """DET1xx diagnostics: sources reachable from engine-round roots."""
    if hot is None:
        hot = graph.reachable_from(roots)
    diagnostics: List[Diagnostic] = []
    seen: Set[tuple] = set()
    root_set = set(roots)
    for source in collect_sources(table):
        if source.func not in hot:
            continue
        code = CATEGORY_CODES[source.category]
        key = (code, source.rel_path, source.line, source.column)
        if key in seen:
            continue
        seen.add(key)
        path = graph.shortest_path(root_set, source.func)
        if not path and source.func in root_set:
            # Direct source inside a root: the per-file twin owns it when
            # its path scoping applies; report here only the blind spots.
            if _per_file_twin_covers(source.category, source.rel_path):
                continue
            root_info = table.functions[source.func]
            diagnostics.append(
                Diagnostic(
                    code=code,
                    severity=ERROR,
                    message=(
                        f"{source.description} directly in round hot path "
                        f"{root_info.display()}"
                    ),
                    file=source.file,
                    line=source.line,
                    column=source.column,
                )
            )
            continue
        if not path:
            continue  # reachable only through edges BFS from roots missed
        chain = _format_chain(table, path)
        first = path[0]
        caller = table.functions[first.caller]
        diagnostics.append(
            Diagnostic(
                code=code,
                severity=ERROR,
                message=(
                    f"round hot path reaches {source.description} at "
                    f"{source.rel_path}:{source.line} via {chain}"
                ),
                file=caller.file,
                line=first.line,
                column=first.column,
            )
        )
    return diagnostics


def _format_chain(table: SymbolTable, path: List[CallSite]) -> str:
    names = [table.functions[path[0].caller].display()]
    names.extend(table.functions[site.callee].display() for site in path)
    return " -> ".join(names)
