"""Baseline (suppression) files: adopt deep linting on a living tree.

A baseline freezes the *known* findings so the CI gate can be "zero new
errors" from day one, while the frozen debt is paid down deliberately:

1. ``repro lint --deep --write-baseline`` records every current finding in
   ``.repro-lint-baseline.json`` (commit it);
2. subsequent runs subtract baselined findings — only *new* ones fail;
3. when a baselined finding is fixed, its entry goes *stale*; the runner
   reports stale entries so the file shrinks monotonically (re-run
   ``--write-baseline`` after paying debt).

Entries match on ``(code, file, line)`` with the file normalized relative
to the baseline's own directory, so the file is stable across checkouts.
The recorded message is context for reviewers, not part of the match.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.diagnostics import Diagnostic
from repro.errors import ConfigurationError

#: Conventional baseline path, looked up relative to the working directory.
DEFAULT_BASELINE = ".repro-lint-baseline.json"

_VERSION = 1


def _normalize(file: Optional[str], anchor_dir: str) -> str:
    if not file:
        return ""
    path = os.path.abspath(file)
    try:
        return os.path.relpath(path, anchor_dir).replace(os.sep, "/")
    except ValueError:  # different drive on Windows
        return path.replace(os.sep, "/")


def _fingerprint(diag: Diagnostic, anchor_dir: str) -> Tuple[str, str, int]:
    return (diag.code, _normalize(diag.file, anchor_dir), diag.line)


class Baseline:
    """A loaded suppression file."""

    def __init__(self, path: str, entries: List[Dict]):
        self.path = path
        self.anchor_dir = os.path.dirname(os.path.abspath(path)) or "."
        self.entries = entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def load(cls, path: str) -> "Baseline":
        """Parse a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls(path, [])
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise ConfigurationError(f"unreadable baseline {path!r}: {exc}") from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise ConfigurationError(
                f"baseline {path!r} is not a repro-lint baseline document"
            )
        return cls(path, list(payload["entries"]))

    def apply(
        self, diagnostics: Iterable[Diagnostic]
    ) -> Tuple[List[Diagnostic], int, List[Dict]]:
        """(surviving diagnostics, suppressed count, stale entries)."""
        index: Dict[Tuple[str, str, int], Dict] = {
            (entry["code"], entry["file"], int(entry["line"])): entry
            for entry in self.entries
        }
        matched: set = set()
        surviving: List[Diagnostic] = []
        suppressed = 0
        for diag in diagnostics:
            key = _fingerprint(diag, self.anchor_dir)
            if key in index:
                matched.add(key)
                suppressed += 1
            else:
                surviving.append(diag)
        stale = [
            entry
            for key, entry in sorted(index.items())
            if key not in matched
        ]
        return surviving, suppressed, stale


def write_baseline(path: str, diagnostics: Iterable[Diagnostic]) -> int:
    """Freeze ``diagnostics`` into a baseline file; returns the entry count."""
    anchor_dir = os.path.dirname(os.path.abspath(path)) or "."
    entries = [
        {
            "code": diag.code,
            "file": _normalize(diag.file, anchor_dir),
            "line": diag.line,
            "message": diag.message,
        }
        for diag in sorted(diagnostics, key=Diagnostic.sort_key)
    ]
    payload = {"version": _VERSION, "tool": "repro-lint", "entries": entries}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return len(entries)
