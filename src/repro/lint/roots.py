"""Engine-round entry-point roots for the interprocedural passes.

A static call graph cannot see through the engine's dynamic dispatch —
``protocol.step(ctx)`` fans out to whatever layers a node stacks at
runtime, ``observer.observe(...)`` to whatever instruments are attached.
Rather than over-approximating every attribute call, the deep passes start
taint propagation from a declared set of *roots*: the functions the round
engine invokes every simulated round. Anything reachable from a root is on
the digest-identity critical path, so a nondeterminism source there breaks
serial/sharded equivalence (ROADMAP item 1) even when every individual
call site looks clean.

Patterns are ``<rel-path-glob>::<qualname-glob>`` (``fnmatch`` on both
halves), matched against every project function. This module is the
checked-in roots file for ``repro`` itself; ``repro lint --deep
--roots FILE`` swaps in a custom list (one pattern per line, ``#``
comments allowed) — fixture packages and downstream embedders declare
their own hot paths the same way.
"""

from __future__ import annotations

from fnmatch import fnmatch
from typing import Iterable, List, Sequence

from repro.lint.symbols import SymbolTable

#: The round engine's entry points, in engine-phase order: the round driver
#: itself, per-node protocol steps, round-boundary controls, the observe
#: phase, and the act (remediation) phase. Membership hooks (`on_join`,
#: `forget`) run inside churn controls and gossip exchanges.
DEFAULT_ROOTS: Sequence[str] = (
    "sim/engine.py::Engine.run_round",
    "sim/engine.py::Engine.run",
    # The sharded scale engine: its round driver runs in the parent, the
    # worker loop in pool processes — both sides of the barrier protocol
    # are digest-critical, and the worker is additionally subject to the
    # shard-safety (SHD) pass: mutating a module global there diverges
    # from the inline backend, which shares one interpreter.
    "scale/engine.py::ShardedEngine.run_round",
    "scale/engine.py::_shard_worker",
    # The live UDP runtime: its active round driver and the receive loop
    # both call straight into the gossip layers, so a nondeterminism
    # source reachable from either diverges a swarm node's protocol state
    # from its simulated twin. (The runtime's own wall-clock pacing is
    # confined to the reviewed _now/_sleep helpers.)
    "runtime/net.py::NetRunner.run_round",
    "runtime/net.py::NetEndpoint.on_datagram",
    "runtime/swarm.py::_swarm_node",
    # The per-node telemetry endpoint: the /metrics handler runs on the
    # daemon HTTP thread and reads collector state only — anything else
    # it could reach from there is a leak the taint pass must see.
    "runtime/telemetry.py::_MetricsHandler.do_GET",
    "*::*.step",
    "*::*.before_round",
    "*::*.after_round",
    "*::*.observe",
    "*::*.act",
    "*::*.on_join",
    "*::*.forget",
)


def parse_roots(text: str) -> List[str]:
    """Root patterns from a roots-file text (one per line, ``#`` comments)."""
    patterns: List[str] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            patterns.append(line)
    return patterns


def load_roots(path: str) -> List[str]:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_roots(handle.read())


def match_roots(
    table: SymbolTable, patterns: Iterable[str] = DEFAULT_ROOTS
) -> List[str]:
    """Qualified names of every project function matching a root pattern."""
    matched: List[str] = []
    compiled = []
    for pattern in patterns:
        path_glob, sep, name_glob = pattern.partition("::")
        if not sep:
            path_glob, name_glob = "*", pattern
        compiled.append((path_glob, name_glob))
    for func in table.iter_functions():
        for path_glob, name_glob in compiled:
            if fnmatch(func.rel_path, path_glob) and fnmatch(
                func.local_qname, name_glob
            ):
                matched.append(func.qname)
                break
    return matched
