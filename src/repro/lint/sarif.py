"""SARIF 2.1.0 reporter: lint findings for code-scanning UIs.

SARIF (Static Analysis Results Interchange Format) is what GitHub code
scanning, VS Code SARIF viewers, and most CI annotation tooling consume.
One run object carries the whole rule catalog as ``tool.driver.rules`` and
every finding as a ``result`` with a physical location, so ``repro lint
--deep --format sarif`` plugs straight into an upload step.
"""

from __future__ import annotations

import json
import os
from typing import Iterable, List

from repro.diagnostics import Diagnostic, sort_diagnostics
from repro.lint.catalog import CATALOG

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def _rules() -> List[dict]:
    rules = []
    for code in sorted(CATALOG):
        rule = CATALOG[code]
        rules.append(
            {
                "id": rule.code,
                "name": rule.title,
                "shortDescription": {"text": rule.title},
                "fullDescription": {"text": rule.rationale},
                "defaultConfiguration": {
                    "level": _LEVELS.get(rule.severity, "error")
                },
            }
        )
    return rules


def _uri(file: str) -> str:
    path = os.path.relpath(file) if os.path.isabs(file) else file
    if path.startswith(".."):
        path = file  # outside the working tree: keep it absolute
    return path.replace(os.sep, "/")


def sarif_document(diagnostics: Iterable[Diagnostic]) -> dict:
    """The SARIF document as a plain dict (for embedding or testing)."""
    ordered = sort_diagnostics(diagnostics)
    rule_ids = sorted(CATALOG)
    results = []
    for diag in ordered:
        result = {
            "ruleId": diag.code,
            "level": _LEVELS.get(diag.severity, "error"),
            "message": {"text": diag.message},
        }
        if diag.code in CATALOG:
            result["ruleIndex"] = rule_ids.index(diag.code)
        if diag.file:
            region = {}
            if diag.line:
                region["startLine"] = diag.line
                if diag.column:
                    region["startColumn"] = diag.column
            location = {
                "physicalLocation": {
                    "artifactLocation": {"uri": _uri(diag.file)},
                }
            }
            if region:
                location["physicalLocation"]["region"] = region
            result["locations"] = [location]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": _rules(),
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(diagnostics: Iterable[Diagnostic]) -> str:
    """The findings as a SARIF 2.1.0 JSON document."""
    return json.dumps(sarif_document(diagnostics), indent=2, sort_keys=False)
