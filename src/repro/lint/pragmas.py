"""Inline suppression pragmas: ``# repro-lint: disable=CODE``.

A pragma acknowledges one specific finding at its source line — the
reviewed, intentional exception (a sanctioned clock read, a set iteration
feeding a commutative fold). Two spellings:

- ``# repro-lint: disable=DET003`` — suppress on the same line;
- ``# repro-lint: disable-next-line=DET003`` — suppress on the following
  line (for findings inside expressions that span formatting).

Several codes separate with commas (``disable=DET003,DET101``); ``all``
suppresses every code on that line. Pragmas are honored by the per-file
determinism rules and by the deep interprocedural passes alike; ``repro
lint --no-pragmas`` ignores them all for a strict sweep, which is how CI
audits that no pragma hides a *new* class of finding.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Set

from repro.diagnostics import Diagnostic

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable(?:-next-line)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+)"
)

#: Sentinel meaning "every code".
ALL = "all"


def parse_pragmas(source: str) -> Dict[int, Set[str]]:
    """Map of 1-based line number → set of disabled codes on that line."""
    disabled: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        if "repro-lint" not in line:
            continue
        for match in _PRAGMA_RE.finditer(line):
            codes = {
                code.strip().upper() if code.strip().lower() != ALL else ALL
                for code in match.group("codes").split(",")
                if code.strip()
            }
            target = lineno + 1 if match.group("kind").endswith("next-line") else lineno
            disabled.setdefault(target, set()).update(codes)
    return disabled


def is_disabled(pragmas: Dict[int, Set[str]], code: str, line: int) -> bool:
    codes = pragmas.get(line)
    return bool(codes) and (code in codes or ALL in codes)


def apply_pragmas(
    diagnostics: Iterable[Diagnostic], pragmas: Dict[int, Set[str]]
) -> List[Diagnostic]:
    """Diagnostics surviving the pragma map of their source file."""
    return [
        diag
        for diag in diagnostics
        if not is_disabled(pragmas, diag.code, diag.line)
    ]
