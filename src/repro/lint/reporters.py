"""Diagnostic reporters: the human and machine faces of a lint run."""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.diagnostics import Diagnostic, count_by_severity, sort_diagnostics
from repro.lint.catalog import CATALOG


def render_text(diagnostics: Iterable[Diagnostic]) -> str:
    """One GCC-style line per finding plus a summary tail."""
    ordered = sort_diagnostics(diagnostics)
    lines: List[str] = [diag.format() for diag in ordered]
    counts = count_by_severity(ordered)
    if not ordered:
        lines.append("clean: no diagnostics")
    else:
        lines.append(f"{counts['error']} error(s), {counts['warning']} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: Iterable[Diagnostic]) -> str:
    """A stable JSON document: findings plus severity totals.

    Each finding carries its catalog title so consumers need not ship the
    rule table; unknown codes degrade to a ``null`` title.
    """
    ordered = sort_diagnostics(diagnostics)
    counts = count_by_severity(ordered)
    payload = {
        "diagnostics": [
            {
                **diag.to_json(),
                "title": CATALOG[diag.code].title if diag.code in CATALOG else None,
            }
            for diag in ordered
        ],
        "errors": counts["error"],
        "warnings": counts["warning"],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
