"""Prong 1: the assembly verifier (``RPR…`` rules).

Analyzes a parsed DSL program — or an already-built
:class:`~repro.core.Assembly` — *without running the simulator* and reports
everything that would otherwise only surface as mysterious non-convergence
hundreds of simulated rounds later: dangling links, infeasible shapes and
budgets, dead ports, unreachable islands.

Two entry points:

- :func:`lint_program` — full check of a :class:`~repro.dsl.ast.TopologyDecl`
  with per-declaration source locations. Compiler semantic errors
  (``RPR100``–``RPR109``) are produced by running the DSL compiler in
  diagnostic-collection mode; the structural warnings are computed here on a
  location-aware model of the program.
- :func:`lint_assembly` — the same structural checks on a programmatic
  assembly (no locations), e.g. one built with the
  :class:`~repro.dsl.builder.TopologyBuilder`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.diagnostics import ERROR, WARNING, Diagnostic, sort_diagnostics
from repro.errors import AssemblyError, ConfigurationError, TopologyError
from repro.core.assembly import Assembly
from repro.core.port import PortSelector, RankSelector, make_selector
from repro.dsl.ast import TopologyDecl
from repro.dsl.compiler import compile_ast
from repro.shapes.base import Shape
from repro.shapes.registry import make_shape


@dataclass
class _Port:
    name: str
    selector: Optional[PortSelector]
    line: int = 0
    column: int = 0


@dataclass
class _Component:
    name: str
    group: str  # the declaration name (replicas share one group)
    shape: Optional[Shape]
    size: Optional[int]
    weight: float
    ports: List[_Port] = field(default_factory=list)
    line: int = 0
    column: int = 0


@dataclass
class _Model:
    """A lint-friendly view of a topology: tolerant of broken declarations."""

    name: str
    components: Dict[str, _Component] = field(default_factory=dict)
    #: Valid concrete links as ((comp, port), (comp, port), line, column).
    links: List[Tuple[Tuple[str, str], Tuple[str, str], int, int]] = field(
        default_factory=list
    )
    #: Every (comp, port) endpoint referenced by any link, valid or not.
    referenced: Set[Tuple[str, str]] = field(default_factory=set)
    total_nodes: Optional[int] = None
    line: int = 0
    column: int = 0


# -- model construction ---------------------------------------------------------


def _model_from_tree(tree: TopologyDecl) -> _Model:
    """Best-effort semantic model; compile errors are someone else's job."""
    model = _Model(name=tree.name, total_nodes=tree.nodes, line=tree.line, column=tree.column)
    replica_map: Dict[str, List[str]] = {}
    for decl in tree.components:
        size = None
        weight = 1.0
        shape_params = {}
        for param in decl.params:
            if param.name == "size":
                if isinstance(param.value, int) and not isinstance(param.value, bool):
                    size = param.value
            elif param.name == "weight":
                if isinstance(param.value, (int, float)) and not isinstance(
                    param.value, bool
                ):
                    weight = float(param.value)
            else:
                shape_params[param.name] = param.value
        try:
            shape: Optional[Shape] = make_shape(decl.shape, **shape_params)
        except ConfigurationError:
            shape = None
        ports = []
        for port in decl.ports:
            try:
                selector: Optional[PortSelector] = make_selector(port.selector)
            except AssemblyError:
                selector = None
            ports.append(_Port(port.name, selector, port.line, port.column))
        names = (
            [decl.name]
            if decl.replicas is None
            else [f"{decl.name}{index}" for index in range(decl.replicas)]
        )
        if decl.replicas is not None:
            replica_map[decl.name] = names
        for name in names:
            if name in model.components:
                continue  # duplicate declarations are reported as RPR107
            model.components[name] = _Component(
                name=name,
                group=decl.name,
                shape=shape,
                size=size,
                weight=weight,
                ports=ports,
                line=decl.line,
                column=decl.column,
            )
    for decl in tree.links:
        sides = []
        for component, index, port in (
            (decl.a_component, decl.a_index, decl.a_port),
            (decl.b_component, decl.b_index, decl.b_port),
        ):
            if component in replica_map:
                names = replica_map[component]
                if index == "*":
                    refs = [(name, port) for name in names]
                elif isinstance(index, int) and 0 <= index < len(names):
                    refs = [(names[index], port)]
                else:
                    refs = []
            elif index is None:
                refs = [(component, port)]
            else:
                refs = []
            sides.append(refs)
        a_side, b_side = sides
        model.referenced.update(a_side)
        model.referenced.update(b_side)
        if len(a_side) > 1 and len(b_side) > 1:
            continue
        for a_ref in a_side:
            for b_ref in b_side:
                if a_ref == b_ref:
                    continue
                if _endpoint_exists(model, a_ref) and _endpoint_exists(model, b_ref):
                    model.links.append((a_ref, b_ref, decl.line, decl.column))
    return model


def _model_from_assembly(assembly: Assembly) -> _Model:
    model = _Model(name=assembly.name, total_nodes=assembly.total_nodes)
    for spec in assembly.components.values():
        model.components[spec.name] = _Component(
            name=spec.name,
            group=spec.name,
            shape=spec.shape,
            size=spec.size,
            weight=spec.weight,
            ports=[_Port(port.name, port.selector) for port in spec.ports],
        )
    for link in assembly.links:
        a_ref = (link.a.component, link.a.port)
        b_ref = (link.b.component, link.b.port)
        model.referenced.update((a_ref, b_ref))
        model.links.append((a_ref, b_ref, 0, 0))
    return model


def _endpoint_exists(model: _Model, ref: Tuple[str, str]) -> bool:
    component = model.components.get(ref[0])
    return component is not None and any(p.name == ref[1] for p in component.ports)


# -- structural checks ------------------------------------------------------------


def _check_unreferenced_ports(model: _Model, out: List[Diagnostic], file: Optional[str]) -> None:
    """RPR201: a declared port no link ever uses."""
    seen_groups: Set[Tuple[str, str]] = set()
    for component in model.components.values():
        for port in component.ports:
            group_key = (component.group, port.name)
            if group_key in seen_groups:
                continue
            seen_groups.add(group_key)
            used = any(
                (peer.name, port.name) in model.referenced
                for peer in model.components.values()
                if peer.group == component.group
            )
            if not used:
                out.append(
                    Diagnostic(
                        code="RPR201",
                        severity=WARNING,
                        message=(
                            f"port {component.group}.{port.name} is never "
                            f"referenced by any link"
                        ),
                        file=file,
                        line=port.line,
                        column=port.column,
                    )
                )


def _check_islands(model: _Model, out: List[Diagnostic], file: Optional[str]) -> None:
    """RPR202: the component graph is not connected."""
    names = list(model.components)
    if len(names) < 2:
        return
    adjacency: Dict[str, Set[str]] = {name: set() for name in names}
    for a_ref, b_ref, _, _ in model.links:
        adjacency[a_ref[0]].add(b_ref[0])
        adjacency[b_ref[0]].add(a_ref[0])
    unvisited = dict.fromkeys(names)  # insertion-ordered set of pending names
    islands: List[List[str]] = []
    while unvisited:
        start = next(iter(unvisited))
        stack = [start]
        island = []
        while stack:
            current = stack.pop()
            if current not in unvisited:
                continue
            del unvisited[current]
            island.append(current)
            stack.extend(sorted(adjacency[current], reverse=True))
        islands.append(sorted(island))
    if len(islands) < 2:
        return
    islands.sort(key=len, reverse=True)
    mainland = islands[0]
    for island in islands[1:]:
        anchor = model.components[island[0]]
        out.append(
            Diagnostic(
                code="RPR202",
                severity=WARNING,
                message=(
                    f"component(s) {', '.join(island)} are unreachable from "
                    f"{', '.join(mainland[:3])}"
                    + ("…" if len(mainland) > 3 else "")
                    + " — no link joins the two groups"
                ),
                file=file,
                line=anchor.line,
                column=anchor.column,
            )
        )


def _check_over_subscription(model: _Model, out: List[Diagnostic], file: Optional[str]) -> None:
    """RPR203: two linked ports of one component electing the same member."""
    reported_groups: Set[Tuple[str, str, str]] = set()
    for component in model.components.values():
        by_rule: Dict[str, List[_Port]] = {}
        for port in component.ports:
            if port.selector is None:
                continue
            if (component.name, port.name) not in model.referenced:
                continue  # unlinked ports are RPR201's business
            by_rule.setdefault(port.selector.spec(), []).append(port)
        for rule, ports in by_rule.items():
            if len(ports) < 2:
                continue
            names = ", ".join(port.name for port in ports)
            group_key = (component.group, rule, names)
            if group_key in reported_groups:
                continue  # one report per replicated declaration
            reported_groups.add(group_key)
            anchor = ports[1]
            out.append(
                Diagnostic(
                    code="RPR203",
                    severity=WARNING,
                    message=(
                        f"component {component.group!r}: linked ports {names} "
                        f"all elect the same member ({rule}); that node "
                        f"carries every one of their links"
                    ),
                    file=file,
                    line=anchor.line,
                    column=anchor.column,
                )
            )


def _check_rank_selectors(model: _Model, out: List[Diagnostic], file: Optional[str]) -> None:
    """RPR204: rank(K) can never elect anyone in a size-S component, K >= S."""
    seen_groups: Set[Tuple[str, str]] = set()
    for component in model.components.values():
        if component.size is None:
            continue
        for port in component.ports:
            if not isinstance(port.selector, RankSelector):
                continue
            if port.selector.rank < component.size:
                continue
            group_key = (component.group, port.name)
            if group_key in seen_groups:
                continue
            seen_groups.add(group_key)
            out.append(
                Diagnostic(
                    code="RPR204",
                    severity=WARNING,
                    message=(
                        f"port {component.group}.{port.name}: selector "
                        f"rank({port.selector.rank}) is unsatisfiable in a "
                        f"component of size {component.size}"
                    ),
                    file=file,
                    line=port.line,
                    column=port.column,
                )
            )


def _check_starvation(model: _Model, out: List[Diagnostic], file: Optional[str]) -> None:
    """RPR205: a weighted component whose proportional share rounds to zero."""
    if model.total_nodes is None:
        return
    weighted = [c for c in model.components.values() if c.size is None]
    if not weighted:
        return
    fixed = sum(c.size for c in model.components.values() if c.size is not None)
    pool = model.total_nodes - fixed
    total_weight = sum(c.weight for c in weighted)
    if total_weight <= 0:
        return
    for component in weighted:
        share = pool * component.weight / total_weight
        if share < 1:
            out.append(
                Diagnostic(
                    code="RPR205",
                    severity=WARNING,
                    message=(
                        f"component {component.name!r} (weight "
                        f"{component.weight:g}) gets {max(0.0, share):.2f} of the "
                        f"{max(0, pool)} unreserved node(s) and may deploy empty"
                    ),
                    file=file,
                    line=component.line,
                    column=component.column,
                )
            )


def _check_sizes(
    model: _Model,
    out: List[Diagnostic],
    file: Optional[str],
    include_feasibility: bool,
) -> None:
    """RPR105 (assembly path only) and RPR206 degenerate-size warnings."""
    seen_groups: Set[str] = set()
    for component in model.components.values():
        if component.shape is None or component.size is None:
            continue
        if component.group in seen_groups:
            continue
        seen_groups.add(component.group)
        infeasible = False
        if include_feasibility:
            try:
                component.shape.validate_size(component.size)
            except TopologyError as exc:
                infeasible = True
                out.append(
                    Diagnostic(
                        code="RPR105",
                        severity=ERROR,
                        message=f"component {component.group!r}: {exc}",
                        file=file,
                        line=component.line,
                        column=component.column,
                    )
                )
        else:
            infeasible = component.shape.size_feasibility(component.size) is not None
        if not infeasible and component.size < component.shape.min_size:
            out.append(
                Diagnostic(
                    code="RPR206",
                    severity=WARNING,
                    message=(
                        f"component {component.group!r}: size {component.size} is "
                        f"degenerate for shape {component.shape.name!r} "
                        f"(meaningful from {component.shape.min_size})"
                    ),
                    file=file,
                    line=component.line,
                    column=component.column,
                )
            )


def _structural_checks(
    model: _Model, file: Optional[str], include_feasibility: bool
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    _check_unreferenced_ports(model, out, file)
    _check_islands(model, out, file)
    _check_over_subscription(model, out, file)
    _check_rank_selectors(model, out, file)
    _check_starvation(model, out, file)
    _check_sizes(model, out, file, include_feasibility)
    return out


# -- entry points ------------------------------------------------------------------


def lint_program(tree: TopologyDecl, file: Optional[str] = None) -> List[Diagnostic]:
    """All ``RPR`` diagnostics for one parsed DSL program."""
    diagnostics: List[Diagnostic] = []
    compile_ast(tree, diagnostics=diagnostics, file=file)
    model = _model_from_tree(tree)
    # Compiler errors already cover feasibility (RPR105); only warnings here.
    diagnostics.extend(_structural_checks(model, file, include_feasibility=False))
    return sort_diagnostics(diagnostics)


def lint_assembly(assembly: Assembly, file: Optional[str] = None) -> List[Diagnostic]:
    """Structural diagnostics for a programmatically-built assembly.

    Construction already enforced reference validity, uniqueness, and the
    node budget; this adds everything construction does not check — size
    feasibility and the full warning set.
    """
    model = _model_from_assembly(assembly)
    return sort_diagnostics(_structural_checks(model, file, include_feasibility=True))
