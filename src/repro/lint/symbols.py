"""Whole-program symbol table for the deep (interprocedural) lint passes.

The per-file determinism rules (:mod:`repro.lint.determinism`) see one
module at a time, so a helper that hides ``time.time()`` behind two call
hops is invisible to them. The deep passes need a *project model* instead:
every module under a package root parsed once, every function and method
indexed by qualified name, and every import edge recorded so a call
spelled ``views.merge(...)`` or a symbol re-exported through an
``__init__.py`` can be resolved back to its definition.

The model is purely syntactic — no imports are executed — which keeps it
safe to run on fixture packages that would not even import (that is the
point: broken code must still be lintable).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.determinism import iter_python_files

#: Import targets outside the analyzed package are recorded with this
#: prefix so resolution can tell "unknown project symbol" from "stdlib".
EXTERNAL_PREFIX = "<ext>"


@dataclass
class FunctionInfo:
    """One function or method definition in the project."""

    #: Fully qualified name: ``<module dotted name>.<qualname>``
    #: (``gossip.views.View.merge``).
    qname: str
    #: Qualified name within the module (``View.merge`` or ``merge``).
    local_qname: str
    #: Dotted module name relative to the package root (``gossip.views``).
    module: str
    #: Module path relative to the package root (``gossip/views.py``).
    rel_path: str
    #: Absolute on-disk path, for diagnostics.
    file: str
    node: ast.AST = field(repr=False)  # FunctionDef | AsyncFunctionDef
    #: Enclosing class name for methods, ``None`` for plain functions.
    class_name: Optional[str] = None

    @property
    def name(self) -> str:
        return self.local_qname.rsplit(".", 1)[-1]

    @property
    def line(self) -> int:
        return getattr(self.node, "lineno", 0)

    def display(self) -> str:
        """Human-facing spelling used in diagnostic chains."""
        return f"{self.rel_path}::{self.local_qname}"


@dataclass
class ModuleInfo:
    """One parsed module of the project."""

    #: Dotted name relative to the package root (``gossip.views``;
    #: ``gossip`` for ``gossip/__init__.py``).
    name: str
    rel_path: str
    file: str
    tree: ast.Module = field(repr=False)
    source: str = field(repr=False, default="")
    #: Local name → dotted target. Module imports map to the module
    #: (``views`` → ``gossip.views``); ``from`` imports map to the symbol
    #: (``View`` → ``gossip.views.View``). External targets are prefixed
    #: with :data:`EXTERNAL_PREFIX` (``time`` → ``<ext>time``).
    imports: Dict[str, str] = field(default_factory=dict)
    #: Functions/methods defined here, keyed by in-module qualname.
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Names of classes defined at module level.
    classes: List[str] = field(default_factory=list)


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a package-root-relative path."""
    name = rel_path[: -len(".py")] if rel_path.endswith(".py") else rel_path
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    elif name == "__init__":
        name = ""
    return name


class SymbolTable:
    """The project model: every module, function, and import edge.

    Parameters
    ----------
    root:
        Directory whose ``.py`` files form the project. Module names are
        derived from paths relative to it.
    package:
        Importable prefixes that denote *this* project in absolute imports
        (``repro`` for the real tree, so ``from repro.gossip import views``
        resolves internally). Fixture packages usually pass ``()`` and rely
        on top-level/relative imports.
    """

    def __init__(self, root: str, package: Tuple[str, ...] = ("repro",)):
        self.root = root
        self.package = tuple(package)
        self.modules: Dict[str, ModuleInfo] = {}
        #: Every function in the project, keyed by fully qualified name.
        self.functions: Dict[str, FunctionInfo] = {}
        #: Dynamic-dispatch fallback index: bare name → definitions.
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: Re-export aliases: alias qname → target dotted name, from
        #: ``from x import y [as z]`` at module scope.
        self.aliases: Dict[str, str] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(
        cls, root: Optional[str] = None, package: Tuple[str, ...] = ("repro",)
    ) -> "SymbolTable":
        """Parse every module under ``root`` into a symbol table."""
        if root is None:
            from repro.lint.determinism import package_root

            root = package_root()
        table = cls(root, package)
        for path in iter_python_files(root):
            rel_path = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue  # the per-file linter reports unparseable files
            table._add_module(rel_path, path, tree, source)
        # Imports are indexed in a second pass so `_strip_package` can see
        # the complete module set when classifying internal vs external.
        for module in table.modules.values():
            table._index_imports(module)
        table._link()
        return table

    def _add_module(
        self, rel_path: str, file: str, tree: ast.Module, source: str
    ) -> None:
        name = module_name_for(rel_path)
        info = ModuleInfo(
            name=name, rel_path=rel_path, file=file, tree=tree, source=source
        )
        self.modules[name] = info
        self._index_functions(info)

    def _strip_package(self, dotted: str) -> Optional[str]:
        """Normalize an absolute import target to a root-relative name.

        Returns ``None`` when the target is outside the project.
        """
        for prefix in self.package:
            if dotted == prefix:
                return ""
            if dotted.startswith(prefix + "."):
                return dotted[len(prefix) + 1 :]
        # Top-level spelling that matches an analyzed module ("pkg_a.mod"
        # in a fixture package rooted above "pkg_a/").
        head = dotted.split(".")[0]
        if head in self.modules or any(
            mod.startswith(head + ".") for mod in self.modules
        ):
            return dotted
        return None

    def _resolve_relative(self, module: ModuleInfo, level: int, target: str) -> str:
        """Dotted base for a ``from ...target import name`` statement."""
        parts = module.name.split(".") if module.name else []
        if not module.rel_path.endswith("__init__.py"):
            parts = parts[:-1]  # level 1 is the containing package
        parts = parts[: len(parts) - (level - 1)] if level > 1 else parts
        if target:
            parts = parts + target.split(".")
        return ".".join(parts)

    def _index_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    internal = self._strip_package(alias.name)
                    if internal is not None:
                        # `import repro.gossip.views as gv` binds gv to the
                        # submodule; bare `import repro.gossip.views` binds
                        # only the root package name.
                        if alias.asname is None:
                            head = alias.name.split(".")[0]
                            target = "" if head in self.package else head
                        else:
                            target = internal
                        module.imports[bound] = target
                    else:
                        module.imports[bound] = EXTERNAL_PREFIX + alias.name
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = self._resolve_relative(module, node.level, node.module or "")
                else:
                    base = self._strip_package(node.module or "")
                for alias in node.names:
                    bound = alias.asname or alias.name
                    if alias.name == "*":
                        continue
                    if base is None:
                        module.imports[bound] = (
                            EXTERNAL_PREFIX + (node.module or "") + "." + alias.name
                        )
                    else:
                        target = f"{base}.{alias.name}" if base else alias.name
                        module.imports[bound] = target

    def _index_functions(self, module: ModuleInfo) -> None:
        def visit(node: ast.AST, prefix: str, class_name: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    local = f"{prefix}{child.name}"
                    qname = f"{module.name}.{local}" if module.name else local
                    info = FunctionInfo(
                        qname=qname,
                        local_qname=local,
                        module=module.name,
                        rel_path=module.rel_path,
                        file=module.file,
                        node=child,
                        class_name=class_name,
                    )
                    module.functions[local] = info
                    self.functions[qname] = info
                    self.by_name.setdefault(child.name, []).append(info)
                    visit(child, local + ".", class_name)
                elif isinstance(child, ast.ClassDef):
                    if not prefix:
                        module.classes.append(child.name)
                    visit(child, f"{prefix}{child.name}.", child.name)

        visit(module.tree, "", None)

    def _link(self) -> None:
        """Record re-export aliases (``pkg.Name`` → ``pkg.mod.Name``)."""
        for module in self.modules.values():
            for bound, target in module.imports.items():
                if target.startswith(EXTERNAL_PREFIX):
                    continue
                alias = f"{module.name}.{bound}" if module.name else bound
                if alias != target:
                    self.aliases[alias] = target

    # -- resolution -----------------------------------------------------------

    def _dealias(self, dotted: str, _depth: int = 0) -> str:
        """Follow re-export aliases to a canonical dotted name."""
        if _depth > 8:
            return dotted
        if dotted in self.aliases:
            return self._dealias(self.aliases[dotted], _depth + 1)
        # `pkg.sub.attr` where `pkg.sub` is itself an alias.
        if "." in dotted:
            head, tail = dotted.rsplit(".", 1)
            canonical = self._dealias(head, _depth + 1)
            if canonical != head:
                return self._dealias(f"{canonical}.{tail}", _depth + 1)
        return dotted

    def function(self, dotted: str) -> Optional[FunctionInfo]:
        """The function/method a canonical dotted name denotes, if any."""
        dotted = self._dealias(dotted)
        info = self.functions.get(dotted)
        if info is not None:
            return info
        # ``module.Class`` → its constructor.
        init = self.functions.get(dotted + ".__init__")
        if init is not None:
            return init
        return None

    def resolve(self, module: ModuleInfo, dotted: str) -> Optional[FunctionInfo]:
        """Resolve a name as used in ``module`` to a project function.

        ``dotted`` is the source spelling (``merge``, ``views.merge``,
        ``self.merge`` is handled by the call-graph builder instead).
        """
        head, _, tail = dotted.partition(".")
        # A name defined in this very module?
        candidates = []
        if module.name:
            candidates.append(f"{module.name}.{dotted}")
        else:
            candidates.append(dotted)
        # An imported name?
        target = module.imports.get(head)
        if target is not None and not target.startswith(EXTERNAL_PREFIX):
            candidates.append(f"{target}.{tail}" if tail else target)
        for candidate in candidates:
            info = self.function(candidate)
            if info is not None:
                return info
        return None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for qname in sorted(self.functions):
            yield self.functions[qname]
