"""Lint-run orchestration: file discovery and the top-level entry points.

``repro lint`` hands its path arguments here: ``.topo`` files (and every
``.topo`` found under directory arguments, recursively) go through the
assembly verifier; ``--self-check`` adds the per-file determinism sweep of
the installed ``repro`` package itself; ``--deep`` adds the whole-program
passes (interprocedural taint + shard safety) on top. The result of a run
is a :class:`LintRun` so the CLI can report baseline bookkeeping (how many
findings a checked-in baseline absorbed, which entries went stale) next to
the surviving diagnostics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.diagnostics import ERROR, Diagnostic, sort_diagnostics
from repro.errors import ConfigurationError, DslSyntaxError
from repro.dsl.parser import parse_source
from repro.lint.assembly_rules import lint_program
from repro.lint.determinism import self_check

#: Extension of DSL topology programs.
TOPO_SUFFIX = ".topo"


@dataclass
class LintRun:
    """One lint invocation's outcome: findings plus baseline bookkeeping."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Findings absorbed by the baseline file (not in ``diagnostics``).
    baseline_suppressed: int = 0
    #: Baseline entries that matched nothing — fixed findings to prune.
    baseline_stale: List[Dict] = field(default_factory=list)


def collect_topo_files(paths: Sequence[str]) -> List[str]:
    """Expand file/directory arguments into a sorted list of ``.topo`` files.

    Unknown paths raise :class:`~repro.errors.ConfigurationError`; a
    directory containing no ``.topo`` files contributes nothing (the caller
    decides whether an empty run is noteworthy).
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(dirnames)
                for filename in sorted(filenames):
                    if filename.endswith(TOPO_SUFFIX):
                        found.append(os.path.join(dirpath, filename))
        else:
            raise ConfigurationError(f"lint: no such file or directory: {path!r}")
    return sorted(dict.fromkeys(found))


def lint_topo_file(path: str) -> List[Diagnostic]:
    """All diagnostics for one ``.topo`` file (syntax errors included)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = parse_source(source)
    except DslSyntaxError as exc:
        return [
            Diagnostic(
                code="RPR001",
                severity=ERROR,
                message=str(exc),
                file=path,
                line=exc.line,
                column=exc.column,
            )
        ]
    return lint_program(tree, file=path)


def lint_paths(
    paths: Sequence[str],
    with_self_check: bool = False,
    deep: bool = False,
    respect_pragmas: bool = True,
    baseline_path: Optional[str] = None,
    roots: Optional[Sequence[str]] = None,
) -> LintRun:
    """Lint every ``.topo`` under ``paths``; optionally self-check and deep.

    ``baseline_path`` names a suppression file
    (:mod:`repro.lint.baseline`); a missing file is an empty baseline, so
    passing the conventional path unconditionally is safe.
    """
    run = LintRun()
    for path in collect_topo_files(paths):
        run.diagnostics.extend(lint_topo_file(path))
    if with_self_check:
        run.diagnostics.extend(self_check(respect_pragmas=respect_pragmas))
    if deep:
        from repro.lint.deep import deep_check

        run.diagnostics.extend(
            deep_check(roots=roots, respect_pragmas=respect_pragmas)
        )
    if baseline_path is not None:
        from repro.lint.baseline import Baseline

        baseline = Baseline.load(baseline_path)
        if len(baseline):
            survivors, suppressed, stale = baseline.apply(run.diagnostics)
            run.diagnostics = survivors
            run.baseline_suppressed = suppressed
            run.baseline_stale = stale
    run.diagnostics = sort_diagnostics(run.diagnostics)
    return run
