"""Lint-run orchestration: file discovery and the top-level entry points.

``repro lint`` hands its path arguments here: ``.topo`` files (and every
``.topo`` found under directory arguments, recursively) go through the
assembly verifier; ``--self-check`` adds the determinism sweep of the
installed ``repro`` package itself.
"""

from __future__ import annotations

import os
from typing import List, Sequence

from repro.diagnostics import ERROR, Diagnostic, sort_diagnostics
from repro.errors import ConfigurationError, DslSyntaxError
from repro.dsl.parser import parse_source
from repro.lint.assembly_rules import lint_program
from repro.lint.determinism import self_check

#: Extension of DSL topology programs.
TOPO_SUFFIX = ".topo"


def collect_topo_files(paths: Sequence[str]) -> List[str]:
    """Expand file/directory arguments into a sorted list of ``.topo`` files.

    Unknown paths raise :class:`~repro.errors.ConfigurationError`; a
    directory containing no ``.topo`` files contributes nothing (the caller
    decides whether an empty run is noteworthy).
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(dirnames)
                for filename in sorted(filenames):
                    if filename.endswith(TOPO_SUFFIX):
                        found.append(os.path.join(dirpath, filename))
        else:
            raise ConfigurationError(f"lint: no such file or directory: {path!r}")
    return sorted(dict.fromkeys(found))


def lint_topo_file(path: str) -> List[Diagnostic]:
    """All diagnostics for one ``.topo`` file (syntax errors included)."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    try:
        tree = parse_source(source)
    except DslSyntaxError as exc:
        return [
            Diagnostic(
                code="RPR001",
                severity=ERROR,
                message=str(exc),
                file=path,
                line=exc.line,
                column=exc.column,
            )
        ]
    return lint_program(tree, file=path)


def lint_paths(paths: Sequence[str], with_self_check: bool = False) -> List[Diagnostic]:
    """Lint every ``.topo`` under ``paths``; optionally add the self-check."""
    diagnostics: List[Diagnostic] = []
    for path in collect_topo_files(paths):
        diagnostics.extend(lint_topo_file(path))
    if with_self_check:
        diagnostics.extend(self_check())
    return sort_diagnostics(diagnostics)
