"""Prong 2: the determinism invariant linter (``DET0xx`` rules).

An :mod:`ast`-based checker over the framework's *own* Python source. The
multi-seed evaluation is only honest if seed *s* always denotes the same
random universe; these rules machine-enforce the conventions that keep it
so as the codebase grows:

- ``DET001``/``DET002`` — every random draw must flow from the seed-derived
  streams of :mod:`repro.sim.rng`: no interpreter-global ``random.*`` calls
  and no unseeded ``random.Random()``/``SystemRandom`` anywhere outside
  that module.
- ``DET003`` — no wall-clock reads in simulation-facing packages (``sim``,
  ``core``, ``gossip``, ``faults``, ``obs``, ``heal``) nor in the simulation-side
  half of the perf subsystem (``perf/cache.py``, ``perf/digest.py``,
  ``perf/workloads.py``): simulated time is the round counter. Timing
  belongs to the harness (``perf/bench.py``) and to the observability
  subsystem's single sanctioned clock site (``obs/spans.py``) alone.
- ``DET004`` — no iteration over bare ``set``/``frozenset`` values in
  ordering-sensitive packages (``gossip``, ``core``, ``sim``, ``heal``): hash order
  must never feed a view merge or a stochastic choice. ``sorted(...)``,
  ``min``/``max``, and membership tests are all fine — including the
  *sorted-wrapper idiom*, where a set is materialized into a name and the
  name is re-bound through ``sorted`` a statement or two later
  (``ids = list(view); ids = sorted(ids)``). The visitor tracks names
  bound to set values, so bare iteration over such a name is caught even
  away from the construction site.
- ``DET005`` — no ``dict.popitem()`` in those packages (insertion-order
  coupling in layer exchanges).

Inline pragmas (``# repro-lint: disable=DET004``, see
:mod:`repro.lint.pragmas`) acknowledge a reviewed exception at its line;
``respect_pragmas=False`` (CLI ``--no-pragmas``) runs the strict sweep.

Paths are interpreted relative to the ``repro`` package root, so the rules
apply identically whether the tree is linted in-place or from an sdist.
The interprocedural continuation of these rules — sources reached *across*
function and module boundaries — lives in :mod:`repro.lint.taint`.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.diagnostics import ERROR, Diagnostic, sort_diagnostics

#: The only module allowed to touch the ``random`` module directly.
RNG_MODULE = "sim/rng.py"

#: Packages/files where wall-clock reads are forbidden (DET003). The perf
#: subsystem is split on purpose: its workloads, digests, and caches are
#: simulation-side (results must be a pure function of (config, seed)),
#: while perf/bench.py is the one sanctioned timing harness.
WALLCLOCK_PATHS = (
    "sim/",
    "core/",
    "gossip/",
    "faults/",
    "obs/",
    "heal/",
    "perf/cache.py",
    "perf/digest.py",
    "perf/workloads.py",
)

#: Sanctioned exceptions inside WALLCLOCK_PATHS. ``obs/spans.py`` is the
#: observability subsystem's one clock site — every span measurement flows
#: through its ``wall_clock``, so instrumented timing stays auditable and
#: injectable (tests swap the clock) while the rest of ``obs`` remains
#: simulation-pure.
WALLCLOCK_EXEMPT = ("obs/spans.py",)

#: Packages where set-iteration order and popitem are forbidden (DET004/005).
ORDERING_PATHS = ("gossip/", "core/", "sim/", "heal/")

_WALLCLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: Builtins whose call materializes its argument in iteration order.
_ORDER_SENSITIVE_BUILTINS = {"list", "tuple", "enumerate", "iter", "reversed"}

#: Builtins that consume a set order-insensitively: a set (or a hash-order
#: materialization of one) appearing as their direct argument is fine.
_ORDER_NEUTRAL_CONSUMERS = {
    "sorted",
    "min",
    "max",
    "sum",
    "len",
    "any",
    "all",
    "set",
    "frozenset",
}


def _in_paths(rel_path: str, prefixes: Sequence[str]) -> bool:
    return any(rel_path.startswith(prefix) for prefix in prefixes)


def _wallclock_forbidden(rel_path: str) -> bool:
    return (
        _in_paths(rel_path, WALLCLOCK_PATHS) and rel_path not in WALLCLOCK_EXEMPT
    )


class _Scope:
    """Per-function (or module) tracking state for the set-order rules."""

    def __init__(self) -> None:
        #: Names currently bound to a bare set/frozenset value.
        self.set_names: Set[str] = set()
        #: Candidate DET004 findings keyed by the name the hash-ordered
        #: materialization was assigned to; withdrawn if the name is later
        #: re-bound through ``sorted`` (or ``.sort()``-ed) in this scope.
        self.pending: Dict[str, List[Diagnostic]] = {}


class _DeterminismVisitor(ast.NodeVisitor):
    """One file's worth of DET findings."""

    def __init__(self, rel_path: str, file: Optional[str]):
        self.rel_path = rel_path
        self.file = file
        self.diagnostics: List[Diagnostic] = []
        #: Local names bound to the ``random`` module (``import random``,
        #: ``import random as rnd``).
        self.random_aliases: Set[str] = set()
        #: Local names for ``random.Random`` / functions imported from random.
        self.from_random: Set[str] = set()
        #: Local names bound to the ``time`` / ``datetime`` modules.
        self.time_aliases: Set[str] = set()
        self.datetime_aliases: Set[str] = set()
        #: Names imported from datetime (``datetime``, ``date`` classes).
        self.datetime_classes: Set[str] = set()
        #: Scope stack for set-name tracking (module scope at the bottom).
        self.scopes: List[_Scope] = [_Scope()]
        #: Node ids whose DET004 handling happened higher up the tree
        #: (assignment targets, order-neutral consumer arguments).
        self._handled: Set[int] = set()

    # -- bookkeeping ---------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self.from_random.add(alias.asname or alias.name)
        elif node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    self.datetime_classes.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- scope handling -------------------------------------------------------

    def _enter_scope(self, node: ast.AST) -> None:
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self._flush_scope()

    def _flush_scope(self) -> None:
        scope = self.scopes.pop()
        for name in sorted(scope.pending):
            self.diagnostics.extend(scope.pending[name])

    def finish(self) -> None:
        """Flush the module scope; call exactly once after ``visit``."""
        while self.scopes:
            self._flush_scope()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node)

    def _is_set_name(self, name: str) -> bool:
        return any(name in scope.set_names for scope in reversed(self.scopes))

    def _bind_set_names(self, names: Iterable[str]) -> None:
        self.scopes[-1].set_names.update(names)

    def _unbind_name(self, name: str) -> None:
        for scope in self.scopes:
            scope.set_names.discard(name)

    def _withdraw_pending(self, name: str) -> None:
        for scope in self.scopes:
            scope.pending.pop(name, None)

    # -- helpers -------------------------------------------------------------

    def _emit(self, code: str, message: str, node: ast.AST) -> None:
        self.diagnostics.append(self._diag(code, message, node))

    def _diag(self, code: str, message: str, node: ast.AST) -> Diagnostic:
        return Diagnostic(
            code=code,
            severity=ERROR,
            message=message,
            file=self.file,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", -1) + 1,
        )

    def _is_set_valued(self, node: ast.expr) -> bool:
        """Syntactically certain the expression is an unordered set."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name) and self._is_set_name(node.id):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _is_sorted_call(self, node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        )

    def _ordering_applies(self) -> bool:
        return _in_paths(self.rel_path, ORDERING_PATHS)

    # -- assignments: set-name tracking + the sorted-wrapper idiom -----------

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._ordering_applies():
            self._track_assignment(node.targets, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if self._ordering_applies() and node.value is not None:
            self._track_assignment([node.target], node.value)
        self.generic_visit(node)

    def _track_assignment(
        self, targets: List[ast.expr], value: ast.expr
    ) -> None:
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if self._is_sorted_call(value):
            # ``items = sorted(items)`` — the sorted-wrapper idiom: any
            # hash-ordered materialization earlier bound to the argument
            # name was a false alarm; the re-bound name is ordered now.
            args = value.args
            if args and isinstance(args[0], ast.Name):
                self._withdraw_pending(args[0].id)
            for name in names:
                self._unbind_name(name)
                self._withdraw_pending(name)
            return
        if self._is_set_valued(value):
            self._bind_set_names(names)
            return
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _ORDER_SENSITIVE_BUILTINS
            and value.args
            and self._is_set_valued(value.args[0])
        ):
            # ``items = list(a_set)``: hold the finding back — a later
            # ``items = sorted(items)`` / ``items.sort()`` sanctions it.
            self._handled.add(id(value))
            diag = self._diag(
                "DET004",
                f"{value.func.id}() over a bare set leaks hash ordering into "
                f"downstream decisions; wrap the set in sorted(...)",
                value,
            )
            if len(names) == 1:
                self.scopes[-1].pending.setdefault(names[0], []).append(diag)
            else:
                self.diagnostics.append(diag)
        for name in names:
            self._unbind_name(name)

    # -- rules ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        in_rng_module = self.rel_path == RNG_MODULE
        func = node.func
        # DET001 / DET002: draws outside the seeded-stream discipline.
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base, attr = func.value.id, func.attr
            if base in self.random_aliases and not in_rng_module:
                if attr == "SystemRandom":
                    self._emit(
                        "DET002",
                        "random.SystemRandom is OS-seeded and never reproducible",
                        node,
                    )
                elif attr == "Random":
                    if not node.args and not node.keywords:
                        self._emit(
                            "DET002",
                            "random.Random() without a seed draws from OS entropy; "
                            "derive the seed from repro.sim.rng streams",
                            node,
                        )
                else:
                    self._emit(
                        "DET001",
                        f"direct random.{attr}() uses the interpreter-global RNG; "
                        f"use a named stream from repro.sim.rng instead",
                        node,
                    )
            # DET003: wall clock in simulation paths.
            if _wallclock_forbidden(self.rel_path):
                if base in self.time_aliases and attr in _WALLCLOCK_TIME_ATTRS:
                    self._emit(
                        "DET003",
                        f"wall-clock read time.{attr}() in a simulation path; "
                        f"simulated logic must use round counters",
                        node,
                    )
                elif (
                    base in self.datetime_classes
                    and attr in _WALLCLOCK_DATETIME_ATTRS
                ):
                    self._emit(
                        "DET003",
                        f"wall-clock read {base}.{attr}() in a simulation path; "
                        f"simulated logic must use round counters",
                        node,
                    )
        # datetime.datetime.now() spelled through the module.
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id in self.datetime_aliases
            and func.value.attr in ("datetime", "date")
            and func.attr in _WALLCLOCK_DATETIME_ATTRS
            and _wallclock_forbidden(self.rel_path)
        ):
            self._emit(
                "DET003",
                f"wall-clock read datetime.{func.value.attr}.{func.attr}() in a "
                f"simulation path; simulated logic must use round counters",
                node,
            )
        # Bare names imported from random: ``from random import choice``.
        if (
            isinstance(func, ast.Name)
            and func.id in self.from_random
            and not in_rng_module
        ):
            if func.id in ("Random", "SystemRandom"):
                if func.id == "SystemRandom" or (not node.args and not node.keywords):
                    self._emit(
                        "DET002",
                        f"{func.id}() constructed without a derived seed",
                        node,
                    )
            else:
                self._emit(
                    "DET001",
                    f"{func.id}() imported from random uses the interpreter-global "
                    f"RNG; use a named stream from repro.sim.rng instead",
                    node,
                )
        if self._ordering_applies():
            if isinstance(func, ast.Name):
                if func.id in _ORDER_NEUTRAL_CONSUMERS:
                    # ``sorted(list({...}))`` and friends: the consumer
                    # neutralizes the hash order of its direct argument.
                    for arg in node.args[:1]:
                        self._handled.add(id(arg))
                # DET004: list(set(...)) and friends materialize hash order.
                if (
                    func.id in _ORDER_SENSITIVE_BUILTINS
                    and id(node) not in self._handled
                    and node.args
                    and self._is_set_valued(node.args[0])
                ):
                    self._emit(
                        "DET004",
                        f"{func.id}() over a bare set leaks hash ordering into "
                        f"downstream decisions; wrap the set in sorted(...)",
                        node,
                    )
            if isinstance(func, ast.Attribute):
                # ``items.sort()`` sanctions a pending materialization.
                if func.attr == "sort" and isinstance(func.value, ast.Name):
                    self._withdraw_pending(func.value.id)
                # DET005: dict.popitem().
                if func.attr == "popitem":
                    self._emit(
                        "DET005",
                        "popitem() depends on insertion-order bookkeeping; pop an "
                        "explicit deterministic key instead",
                        node,
                    )
        self.generic_visit(node)

    def _check_iteration(self, iterable: ast.expr) -> None:
        if id(iterable) in self._handled:
            return
        if self._is_set_valued(iterable):
            self._emit(
                "DET004",
                "iteration over a bare set leaks hash ordering into downstream "
                "decisions; wrap the set in sorted(...)",
                iterable,
            )

    def visit_For(self, node: ast.For) -> None:
        if self._ordering_applies():
            self._check_iteration(node.iter)
            # The loop target shadows any tracked set of the same name.
            for name in _names_of(node.target):
                self._unbind_name(name)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if self._ordering_applies():
            self._check_iteration(node.iter)
        self.generic_visit(node)


def _names_of(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_names_of(element))
        return names
    return []


def lint_python_source(
    source: str,
    rel_path: str,
    file: Optional[str] = None,
    respect_pragmas: bool = True,
) -> List[Diagnostic]:
    """DET diagnostics for one Python source text.

    ``rel_path`` is the path relative to the ``repro`` package root (e.g.
    ``gossip/views.py``) and selects which rule sets apply; ``file`` is the
    on-disk path reported in diagnostics (defaults to ``rel_path``).
    ``respect_pragmas=False`` ignores inline ``# repro-lint:`` pragmas.
    """
    if file is None:
        file = rel_path
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [
            Diagnostic(
                code="DET001",
                severity=ERROR,
                message=f"cannot parse for determinism checks: {exc.msg}",
                file=file,
                line=exc.lineno or 0,
                column=exc.offset or 0,
            )
        ]
    visitor = _DeterminismVisitor(rel_path, file)
    visitor.visit(tree)
    visitor.finish()
    diagnostics = visitor.diagnostics
    if respect_pragmas:
        from repro.lint.pragmas import apply_pragmas, parse_pragmas

        diagnostics = apply_pragmas(diagnostics, parse_pragmas(source))
    return sort_diagnostics(diagnostics)


def package_root() -> str:
    """The directory of the installed ``repro`` package."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def iter_python_files(root: Optional[str] = None) -> Iterable[str]:
    """Every ``.py`` file under the package root, deterministically ordered."""
    base = root or package_root()
    for dirpath, dirnames, filenames in os.walk(base):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if filename.endswith(".py"):
                yield os.path.join(dirpath, filename)


def self_check(
    root: Optional[str] = None, respect_pragmas: bool = True
) -> List[Diagnostic]:
    """Run the determinism linter over the framework's own source tree."""
    base = root or package_root()
    diagnostics: List[Diagnostic] = []
    for path in iter_python_files(base):
        rel_path = os.path.relpath(path, base).replace(os.sep, "/")
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        diagnostics.extend(
            lint_python_source(
                source, rel_path, file=path, respect_pragmas=respect_pragmas
            )
        )
    return sort_diagnostics(diagnostics)
