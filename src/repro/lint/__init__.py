"""Static verification of assembly programs and of the framework itself.

The shift-left counterpart of the simulator: a broken assembly (a port no
link reaches, a hypercube of 12, an unreachable island) should fail in
milliseconds at ``repro lint`` time with a coded, located diagnostic — not
after hundreds of simulated rounds as mysterious non-convergence.

Two prongs, one diagnostic currency (:class:`~repro.diagnostics.Diagnostic`):

- :func:`lint_program` / :func:`lint_assembly` / :func:`lint_topo_file` —
  the assembly verifier (``RPR…`` rules);
- :func:`lint_python_source` / :func:`self_check` — the determinism
  invariant linter over ``repro``'s own source (``DET…`` rules).

``python -m repro lint [paths…] [--self-check] [--format json]`` is the CLI
face; the full rule catalog lives in :mod:`repro.lint.catalog` and
``docs/lint.md``.
"""

from repro.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    count_by_severity,
    has_errors,
    sort_diagnostics,
)
from repro.lint.assembly_rules import lint_assembly, lint_program
from repro.lint.catalog import CATALOG, Rule, severity_of
from repro.lint.determinism import lint_python_source, self_check
from repro.lint.reporters import render_json, render_text
from repro.lint.runner import collect_topo_files, lint_paths, lint_topo_file

__all__ = [
    "CATALOG",
    "Diagnostic",
    "ERROR",
    "Rule",
    "WARNING",
    "collect_topo_files",
    "count_by_severity",
    "has_errors",
    "lint_assembly",
    "lint_paths",
    "lint_program",
    "lint_python_source",
    "lint_topo_file",
    "render_json",
    "render_text",
    "self_check",
    "severity_of",
    "sort_diagnostics",
]
