"""Static verification of assembly programs and of the framework itself.

The shift-left counterpart of the simulator: a broken assembly (a port no
link reaches, a hypercube of 12, an unreachable island) should fail in
milliseconds at ``repro lint`` time with a coded, located diagnostic — not
after hundreds of simulated rounds as mysterious non-convergence.

Three prongs, one diagnostic currency (:class:`~repro.diagnostics.Diagnostic`):

- :func:`lint_program` / :func:`lint_assembly` / :func:`lint_topo_file` —
  the assembly verifier (``RPR…`` rules);
- :func:`lint_python_source` / :func:`self_check` — the per-file
  determinism invariant linter over ``repro``'s own source (``DET0xx``);
- :func:`deep_check` — the whole-program analyzer (``repro lint --deep``):
  a project symbol table and call graph
  (:mod:`repro.lint.symbols` / :mod:`repro.lint.callgraph`), taint
  propagation of nondeterminism sources from the engine-round entry
  points (``DET1xx``, :mod:`repro.lint.taint`), and the shard-safety pass
  (``SHD…``, :mod:`repro.lint.shard`) that guards the digest-identity
  contract a sharded engine will depend on. Findings can be acknowledged
  inline (``# repro-lint: disable=CODE``) or frozen in a baseline file
  (:mod:`repro.lint.baseline`).

``python -m repro lint [paths…] [--self-check] [--deep] [--format
text|json|sarif]`` is the CLI face; the full rule catalog lives in
:mod:`repro.lint.catalog` and ``docs/lint.md``.
"""

from repro.diagnostics import (
    ERROR,
    WARNING,
    Diagnostic,
    count_by_severity,
    has_errors,
    sort_diagnostics,
)
from repro.lint.assembly_rules import lint_assembly, lint_program
from repro.lint.baseline import Baseline, write_baseline
from repro.lint.callgraph import CallGraph
from repro.lint.catalog import CATALOG, Rule, severity_of
from repro.lint.deep import analyze_project, deep_check
from repro.lint.determinism import lint_python_source, self_check
from repro.lint.pragmas import apply_pragmas, parse_pragmas
from repro.lint.reporters import render_json, render_text
from repro.lint.roots import DEFAULT_ROOTS, load_roots, match_roots
from repro.lint.runner import LintRun, collect_topo_files, lint_paths, lint_topo_file
from repro.lint.sarif import render_sarif
from repro.lint.symbols import SymbolTable

__all__ = [
    "CATALOG",
    "Baseline",
    "CallGraph",
    "DEFAULT_ROOTS",
    "Diagnostic",
    "ERROR",
    "LintRun",
    "Rule",
    "SymbolTable",
    "WARNING",
    "analyze_project",
    "apply_pragmas",
    "collect_topo_files",
    "count_by_severity",
    "deep_check",
    "has_errors",
    "lint_assembly",
    "lint_paths",
    "lint_program",
    "lint_python_source",
    "lint_topo_file",
    "load_roots",
    "match_roots",
    "parse_pragmas",
    "render_json",
    "render_sarif",
    "render_text",
    "self_check",
    "severity_of",
    "sort_diagnostics",
    "write_baseline",
]
