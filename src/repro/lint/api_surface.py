"""API surface pinning — the ``API001`` no-new-kwargs rule.

The engine entry points were collapsed behind one factory
(:func:`repro.runtime.api.make_runner`) and one consolidated record
(:class:`repro.runtime.api.RunnerConfig`). What keeps that consolidation
from eroding is this rule: the field lists of the public configuration
dataclasses are *pinned* here, and ``repro lint --deep`` fails when any of
them drifts.

- A new field on a **legacy** surface (``GossipParams``, ``ShardPlan``,
  ...) is the anti-pattern the redesign removed — new knobs belong on
  ``RunnerConfig`` (where every runner kind sees them) with the legacy
  record adapted through ``RunnerConfig.from_legacy``.
- A new field on ``RunnerConfig`` itself is legitimate *API growth* and
  must update the pin in the same change, making the surface diff explicit
  in review instead of buried in a dataclass default.

The check is purely syntactic (annotated assignments of the pinned
``ClassDef`` bodies in the already-parsed symbol table) — nothing is
imported, so a broken module cannot take the linter down with it.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Sequence, Tuple

from repro.diagnostics import Diagnostic
from repro.lint.symbols import SymbolTable

#: The pinned public configuration surfaces:
#: ``(rel_path, class_name) -> expected annotated field names, in order``.
PINNED_SURFACES: Dict[Tuple[str, str], Tuple[str, ...]] = {
    ("sim/config.py", "GossipParams"): (
        "view_size",
        "gossip_size",
        "healer",
        "swapper",
        "backend",
    ),
    ("sim/config.py", "TransportCosts"): (
        "header_bytes",
        "descriptor_bytes",
    ),
    ("sim/config.py", "SimulationConfig"): (
        "master_seed",
        "max_rounds",
        "gossip",
        "costs",
    ),
    ("scale/engine.py", "ShardPlan"): (
        "n_nodes",
        "n_shards",
    ),
    ("runtime/api.py", "RunnerConfig"): (
        "kind",
        "n_nodes",
        "seed",
        "shape",
        "workload",
        "gossip",
        "costs",
        "loss_rate",
        "max_rounds",
        "backend",
        "n_shards",
        "mode",
        "bind_host",
        "port",
        "node_index",
        "rendezvous",
        "round_interval",
        "ttl",
        "fanout",
    ),
}


def _class_fields(node: ast.ClassDef) -> List[Tuple[str, int]]:
    """Annotated field names (with line numbers) of a dataclass body."""
    fields: List[Tuple[str, int]] = []
    for statement in node.body:
        if isinstance(statement, ast.AnnAssign) and isinstance(
            statement.target, ast.Name
        ):
            name = statement.target.id
            if not name.startswith("_") and not name.isupper():
                fields.append((name, statement.lineno))
    return fields


def _find_class(tree: ast.Module, class_name: str) -> ast.ClassDef:
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            return node
    raise LookupError(class_name)


def api_surface_check(table: SymbolTable) -> List[Diagnostic]:
    """``API001`` findings: every pinned config surface that drifted."""
    diagnostics: List[Diagnostic] = []
    by_path = {module.rel_path: module for module in table.modules.values()}
    if not any(rel_path in by_path for rel_path, _ in PINNED_SURFACES):
        # A tree with none of the pinned modules is not the repro package
        # (an example dir, a lint fixture): the pin does not apply.
        return diagnostics
    for (rel_path, class_name), pinned in sorted(PINNED_SURFACES.items()):
        module = by_path.get(rel_path)
        if module is None:
            diagnostics.append(
                Diagnostic(
                    code="API001",
                    severity="error",
                    message=(
                        f"pinned config surface {class_name} expected in "
                        f"{rel_path}, but the module is gone — update "
                        f"repro.lint.api_surface.PINNED_SURFACES"
                    ),
                )
            )
            continue
        try:
            node = _find_class(module.tree, class_name)
        except LookupError:
            diagnostics.append(
                Diagnostic(
                    code="API001",
                    severity="error",
                    message=(
                        f"pinned config surface {class_name} no longer "
                        f"defined in {rel_path} — update "
                        f"repro.lint.api_surface.PINNED_SURFACES"
                    ),
                    file=module.file,
                )
            )
            continue
        actual = _class_fields(node)
        actual_names = [name for name, _ in actual]
        lines = dict(actual)
        for name in actual_names:
            if name not in pinned:
                diagnostics.append(
                    Diagnostic(
                        code="API001",
                        severity="error",
                        message=(
                            f"new config kwarg {class_name}.{name}: the "
                            f"{class_name} surface is pinned — add new "
                            f"knobs to RunnerConfig (and, if this growth "
                            f"is deliberate, update PINNED_SURFACES in "
                            f"repro/lint/api_surface.py in the same change)"
                        ),
                        file=module.file,
                        line=lines.get(name, node.lineno),
                    )
                )
        for name in pinned:
            if name not in actual_names:
                diagnostics.append(
                    Diagnostic(
                        code="API001",
                        severity="error",
                        message=(
                            f"pinned config kwarg {class_name}.{name} was "
                            f"removed — callers constructing {class_name} "
                            f"(including RunnerConfig.from_legacy) break; "
                            f"update PINNED_SURFACES if the removal is "
                            f"deliberate"
                        ),
                        file=module.file,
                        line=node.lineno,
                    )
                )
    return diagnostics


def pinned_fields(surfaces: Sequence[str]) -> Dict[str, Tuple[str, ...]]:
    """The pinned field tuples by class name (test/tooling convenience)."""
    return {
        class_name: fields
        for (_, class_name), fields in PINNED_SURFACES.items()
        if class_name in surfaces
    }
