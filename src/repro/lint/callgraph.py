"""Call-graph construction over the :class:`~repro.lint.symbols.SymbolTable`.

Python's dynamism means a purely static call graph is necessarily an
approximation; this one is tuned for the determinism/shard-safety passes,
which need *recall* on the engine's round hot paths more than precision:

- ``name(...)`` calls resolve through the module scope and import maps
  (including re-exports through ``__init__`` modules).
- ``self.method(...)`` resolves to the enclosing class's method when it
  exists.
- other ``obj.method(...)`` attribute calls fall back to *name-based
  resolution*: every known method of that name is a candidate callee, as
  long as the name is not so common that the fallback would degenerate
  (bounded by :data:`FALLBACK_LIMIT`). Dynamic dispatch sites that matter —
  ``protocol.step(ctx)``, ``observer.observe(...)`` — are additionally
  covered by the entry-point roots file (:mod:`repro.lint.roots`), so a
  dropped fallback edge can narrow a chain but never hides a hot path.
- a nested function/lambda is treated as called by its encloser (closures
  are almost always invoked, directly or as callbacks).
- a project function *passed as a call argument* (``sorted(xs,
  key=keys.key_of)``, ``engine.register(self.on_tick)``) gets a ``ref``
  edge from the passer: callbacks are how the engine dispatches, and a
  nondeterministic key function taints its consumer all the same.

Cycles are expected (mutual recursion, gossip layers calling back into
views) and handled by the fixpoint in the taint pass, not here.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lint.symbols import EXTERNAL_PREFIX, FunctionInfo, ModuleInfo, SymbolTable

#: Name-based dynamic-dispatch fallback gives up when a method name has
#: more than this many definitions project-wide (``get``, ``run``…): the
#: edges would be noise, and the roots file covers the real dispatch sites.
FALLBACK_LIMIT = 8

#: Method names never worth fallback edges (ubiquitous dunders).
_FALLBACK_SKIP = {
    "__init__",
    "__repr__",
    "__str__",
    "__eq__",
    "__hash__",
    "__len__",
    "__iter__",
    "append",
    "add",
    "get",
    "pop",
    "update",
    "items",
    "keys",
    "values",
    "sort",
    "join",
    "split",
    "copy",
    "extend",
    "clear",
}


@dataclass(frozen=True)
class CallSite:
    """One resolved call edge, anchored at its source position."""

    caller: str  # fully qualified caller name
    callee: str  # fully qualified callee name
    line: int
    column: int
    #: How the callee was found: "direct", "self", or "fallback".
    via: str


def _dotted_of(node: ast.expr) -> Optional[str]:
    """``a.b.c`` as a dotted string, when the expression is that simple."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class CallGraph:
    """Edges between project functions, with call-site positions."""

    def __init__(self, table: SymbolTable):
        self.table = table
        #: caller qname → list of call sites (deterministic order).
        self.edges: Dict[str, List[CallSite]] = {}
        #: caller qname → set of callee qnames, for reachability.
        self.callees: Dict[str, Set[str]] = {}

    @classmethod
    def build(cls, table: SymbolTable) -> "CallGraph":
        graph = cls(table)
        for func in table.iter_functions():
            graph._scan(func)
        return graph

    # -- scanning -------------------------------------------------------------

    def _add(self, caller: FunctionInfo, callee: FunctionInfo, node: ast.AST, via: str) -> None:
        site = CallSite(
            caller=caller.qname,
            callee=callee.qname,
            line=getattr(node, "lineno", caller.line),
            column=getattr(node, "col_offset", -1) + 1,
            via=via,
        )
        self.edges.setdefault(caller.qname, []).append(site)
        self.callees.setdefault(caller.qname, set()).add(callee.qname)

    def _own_statements(self, func: FunctionInfo) -> Iterable[ast.AST]:
        """The function's body, nested function/class bodies excluded."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func.node))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _scan(self, func: FunctionInfo) -> None:
        module = self.table.modules.get(func.module)
        if module is None:
            return
        # A nested def is reachable from its encloser.
        for child in ast.iter_child_nodes(func.node):
            for node in ast.walk(child):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested = module.functions.get(f"{func.local_qname}.{node.name}")
                    if nested is not None and nested.qname != func.qname:
                        self._add(func, nested, node, "nested")
        for node in self._own_statements(func):
            if isinstance(node, ast.Call):
                self._resolve_call(func, module, node)
                self._callback_refs(func, module, node)

    def _resolve_call(
        self, func: FunctionInfo, module: ModuleInfo, node: ast.Call
    ) -> None:
        target = node.func
        if isinstance(target, ast.Name):
            callee = self._resolve_name(func, module, target.id)
            if callee is not None:
                self._add(func, callee, node, "direct")
            return
        if isinstance(target, ast.Attribute):
            dotted = _dotted_of(target)
            if dotted is not None:
                head = dotted.split(".")[0]
                if head == "self" and func.class_name is not None:
                    method = f"{func.class_name}.{dotted.split('.', 1)[1]}"
                    callee = module.functions.get(method)
                    if callee is not None:
                        self._add(func, callee, node, "self")
                        return
                elif head in ("cls", "super"):
                    pass  # fall through to name fallback below
                else:
                    resolved = self.table.resolve(module, dotted)
                    if resolved is not None:
                        self._add(func, resolved, node, "direct")
                        return
                    imported = module.imports.get(head, "")
                    if imported.startswith(EXTERNAL_PREFIX):
                        return  # stdlib/third-party attribute call
            self._fallback(func, target.attr, node)

    def _resolve_name(
        self, func: FunctionInfo, module: ModuleInfo, name: str
    ) -> Optional[FunctionInfo]:
        return self.table.resolve(module, name)

    def _callback_refs(
        self, func: FunctionInfo, module: ModuleInfo, node: ast.Call
    ) -> None:
        """A function passed as an argument is presumed invoked by someone."""
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            callee: Optional[FunctionInfo] = None
            if isinstance(arg, ast.Name):
                callee = self.table.resolve(module, arg.id)
            elif isinstance(arg, ast.Attribute):
                dotted = _dotted_of(arg)
                if dotted is None:
                    continue
                head, _, tail = dotted.partition(".")
                if head == "self" and func.class_name is not None and tail:
                    callee = module.functions.get(f"{func.class_name}.{tail}")
                else:
                    callee = self.table.resolve(module, dotted)
            if callee is not None and callee.qname != func.qname:
                self._add(func, callee, arg, "ref")

    def _fallback(self, func: FunctionInfo, name: str, node: ast.Call) -> None:
        if name in _FALLBACK_SKIP:
            return
        candidates = self.table.by_name.get(name, ())
        if not candidates or len(candidates) > FALLBACK_LIMIT:
            return
        for callee in candidates:
            if callee.class_name is None:
                continue  # plain functions are never attribute-dispatched
            if callee.qname == func.qname:
                continue
            self._add(func, callee, node, "fallback")

    # -- reachability ---------------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Every function reachable from ``roots`` (roots included)."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.table.functions]
        while stack:
            qname = stack.pop()
            if qname in seen:
                continue
            seen.add(qname)
            stack.extend(self.callees.get(qname, ()))
        return seen

    def shortest_path(self, sources: Iterable[str], target: str) -> List[CallSite]:
        """BFS path (as call sites) from any of ``sources`` to ``target``.

        Returns ``[]`` when the target *is* a source (empty chain) and
        ``None``-equivalent empty list when unreachable — callers check
        membership in :meth:`reachable_from` first.
        """
        sources = [s for s in sources if s in self.table.functions]
        parents: Dict[str, Optional[CallSite]] = {s: None for s in sources}
        queue: List[str] = sorted(sources)
        while queue:
            current = queue.pop(0)
            if current == target:
                path: List[CallSite] = []
                while parents[current] is not None:
                    site = parents[current]
                    path.append(site)
                    current = site.caller
                return list(reversed(path))
            for site in self.edges.get(current, ()):
                if site.callee not in parents:
                    parents[site.callee] = site
                    queue.append(site.callee)
        return []
