"""Orchestration of the deep (whole-program) analysis: ``repro lint --deep``.

One entry point, :func:`deep_check`, runs the full pipeline —

1. parse every module under the package root into a
   :class:`~repro.lint.symbols.SymbolTable`;
2. build the :class:`~repro.lint.callgraph.CallGraph`;
3. match the engine-round entry points (:mod:`repro.lint.roots`) and
   compute the hot set (everything a round can execute);
4. run the interprocedural taint pass (``DET1xx``) and the shard-safety
   pass (``SHD0xx``);
5. drop findings acknowledged by inline pragmas (unless asked not to).

The project model is also exposed (:func:`analyze_project`) so tests and
tooling can inspect the call graph directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.diagnostics import Diagnostic, sort_diagnostics
from repro.lint.api_surface import api_surface_check
from repro.lint.callgraph import CallGraph
from repro.lint.pragmas import is_disabled, parse_pragmas
from repro.lint.roots import DEFAULT_ROOTS, match_roots
from repro.lint.shard import shard_check
from repro.lint.symbols import SymbolTable
from repro.lint.taint import taint_check


@dataclass
class ProjectModel:
    """The analyzed project: symbols, call graph, and the hot set."""

    table: SymbolTable
    graph: CallGraph
    roots: List[str]
    hot: Set[str]


def analyze_project(
    root: Optional[str] = None,
    package: Tuple[str, ...] = ("repro",),
    roots: Optional[Sequence[str]] = None,
) -> ProjectModel:
    """Build the whole-program model for ``root`` (default: installed repro)."""
    table = SymbolTable.build(root, package)
    graph = CallGraph.build(table)
    root_qnames = match_roots(table, roots if roots is not None else DEFAULT_ROOTS)
    hot = graph.reachable_from(root_qnames)
    return ProjectModel(table=table, graph=graph, roots=root_qnames, hot=hot)


def deep_check(
    root: Optional[str] = None,
    package: Tuple[str, ...] = ("repro",),
    roots: Optional[Sequence[str]] = None,
    respect_pragmas: bool = True,
) -> List[Diagnostic]:
    """All DET1xx + SHD diagnostics for the project under ``root``."""
    model = analyze_project(root, package, roots)
    diagnostics = taint_check(model.table, model.graph, model.roots, model.hot)
    diagnostics.extend(shard_check(model.table, model.graph, model.hot))
    diagnostics.extend(api_surface_check(model.table))
    if respect_pragmas:
        diagnostics = _apply_file_pragmas(model.table, diagnostics)
    return sort_diagnostics(diagnostics)


def _apply_file_pragmas(
    table: SymbolTable, diagnostics: List[Diagnostic]
) -> List[Diagnostic]:
    pragma_maps: Dict[str, Dict[int, set]] = {}
    for module in table.modules.values():
        pragma_maps[module.file] = parse_pragmas(module.source)
    return [
        diag
        for diag in diagnostics
        if not (
            diag.file in pragma_maps
            and is_disabled(pragma_maps[diag.file], diag.code, diag.line)
        )
    ]
