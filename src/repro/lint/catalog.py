"""The rule catalog: every diagnostic code the static analyzers can emit.

Two rule families:

- ``RPR…`` — assembly-program rules, checked on a parsed ``.topo`` program
  or an :class:`~repro.core.Assembly` *before* anything is simulated.
  ``RPR0xx/1xx`` are errors (the topology cannot work as written),
  ``RPR2xx`` are warnings (it will deploy, but something looks unintended).
- ``DET…`` — determinism-invariant rules, checked on the framework's own
  Python source. ``DET0xx`` are per-file (``repro lint --self-check``);
  ``DET1xx`` are interprocedural (``repro lint --deep``): a nondeterminism
  source is flagged when an engine-round entry point can transitively
  reach it, even across module boundaries. Together they machine-enforce
  the property that makes the multi-seed evaluation honest: all stochastic
  behavior flows from :mod:`repro.sim.rng` and nothing order-unstable
  feeds a protocol decision.
- ``SHD…`` — shard-safety rules (``repro lint --deep``): the statically
  detectable hazards that would break digest identity between a serial
  and a sharded engine run (shared module state mutated from round hot
  paths, RNGs cached outside the per-shard ``ctx`` discipline, mutable
  defaults aliased across instances).

``docs/lint.md`` renders this catalog with rationale and examples; keep the
two in sync when adding a rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.diagnostics import ERROR, WARNING


@dataclass(frozen=True)
class Rule:
    """Static metadata of one lint rule."""

    code: str
    severity: str
    title: str
    rationale: str


_RULES = [
    # -- syntax / program-level errors ---------------------------------------
    Rule(
        "RPR001",
        ERROR,
        "syntax error",
        "The file is not a well-formed DSL program; nothing else can be checked.",
    ),
    Rule(
        "RPR100",
        ERROR,
        "semantic error",
        "A declaration violates a basic semantic rule: unknown shape, bad "
        "shape/size/weight parameter, unknown port selector, unknown "
        "assignment rule, duplicate port, or an invalid identifier.",
    ),
    Rule(
        "RPR101",
        ERROR,
        "link references undeclared component",
        "A link endpoint names a component that is never declared; the link "
        "can never be realized and the component it should join stays isolated.",
    ),
    Rule(
        "RPR102",
        ERROR,
        "link references undeclared port",
        "A link endpoint names a port its component does not declare, so no "
        "port manager will ever be elected for it.",
    ),
    Rule(
        "RPR103",
        ERROR,
        "duplicate link",
        "The same undirected port-to-port connection is declared twice "
        "(possibly via replica fan-out); one of them is dead weight or a typo.",
    ),
    Rule(
        "RPR104",
        ERROR,
        "self-link",
        "Both endpoints of a link are the same port; a component cannot be "
        "bridged to itself through a single port.",
    ),
    Rule(
        "RPR105",
        ERROR,
        "shape size infeasible",
        "A component's fixed size cannot host its shape: a hypercube needs a "
        "power of two, a grid/torus a composite size (or an explicit rows "
        "divisor), and every shape at least one member. The overlay would "
        "gossip forever without converging.",
    ),
    Rule(
        "RPR106",
        ERROR,
        "node budget infeasible",
        "The declared ``nodes N`` cannot cover the sum of fixed component "
        "sizes (plus one node per weighted component); deployment would fail "
        "or starve a component entirely.",
    ),
    Rule(
        "RPR107",
        ERROR,
        "duplicate component",
        "Two component declarations (or a replica expansion) produce the same "
        "component name.",
    ),
    Rule(
        "RPR108",
        ERROR,
        "bad replica reference",
        "A link endpoint indexes a non-replicated component, omits the index "
        "of a replicated one, uses an out-of-range replica index, or fans out "
        "on both sides.",
    ),
    Rule(
        "RPR109",
        ERROR,
        "empty topology",
        "The program declares no components at all.",
    ),
    # -- warnings ------------------------------------------------------------
    Rule(
        "RPR201",
        WARNING,
        "port never linked",
        "A declared port is not referenced by any link. The component still "
        "elects a manager for it every round — either the port is vestigial "
        "or a link was forgotten.",
    ),
    Rule(
        "RPR202",
        WARNING,
        "unreachable component island",
        "The component graph is not connected: some components can never "
        "exchange members with the rest of the assembly, so cross-component "
        "routing and broadcast silently lose them.",
    ),
    Rule(
        "RPR203",
        WARNING,
        "selector over-subscription",
        "Two linked ports of one component use selectors that provably elect "
        "the same member (e.g. ``hub`` and ``rank(0)``); that node becomes "
        "the bridge for several inter-component links at once.",
    ),
    Rule(
        "RPR204",
        WARNING,
        "selector rank unsatisfiable",
        "A ``rank(K)`` selector targets a rank outside the component's fixed "
        "size; the port will never have a manager and links through it stay "
        "down (the runtime degrades to second-opinion routing).",
    ),
    Rule(
        "RPR205",
        WARNING,
        "weighted component may starve",
        "Under the declared node budget, a weighted (unsized) component's "
        "proportional share rounds to zero members.",
    ),
    Rule(
        "RPR206",
        WARNING,
        "degenerate shape size",
        "A component's fixed size is below its shape's meaningful minimum "
        "(``Shape.min_size``): a 2-ring is an edge, a 1-clique replicates "
        "nothing. It deploys, but probably not what was meant.",
    ),
    # -- determinism invariants (self-check) ---------------------------------
    Rule(
        "DET001",
        ERROR,
        "module-level random call",
        "Direct ``random.<fn>()`` calls draw from the interpreter-global RNG, "
        "bypassing the seed-derived streams of ``repro.sim.rng``; two runs "
        "with the same master seed would diverge.",
    ),
    Rule(
        "DET002",
        ERROR,
        "unseeded RNG construction",
        "``random.Random()`` with no seed (or any ``SystemRandom``) is seeded "
        "from the OS; all RNG instances must derive from a named stream or an "
        "explicit seed.",
    ),
    Rule(
        "DET003",
        ERROR,
        "wall-clock read in simulation path",
        "``time.time``/``perf_counter``/``datetime.now`` in ``sim``, ``core``, "
        "``gossip``, or ``faults`` makes behavior depend on host speed; "
        "simulated logic must use round counters only.",
    ),
    Rule(
        "DET004",
        ERROR,
        "iteration over unordered set",
        "Iterating (or materializing with ``list``/``tuple``/``enumerate``) a "
        "bare ``set``/``frozenset`` in gossip/view/simulation code leaks hash "
        "ordering into protocol decisions; wrap it in ``sorted(...)``.",
    ),
    Rule(
        "DET005",
        ERROR,
        "dict.popitem ordering hazard",
        "``dict.popitem()`` couples layer-exchange behavior to insertion "
        "order details; pop an explicit, deterministic key instead.",
    ),
    # -- interprocedural determinism (deep analysis) -------------------------
    Rule(
        "DET101",
        ERROR,
        "wall clock reachable from round hot path",
        "An engine-round entry point transitively calls a wall-clock read "
        "(``time.*``, ``datetime.now``) through a chain of helpers, even "
        "though every individual call site looks clean; behavior then "
        "depends on host speed and serial/sharded runs diverge.",
    ),
    Rule(
        "DET102",
        ERROR,
        "nondeterministic RNG reachable from round hot path",
        "A round entry point transitively reaches an interpreter-global "
        "``random.*`` draw or an unseeded ``Random()``; the draw is outside "
        "the seed-derived streams, so the same master seed no longer "
        "denotes the same random universe across runs or shards.",
    ),
    Rule(
        "DET103",
        ERROR,
        "unordered iteration reachable from round hot path",
        "A helper on a round's call chain iterates a bare set or pops "
        "arbitrary dict entries — outside the packages the per-file rule "
        "covers — leaking hash/insertion order into protocol decisions.",
    ),
    Rule(
        "DET104",
        ERROR,
        "object identity reachable from round hot path",
        "``id()`` values are CPython heap addresses: unstable between runs, "
        "interpreters, and shard processes. Any use on a round's call chain "
        "(keys, ordering, tie-breaking) breaks digest identity.",
    ),
    Rule(
        "DET105",
        ERROR,
        "environment read reachable from round hot path",
        "``os.environ``/``os.getenv`` on a round's call chain makes "
        "simulated behavior depend on process environment, which differs "
        "between hosts and between sharded workers; read configuration "
        "once at harness level and pass it down explicitly.",
    ),
    # -- shard safety (deep analysis) ----------------------------------------
    Rule(
        "SHD001",
        ERROR,
        "module global mutated in round hot path",
        "A round hot path mutates module-level mutable state. A module "
        "global is process-wide: sharded workers each mutate their own "
        "copy in their own order and silently diverge; thread the state "
        "through ``ctx`` or per-node objects instead.",
    ),
    Rule(
        "SHD002",
        ERROR,
        "RNG cached outside per-shard ctx ownership",
        "An RNG constructed at module or class scope outlives the "
        "per-node/per-shard ``ctx`` threading discipline (the "
        "``spawn_seeds`` ownership rule): it is consumed in arrival order, "
        "which differs between serial and sharded schedules.",
    ),
    Rule(
        "SHD003",
        ERROR,
        "mutable default argument aliases across instances",
        "A mutable default in the gossip/heal/obs layers is evaluated once "
        "and aliased by every caller, so per-node state leaks across "
        "nodes — and under sharding, across whichever nodes share the "
        "worker. Default to ``None`` and allocate per call.",
    ),
    # -- API surface pinning (deep analysis) ---------------------------------
    Rule(
        "API001",
        ERROR,
        "pinned config surface drifted",
        "A public configuration dataclass (``RunnerConfig`` or one of the "
        "legacy surfaces it consolidates) grew or lost a field without the "
        "pin in ``repro.lint.api_surface`` being updated. New knobs belong "
        "on ``RunnerConfig`` — legacy records adapt through "
        "``RunnerConfig.from_legacy`` — and deliberate surface growth must "
        "update ``PINNED_SURFACES`` in the same change so the API diff is "
        "explicit in review.",
    ),
]

#: code → :class:`Rule` for every known diagnostic.
CATALOG: Dict[str, Rule] = {rule.code: rule for rule in _RULES}


def severity_of(code: str) -> str:
    """The catalog severity for ``code`` (errors for unknown codes)."""
    rule = CATALOG.get(code)
    return rule.severity if rule is not None else ERROR
