"""Token model of the topology DSL."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Any


class TokenType(Enum):
    """Lexical categories of the DSL."""

    IDENT = auto()
    INT = auto()
    FLOAT = auto()
    STRING = auto()
    LBRACE = auto()       # {
    RBRACE = auto()       # }
    LPAREN = auto()       # (
    RPAREN = auto()       # )
    LBRACKET = auto()     # [
    RBRACKET = auto()     # ]
    STAR = auto()         # *
    COLON = auto()        # :
    COMMA = auto()        # ,
    EQUALS = auto()       # =
    DOT = auto()          # .
    LINK_ARROW = auto()   # --
    EOF = auto()


#: Reserved words; lexed as IDENT, classified by the parser.
KEYWORDS = frozenset({"topology", "component", "port", "link", "nodes", "assign"})


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position (1-based line and column)."""

    type: TokenType
    value: Any
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.IDENT and self.value == word

    def __str__(self) -> str:
        if self.type is TokenType.EOF:
            return "end of input"
        return repr(str(self.value))
