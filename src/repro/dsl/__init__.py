"""The topology DSL (paper §3.2) and its programmatic twin.

The paper's DSL is "a very basic [language] used to write the configuration
file that will be interpreted by the runtime", with three element groups:

1. the basic shapes (components) and node-assignment rules;
2. each component's ports and port-assignment rules;
3. the links between ports.

This package provides both surfaces over the same :class:`~repro.core.Assembly` IR:

- a *textual* front-end (:func:`parse_source` / :func:`compile_source`)::

      topology Mongo {
          nodes 56
          assign proportional
          component router : star(size = 8) {
              port hub : hub
          }
          component shard0 : clique(size = 12) {
              port head : lowest_id
          }
          link router.hub -- shard0.head
      }

- a *fluent builder* (:class:`TopologyBuilder`) for programmatic assembly,
  plus :func:`to_source`, which pretty-prints any assembly back to DSL text
  (the two round-trip losslessly, which the test suite checks by property).
"""

from repro.dsl.builder import TopologyBuilder
from repro.dsl.compiler import compile_ast, compile_source, to_source
from repro.dsl.parser import parse_source

__all__ = [
    "TopologyBuilder",
    "compile_ast",
    "compile_source",
    "parse_source",
    "to_source",
]
