"""Abstract syntax tree of the topology DSL."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

#: Parameter values allowed in shape argument lists.
Value = Any  # int | float | str | bool


@dataclass(frozen=True)
class Param:
    """One ``name = value`` shape or component parameter."""

    name: str
    value: Value
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class PortDecl:
    """``port NAME : SELECTOR`` — selector kept as surface text."""

    name: str
    selector: str
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class ComponentDecl:
    """``component NAME : SHAPE(params...) { ports... }``.

    ``replicas`` is the replication count of ``component NAME[K] : ...``
    sugar (``None`` for a plain component): the compiler expands one spec
    per replica, named ``NAME0 .. NAME{K-1}``.
    """

    name: str
    shape: str
    params: Tuple[Param, ...] = ()
    ports: Tuple[PortDecl, ...] = ()
    replicas: Optional[int] = None
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class LinkDecl:
    """``link A.p -- B.q``.

    Endpoint indices support the replication sugar: ``A[2].p`` pins one
    replica (``a_index = 2``), ``A[*].p`` fans out (``a_index = "*"``),
    plain ``A.p`` leaves the index ``None``.
    """

    a_component: str
    a_port: str
    b_component: str
    b_port: str
    a_index: object = None  # None | int | "*"
    b_index: object = None
    line: int = 0
    column: int = 0


@dataclass(frozen=True)
class TopologyDecl:
    """A whole ``topology NAME { ... }`` program."""

    name: str
    components: Tuple[ComponentDecl, ...] = ()
    links: Tuple[LinkDecl, ...] = ()
    nodes: Optional[int] = None
    assign: Optional[str] = None
    line: int = 0
    column: int = 0
