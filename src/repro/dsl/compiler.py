"""Compiler: DSL AST → :class:`~repro.core.Assembly`, and back to source.

Semantic rules enforced here (on top of :meth:`Assembly.validate`):

- shape names must be registered in the component library;
- shape parameters must match the shape factory's signature;
- the reserved parameters ``size`` and ``weight`` configure the component
  itself, everything else is passed to the shape;
- selectors must parse (``lowest_id``, ``highest_id``, ``hub``, ``rank(K)``);
- the assignment rule, when given, must be known.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import AssemblyError, ConfigurationError, DslSemanticError
from repro.core.assembly import Assembly
from repro.core.component import ComponentSpec
from repro.core.link import LinkSpec, PortRef
from repro.core.port import PortSpec, make_selector
from repro.core.roles import make_assignment
from repro.dsl.ast import ComponentDecl, TopologyDecl
from repro.dsl.parser import parse_source
from repro.shapes.registry import make_shape


def _located(message: str, line: int, column: int) -> DslSemanticError:
    where = f" (line {line}, column {column})" if line else ""
    return DslSemanticError(f"{message}{where}")


def _expand_name(base: str, index: int) -> str:
    return f"{base}{index}"


def _compile_component(decl: ComponentDecl) -> ComponentSpec:
    size = None
    weight = 1.0
    shape_params: Dict[str, Any] = {}
    for param in decl.params:
        if param.name == "size":
            if not isinstance(param.value, int) or isinstance(param.value, bool):
                raise _located(
                    f"component {decl.name!r}: size must be an integer",
                    param.line,
                    param.column,
                )
            size = param.value
        elif param.name == "weight":
            if not isinstance(param.value, (int, float)) or isinstance(
                param.value, bool
            ):
                raise _located(
                    f"component {decl.name!r}: weight must be numeric",
                    param.line,
                    param.column,
                )
            weight = float(param.value)
        else:
            shape_params[param.name] = param.value
    try:
        shape = make_shape(decl.shape, **shape_params)
    except ConfigurationError as exc:
        raise _located(str(exc), decl.line, decl.column) from exc
    ports = []
    for port in decl.ports:
        try:
            selector = make_selector(port.selector)
        except AssemblyError as exc:
            raise _located(str(exc), port.line, port.column) from exc
        ports.append(PortSpec(port.name, selector))
    try:
        return ComponentSpec(
            name=decl.name, shape=shape, weight=weight, size=size, ports=tuple(ports)
        )
    except AssemblyError as exc:
        raise _located(str(exc), decl.line, decl.column) from exc


def _resolve_endpoint(
    component: str,
    index,
    port: str,
    replica_map: Dict[str, list],
    decl,
) -> list:
    """Resolve one link endpoint to the list of concrete port refs."""
    if component in replica_map:
        names = replica_map[component]
        if index == "*":
            return [PortRef(name, port) for name in names]
        if index is None:
            raise _located(
                f"{component!r} is replicated ×{len(names)}: address it as "
                f"{component}[i].{port} or fan out with {component}[*].{port}",
                decl.line,
                decl.column,
            )
        if not 0 <= index < len(names):
            raise _located(
                f"replica index {component}[{index}] out of range "
                f"(0..{len(names) - 1})",
                decl.line,
                decl.column,
            )
        return [PortRef(names[index], port)]
    if index is not None:
        raise _located(
            f"{component!r} is not replicated; drop the [{index}] index",
            decl.line,
            decl.column,
        )
    return [PortRef(component, port)]


def compile_ast(tree: TopologyDecl) -> Assembly:
    """Lower a parsed topology declaration to a validated assembly.

    Replication sugar is expanded here: ``component shard[4] : …`` becomes
    components ``shard0 .. shard3``; a link endpoint ``shard[*].head`` fans
    the link out to every replica.
    """
    components = []
    replica_map: Dict[str, list] = {}
    for decl in tree.components:
        spec = _compile_component(decl)
        if decl.replicas is None:
            components.append(spec)
            continue
        names = [_expand_name(decl.name, index) for index in range(decl.replicas)]
        replica_map[decl.name] = names
        for name in names:
            components.append(
                ComponentSpec(
                    name=name,
                    shape=spec.shape,
                    weight=spec.weight,
                    size=spec.size,
                    ports=spec.ports,
                )
            )
    links = []
    for decl in tree.links:
        a_refs = _resolve_endpoint(
            decl.a_component, decl.a_index, decl.a_port, replica_map, decl
        )
        b_refs = _resolve_endpoint(
            decl.b_component, decl.b_index, decl.b_port, replica_map, decl
        )
        if len(a_refs) > 1 and len(b_refs) > 1:
            raise _located(
                "at most one side of a link may fan out with [*]",
                decl.line,
                decl.column,
            )
        try:
            for a_ref in a_refs:
                for b_ref in b_refs:
                    links.append(LinkSpec(a_ref, b_ref))
        except AssemblyError as exc:
            raise _located(str(exc), decl.line, decl.column) from exc
    assignment = None
    if tree.assign is not None:
        try:
            assignment = make_assignment(tree.assign)
        except AssemblyError as exc:
            raise _located(str(exc), tree.line, tree.column) from exc
    try:
        return Assembly(
            name=tree.name,
            components=components,
            links=links,
            assignment=assignment,
            total_nodes=tree.nodes,
        )
    except AssemblyError as exc:
        raise _located(str(exc), tree.line, tree.column) from exc


def compile_source(source: str) -> Assembly:
    """Parse and compile DSL text in one step."""
    return compile_ast(parse_source(source))


def _format_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)


def to_source(assembly: Assembly, indent: str = "    ") -> str:
    """Pretty-print an assembly back to DSL text.

    The output re-parses to an equal assembly (round-trip property), which
    makes DSL files a faithful serialization format for topologies built
    with the :class:`~repro.dsl.builder.TopologyBuilder`.
    """
    lines = [f"topology {assembly.name} {{"]
    if assembly.total_nodes is not None:
        lines.append(f"{indent}nodes {assembly.total_nodes}")
    if assembly.assignment.name:
        lines.append(f"{indent}assign {assembly.assignment.name}")
    for spec in assembly.components.values():
        params = []
        if spec.size is not None:
            params.append(f"size = {spec.size}")
        elif spec.weight != 1.0:
            params.append(f"weight = {_format_value(spec.weight)}")
        for name, value in sorted(spec.shape.params().items()):
            params.append(f"{name} = {_format_value(value)}")
        header = f"{indent}component {spec.name} : {spec.shape.name}"
        if params:
            header += f"({', '.join(params)})"
        if spec.ports:
            lines.append(header + " {")
            for port in spec.ports:
                lines.append(f"{indent}{indent}port {port.name} : {port.selector.spec()}")
            lines.append(f"{indent}}}")
        else:
            lines.append(header)
    for link in assembly.links:
        lines.append(f"{indent}link {link.a} -- {link.b}")
    lines.append("}")
    return "\n".join(lines) + "\n"
